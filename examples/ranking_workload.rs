//! Ranking workload: predicting a two-stage ranking pipeline (PageRank
//! followed by top-k ranking), the "order stories in the news feed" scenario
//! the paper's introduction attributes to Facebook/LinkedIn.
//!
//! ```bash
//! cargo run --release --example ranking_workload
//! ```
//!
//! Top-k ranking is the paper's example of an algorithm whose per-iteration
//! runtime varies with the number of messages sent, which is why predicting
//! its runtime needs per-iteration feature extrapolation rather than a single
//! average-iteration estimate. The two datasets are served through one
//! `PredictService`, the front-end a scheduler would hold: each dataset gets
//! a cached session, and repeated requests against either dataset would be
//! answered from the cached artifacts.

use predict_repro::algorithms::TopKParams;
use predict_repro::prelude::*;
use std::sync::Arc;

fn main() {
    let service = PredictService::new(
        BspEngine::new(BspConfig::with_workers(8)),
        Arc::new(BiasedRandomJump::default()),
    );

    for dataset in [Dataset::Wikipedia, Dataset::Uk2002] {
        let graph = Arc::new(dataset.load());
        println!(
            "\n=== {} analog: {} vertices, {} edges ===",
            dataset.name(),
            graph.num_vertices(),
            graph.num_edges()
        );

        // Stage 1 of the pipeline (PageRank) is run as part of the top-k
        // workload; stage 2 (top-k ranking, k = 5) is what gets predicted.
        let request = PredictRequest::new(
            dataset.prefix(),
            graph,
            Arc::new(TopKWorkload::new(TopKParams::new(5, 0.001), 0.01)),
        );
        let evaluation = service.evaluate(&request).expect("prediction succeeds");

        let per_iteration = &evaluation.prediction.per_iteration_ms;
        let max = per_iteration.iter().cloned().fold(0.0f64, f64::max);
        let min = per_iteration.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "predicted {} iterations, per-iteration runtime varies {:.0}x ({:.1} ms .. {:.1} ms)",
            evaluation.prediction.predicted_iterations,
            if min > 0.0 { max / min } else { 0.0 },
            min,
            max
        );
        println!(
            "predicted runtime {:.0} ms vs actual {:.0} ms  (error {:+.1}%)",
            evaluation.prediction.predicted_superstep_ms,
            evaluation.actual_superstep_ms,
            evaluation.runtime_error() * 100.0
        );
        println!(
            "remote message bytes error {:+.1}%",
            evaluation.remote_bytes_error() * 100.0
        );
    }
}
