//! Capacity planning: how many workers does a job need to meet a deadline?
//!
//! ```bash
//! cargo run --release --example capacity_planning
//! ```
//!
//! The paper motivates runtime prediction with cluster resource allocation:
//! schedulers need runtime estimates per candidate allocation. This example
//! predicts the runtime of semi-clustering on the Wikipedia analog for
//! several worker counts (PREDIcT's assumption iii — sample run and actual
//! run use the same configuration — is satisfied per candidate allocation)
//! and picks the smallest allocation whose predicted runtime meets the
//! deadline. Each allocation gets its own prediction session, because the
//! engine configuration is part of what a session binds; the dataset graph
//! is shared across all of them through an `Arc`.

use predict_repro::algorithms::SemiClusteringParams;
use predict_repro::prelude::*;
use std::sync::Arc;

fn main() {
    let graph = Arc::new(Dataset::Wikipedia.load());
    let workload = SemiClusteringWorkload::new(SemiClusteringParams::default());
    let deadline_ms = 12_000.0;

    println!(
        "dataset: Wikipedia analog ({} vertices, {} edges); workload: semi-clustering; deadline {:.0} ms",
        graph.num_vertices(),
        graph.num_edges(),
        deadline_ms
    );
    println!(
        "\n{:>8} {:>18} {:>14}",
        "workers", "predicted [ms]", "meets deadline"
    );

    let mut chosen: Option<(usize, f64)> = None;
    for workers in [2usize, 4, 8, 16, 29] {
        let session = Predictor::builder()
            .engine(BspEngine::new(BspConfig::with_workers(workers)))
            .sampler(BiasedRandomJump::default())
            .config(PredictorConfig::default())
            .bind(Arc::clone(&graph), "Wiki");
        let prediction = session.predict(&workload).expect("prediction succeeds");
        let meets = prediction.predicted_superstep_ms <= deadline_ms;
        println!(
            "{:>8} {:>18.0} {:>14}",
            workers,
            prediction.predicted_superstep_ms,
            if meets { "yes" } else { "no" }
        );
        if meets && chosen.is_none() {
            chosen = Some((workers, prediction.predicted_superstep_ms));
        }
    }

    match chosen {
        Some((workers, ms)) => println!(
            "\n=> allocate {workers} workers: predicted runtime {ms:.0} ms meets the {deadline_ms:.0} ms deadline"
        ),
        None => println!("\n=> no evaluated allocation meets the deadline; consider a larger cluster"),
    }
}
