//! Quickstart: the end-to-end PREDIcT methodology (Figure 1 of the paper) on
//! a single workload, through the session API.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! The example: (1) builds a scaled-down analog of the paper's Wikipedia
//! graph, (2) binds a prediction session to it — engine + Biased Random Jump
//! sampler + pipeline configuration, (3) asks the session to evaluate
//! PageRank: it draws a 10% sample, runs PageRank on the sample with the
//! transformed convergence threshold, trains a cost model from sample runs
//! at ratios 0.05–0.2, extrapolates the per-iteration features, predicts the
//! runtime — and then runs the actual job to show how close the prediction
//! landed. A second prediction against the same session would reuse every
//! cached stage artifact (see `examples/feasibility_analysis.rs`).

use predict_repro::prelude::*;
use std::sync::Arc;

fn main() {
    // 1. Input dataset: the Wikipedia analog at the default experiment scale.
    let graph = Arc::new(Dataset::Wikipedia.load());
    println!(
        "dataset: Wikipedia analog with {} vertices and {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // 2. The workload: PageRank with the paper's threshold convention
    //    (tau = epsilon / N, epsilon = 0.001).
    let workload = PageRankWorkload::with_epsilon(0.001, graph.num_vertices());
    println!("workload: PageRank, damping 0.85, tau = 0.001 / N");

    // 3. PREDIcT session: bind the dataset once to an 8-worker engine, BRJ
    //    sampling at 10%, the default transform, and a cost model trained on
    //    sample runs at ratios 0.05-0.2. Every stage artifact (sample draw,
    //    sample runs, trained model, actual run) is cached in the session.
    let session = Predictor::builder()
        .engine(BspEngine::new(BspConfig::with_workers(8)))
        .sampler(BiasedRandomJump::default())
        .config(PredictorConfig::default())
        .bind(graph, "Wiki");

    // 4. Evaluate: predict from the sample run, then execute the actual run
    //    to measure the prediction error.
    let evaluation = session.evaluate(&workload).expect("prediction succeeds");
    let prediction = &evaluation.prediction;

    println!("\n--- prediction (from the 10% sample run) ---");
    println!(
        "predicted iterations:        {}",
        prediction.predicted_iterations
    );
    println!(
        "predicted superstep runtime: {:.0} ms (simulated)",
        prediction.predicted_superstep_ms
    );
    println!(
        "cost model: features {:?}, R^2 = {:.3}",
        prediction
            .cost_model
            .features
            .iter()
            .map(|f| f.name())
            .collect::<Vec<_>>(),
        prediction.cost_model.r_squared()
    );
    println!(
        "training sources: {:?} ({} sample rows, {} history rows)",
        prediction.training.source,
        prediction.training.sample_observations,
        prediction.training.history_observations
    );
    println!(
        "sample run cost: {:.0} ms ({:.1}% of the actual run)",
        prediction.sample_run_total_ms,
        evaluation.sample_overhead_ratio() * 100.0
    );

    println!("\n--- actual run ---");
    println!(
        "actual iterations:           {}",
        evaluation.actual_iterations
    );
    println!(
        "actual superstep runtime:    {:.0} ms (simulated)",
        evaluation.actual_superstep_ms
    );

    println!("\n--- errors ---");
    println!(
        "iteration error: {:+.1}%",
        evaluation.iteration_error() * 100.0
    );
    println!(
        "runtime error:   {:+.1}%",
        evaluation.runtime_error() * 100.0
    );
}
