//! Feasibility analysis: "Given a cluster deployment and a workload of
//! iterative algorithms, is it feasible to execute the workload on an input
//! dataset while guaranteeing user specified SLAs?" (paper, section 1).
//!
//! ```bash
//! cargo run --release --example feasibility_analysis
//! ```
//!
//! The example predicts the runtime of a small mixed workload (PageRank,
//! connected components, neighborhood estimation) on the UK-2002 analog from
//! 10% sample runs, sums the predictions and compares the total against an
//! SLA deadline — without ever executing the full workload.

use predict_repro::prelude::*;

fn main() {
    let engine = BspEngine::new(BspConfig::with_workers(8));
    let sampler = BiasedRandomJump::default();
    let graph = Dataset::Uk2002.load();
    println!(
        "cluster: 8 workers | dataset: UK-2002 analog ({} vertices, {} edges)",
        graph.num_vertices(),
        graph.num_edges()
    );

    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(PageRankWorkload::with_epsilon(0.001, graph.num_vertices())),
        Box::new(ConnectedComponentsWorkload),
        Box::new(NeighborhoodWorkload::default()),
    ];

    let predictor = Predictor::new(&engine, &sampler, PredictorConfig::default());
    let mut total_predicted_ms = 0.0;
    let mut total_sample_cost_ms = 0.0;
    println!(
        "\n{:<8} {:>12} {:>16}",
        "workload", "iterations", "predicted [ms]"
    );
    for workload in &workloads {
        let prediction = predictor
            .predict(workload.as_ref(), &graph, &HistoryStore::new(), "UK")
            .expect("prediction succeeds");
        println!(
            "{:<8} {:>12} {:>16.0}",
            workload.name(),
            prediction.predicted_iterations,
            prediction.predicted_superstep_ms
        );
        total_predicted_ms += prediction.predicted_superstep_ms;
        total_sample_cost_ms += prediction.sample_run_total_ms;
    }

    let sla_ms = 20_000.0;
    println!("\npredicted workload runtime: {total_predicted_ms:.0} ms (simulated cluster time)");
    println!("cost of the sample runs:    {total_sample_cost_ms:.0} ms");
    println!("SLA budget:                 {sla_ms:.0} ms");
    if total_predicted_ms <= sla_ms {
        println!(
            "=> FEASIBLE: the workload is predicted to finish {:.0} ms under the SLA",
            sla_ms - total_predicted_ms
        );
    } else {
        println!(
            "=> NOT FEASIBLE: the workload is predicted to overrun the SLA by {:.0} ms",
            total_predicted_ms - sla_ms
        );
    }
}
