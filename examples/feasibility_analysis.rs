//! Feasibility analysis: "Given a cluster deployment and a workload of
//! iterative algorithms, is it feasible to execute the workload on an input
//! dataset while guaranteeing user specified SLAs?" (paper, section 1).
//!
//! ```bash
//! cargo run --release --example feasibility_analysis
//! ```
//!
//! The example predicts the runtime of a small mixed workload (PageRank,
//! connected components, neighborhood estimation) on the UK-2002 analog from
//! 10% sample runs, sums the predictions and compares the total against an
//! SLA deadline — without ever executing the full workload. All three
//! predictions go through one session, so the 10% sample of the graph is
//! drawn once and shared; only the per-workload sample runs and cost models
//! differ (the session's cache statistics at the end show the sharing).

use predict_repro::prelude::*;
use std::sync::Arc;

fn main() {
    let graph = Arc::new(Dataset::Uk2002.load());
    println!(
        "cluster: 8 workers | dataset: UK-2002 analog ({} vertices, {} edges)",
        graph.num_vertices(),
        graph.num_edges()
    );

    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(PageRankWorkload::with_epsilon(0.001, graph.num_vertices())),
        Box::new(ConnectedComponentsWorkload),
        Box::new(NeighborhoodWorkload::default()),
    ];

    let session = Predictor::builder()
        .engine(BspEngine::new(BspConfig::with_workers(8)))
        .sampler(BiasedRandomJump::default())
        .config(PredictorConfig::default())
        .bind(graph, "UK");
    let mut total_predicted_ms = 0.0;
    let mut total_sample_cost_ms = 0.0;
    println!(
        "\n{:<8} {:>12} {:>16}",
        "workload", "iterations", "predicted [ms]"
    );
    for workload in &workloads {
        let prediction = session
            .predict(workload.as_ref())
            .expect("prediction succeeds");
        println!(
            "{:<8} {:>12} {:>16.0}",
            workload.name(),
            prediction.predicted_iterations,
            prediction.predicted_superstep_ms
        );
        total_predicted_ms += prediction.predicted_superstep_ms;
        total_sample_cost_ms += prediction.sample_run_total_ms;
    }

    let stats = session.stats();
    println!(
        "\nsession cache: {} sample draw(s) shared by {} sample runs ({} hits, {} misses)",
        stats.samples, stats.sample_runs, stats.hits, stats.misses
    );

    let sla_ms = 20_000.0;
    println!("predicted workload runtime: {total_predicted_ms:.0} ms (simulated cluster time)");
    println!("cost of the sample runs:    {total_sample_cost_ms:.0} ms");
    println!("SLA budget:                 {sla_ms:.0} ms");
    if total_predicted_ms <= sla_ms {
        println!(
            "=> FEASIBLE: the workload is predicted to finish {:.0} ms under the SLA",
            sla_ms - total_predicted_ms
        );
    } else {
        println!(
            "=> NOT FEASIBLE: the workload is predicted to overrun the SLA by {:.0} ms",
            total_predicted_ms - sla_ms
        );
    }
}
