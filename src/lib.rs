//! # predict-repro
//!
//! A from-scratch Rust reproduction of **PREDIcT** (Popescu, Balmin,
//! Ercegovac, Ailamaki — *PREDIcT: Towards Predicting the Runtime of Large
//! Scale Iterative Analytics*, PVLDB 6(13), 2013): an experimental methodology
//! that predicts the number of iterations and the runtime of iterative graph
//! algorithms from short sample runs.
//!
//! This root crate re-exports the workspace members under stable module names
//! so applications can depend on a single crate:
//!
//! * [`graph`] — CSR graphs, generators, dataset analogs, property analysis;
//! * [`sampling`] — Biased Random Jump and the other sampling techniques;
//! * [`bsp`] — the Giraph-like BSP engine with a simulated cluster clock;
//! * [`algorithms`] — PageRank, top-k ranking, semi-clustering, connected
//!   components, neighborhood estimation, SSSP and the
//!   [`Workload`](algorithms::Workload) trait;
//! * [`cluster`] — out-of-process BSP workers behind a transport
//!   abstraction (wire format, worker protocol, measured superstep
//!   timings);
//! * [`predict`] — the PREDIcT pipeline itself (transform functions,
//!   extrapolation, cost models), decomposed into cached prediction
//!   sessions and the concurrent `PredictService` front-end.
//!
//! The [`prelude`] pulls in the handful of types most applications need.
//!
//! # Quickstart
//!
//! ```
//! use predict_repro::prelude::*;
//!
//! // A scaled-down analog of the paper's Wikipedia graph.
//! let graph = Dataset::Wikipedia.load_small();
//!
//! // The workload whose runtime we want to predict.
//! let workload = PageRankWorkload::with_epsilon(0.01, graph.num_vertices());
//!
//! // PREDIcT session: BRJ sampling + transform function + cost model,
//! // bound to the dataset once. Stage artifacts (sample draws, sample
//! // runs, trained models) are cached across predictions.
//! let session = Predictor::builder()
//!     .engine(BspEngine::new(BspConfig::default()))
//!     .sampler(BiasedRandomJump::default())
//!     .config(PredictorConfig::single_ratio(0.1))
//!     .bind(graph, "Wiki");
//! let prediction = session.predict(&workload).expect("prediction succeeds");
//!
//! assert!(prediction.predicted_iterations > 0);
//! assert!(prediction.predicted_superstep_ms > 0.0);
//! ```

/// Graph substrate: CSR graphs, generators, dataset analogs and property
/// analysis (re-export of `predict-graph`).
pub use predict_graph as graph;

/// Sampling techniques: BRJ, RJ, MHRW, Forest Fire and baselines (re-export
/// of `predict-sampling`).
pub use predict_sampling as sampling;

/// The Giraph-like BSP engine with per-worker feature counters and a
/// simulated cluster clock (re-export of `predict-bsp`).
pub use predict_bsp as bsp;

/// The iterative algorithms evaluated by the paper (re-export of
/// `predict-algorithms`).
pub use predict_algorithms as algorithms;

/// Out-of-process BSP workers over the cut lists: wire format, transports
/// and the measured-superstep cluster driver (re-export of
/// `predict-cluster`).
pub use predict_cluster as cluster;

/// The PREDIcT prediction pipeline (re-export of `predict-core`).
pub use predict_core as predict;

/// The types most applications need, in one import.
pub mod prelude {
    pub use predict_algorithms::{
        ConnectedComponentsWorkload, NeighborhoodWorkload, PageRankWorkload,
        SemiClusteringWorkload, TopKWorkload, Workload, WorkloadRun,
    };
    pub use predict_bsp::{
        BspConfig, BspEngine, ClusterCostConfig, ExecutionMode, GraphStorage, PoolMode, RunProfile,
        StorageMode, TransportMode, WorkerPool,
    };
    pub use predict_core::{
        Evaluation, HistoryStore, KeyFeature, PredictError, PredictRequest, PredictService,
        Prediction, PredictionSession, Predictor, PredictorConfig, TrainingSource,
        TransformFunction,
    };
    pub use predict_graph::datasets::{Dataset, DatasetScale};
    pub use predict_graph::CsrGraph;
    pub use predict_sampling::{BiasedRandomJump, RandomJump, Sampler};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_an_end_to_end_workflow() {
        let graph = Dataset::LiveJournal.load_small();
        let workload = PageRankWorkload::with_epsilon(0.01, graph.num_vertices());
        let session = Predictor::builder()
            .engine(BspEngine::new(BspConfig::with_workers(4)))
            .sampler(BiasedRandomJump::default())
            .config(PredictorConfig::single_ratio(0.1))
            .bind(graph, "LJ");
        let prediction = session.predict(&workload).expect("prediction succeeds");
        assert!(prediction.predicted_iterations > 0);
        // The legacy one-shot facade stays available for single predictions.
        let engine = BspEngine::new(BspConfig::with_workers(4));
        let sampler = BiasedRandomJump::default();
        let predictor = Predictor::new(&engine, &sampler, PredictorConfig::single_ratio(0.1));
        let one_shot = predictor
            .predict(
                &workload,
                &Dataset::LiveJournal.load_small(),
                &HistoryStore::new(),
                "LJ",
            )
            .expect("prediction succeeds");
        assert_eq!(
            one_shot.predicted_iterations,
            prediction.predicted_iterations
        );
    }
}
