//! Cross-crate integration tests: the full PREDIcT pipeline on small-scale
//! dataset analogs, for every workload of the paper's evaluation, driven
//! through the session API.
//!
//! These tests assert the *shape* of the paper's headline results rather than
//! absolute numbers: predictions exist, iteration counts land in the right
//! ballpark on scale-free graphs, runtime predictions are within loose error
//! bands, and sample runs are much cheaper than actual runs.

use predict_repro::algorithms::{SemiClusteringParams, TopKParams};
use predict_repro::prelude::*;
use std::sync::Arc;

fn predictor_config() -> PredictorConfig {
    // The paper's training protocol: extrapolate from the 10% sample run,
    // train the cost model on sample runs at ratios 0.05-0.2 so the
    // regression sees feature variation across scales.
    PredictorConfig::default().with_seed(7)
}

fn session(dataset: Dataset, label: &str) -> PredictionSession {
    Predictor::builder()
        .engine(BspEngine::new(BspConfig::with_workers(8)))
        .sampler(BiasedRandomJump::default())
        .config(predictor_config())
        .bind(dataset.load_small(), label)
}

#[test]
fn pagerank_end_to_end_on_scale_free_analog() {
    let session = session(Dataset::Wikipedia, "Wiki");
    let workload = PageRankWorkload::with_epsilon(0.001, session.graph().num_vertices());
    let eval = session.evaluate(&workload).expect("prediction succeeds");

    // Headline shape: iteration prediction within a factor of ~2 even on the
    // tiny test-scale analog (the synthetic analogs are far better mixed than
    // the paper's real web graphs, so their samples converge relatively
    // faster; see EXPERIMENTS.md for the quantitative comparison at the
    // default experiment scale), and runtime prediction within ~60%.
    assert!(
        eval.iteration_error().abs() <= 0.65,
        "PageRank iteration error too large: {:+.2} ({} predicted vs {} actual)",
        eval.iteration_error(),
        eval.prediction.predicted_iterations,
        eval.actual_iterations
    );
    assert!(
        eval.runtime_error().abs() <= 0.6,
        "PageRank runtime error too large: {:+.2}",
        eval.runtime_error()
    );
    assert!(eval.sample_overhead_ratio() < 0.6);
}

#[test]
fn topk_end_to_end_has_bounded_feature_and_runtime_errors() {
    let session = session(Dataset::Uk2002, "UK");
    let workload = TopKWorkload::new(TopKParams::new(5, 0.001), 0.01);
    let eval = session.evaluate(&workload).expect("prediction succeeds");

    assert!(eval.prediction.predicted_iterations >= 2);
    assert!(
        eval.remote_bytes_error().abs() <= 0.8,
        "remote bytes error too large: {:+.2}",
        eval.remote_bytes_error()
    );
    assert!(
        eval.runtime_error().abs() <= 1.0,
        "top-k runtime error too large: {:+.2}",
        eval.runtime_error()
    );
    // Top-k is the paper's variable-runtime algorithm: per-iteration
    // predictions must actually vary.
    let per_iter = &eval.prediction.per_iteration_ms;
    let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        max > min * 1.2,
        "per-iteration predictions should vary: {min} .. {max}"
    );
}

#[test]
fn semi_clustering_end_to_end_produces_a_prediction() {
    let session = session(Dataset::Wikipedia, "Wiki");
    let workload = SemiClusteringWorkload::new(SemiClusteringParams::default());
    let eval = session.evaluate(&workload).expect("prediction succeeds");

    assert!(eval.prediction.predicted_iterations >= 2);
    assert!(eval.prediction.predicted_superstep_ms > 0.0);
    assert!(eval.actual_superstep_ms > 0.0);
    assert!(
        eval.iteration_error().abs() <= 0.75,
        "semi-clustering iteration error too large: {:+.2}",
        eval.iteration_error()
    );
}

#[test]
fn connected_components_and_neighborhood_are_predictable() {
    let session = session(Dataset::Uk2002, "UK");

    for workload in [
        Box::new(ConnectedComponentsWorkload) as Box<dyn Workload>,
        Box::new(NeighborhoodWorkload::default()) as Box<dyn Workload>,
    ] {
        let eval = session
            .evaluate(workload.as_ref())
            .expect("prediction succeeds");
        assert!(
            eval.prediction.predicted_iterations >= 2,
            "{}",
            workload.name()
        );
        assert!(
            eval.prediction.predicted_superstep_ms > 0.0,
            "{}",
            workload.name()
        );
    }
    // Both workloads shared the session's (ratio, seed) sample draws: at
    // most one sampling artifact per configured ratio, not per workload.
    assert!(session.stats().samples <= predictor_config().training_ratios.len() + 1);
}

#[test]
fn scale_free_analogs_predict_better_than_livejournal_on_average() {
    // The paper's recurring observation: LiveJournal (not power-law) is the
    // hardest dataset for sample-based iteration prediction. Compare the mean
    // absolute iteration error of the scale-free analogs against LJ's over a
    // few seeds to keep the comparison stable.
    let engine = Arc::new(BspEngine::new(BspConfig::with_workers(8)));

    let mean_error = |dataset: Dataset| -> f64 {
        let session = Predictor::builder()
            .engine(Arc::clone(&engine))
            .sampler(BiasedRandomJump::default())
            .bind(dataset.load_small(), dataset.prefix());
        let workload = PageRankWorkload::with_epsilon(0.001, session.graph().num_vertices());
        let mut total = 0.0;
        let seeds = [3u64, 11, 29];
        for &seed in &seeds {
            let eval = session
                .evaluate_with(
                    &workload,
                    &PredictorConfig::single_ratio(0.1).with_seed(seed),
                )
                .expect("prediction succeeds");
            total += eval.iteration_error().abs();
        }
        total / seeds.len() as f64
    };

    let wiki = mean_error(Dataset::Wikipedia);
    let uk = mean_error(Dataset::Uk2002);
    let lj = mean_error(Dataset::LiveJournal);
    let scale_free_mean = (wiki + uk) / 2.0;
    assert!(
        scale_free_mean <= lj + 0.15,
        "scale-free analogs should not be clearly worse than LJ: wiki {wiki:.2}, uk {uk:.2}, lj {lj:.2}"
    );
}
