//! Integration tests for the session/service layer: the amortization
//! guarantee (each `(ratio, seed)` sample run executes exactly once), the
//! concurrency determinism of `submit_batch`, and the throughput win of the
//! cached path over the uncached one-shot pipeline.

use predict_repro::bsp::BspEngine;
use predict_repro::graph::VertexId;
use predict_repro::prelude::*;
use predict_repro::sampling::BiasedRandomJump;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Sampler decorator counting how many times the underlying technique is
/// invoked — the direct measure of sampling-stage amortization.
#[derive(Debug)]
struct CountingSampler {
    inner: BiasedRandomJump,
    calls: Arc<AtomicUsize>,
}

impl Sampler for CountingSampler {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn sample_vertices_with(
        &self,
        graph: &CsrGraph,
        ratio: f64,
        seed: u64,
        scratch: &mut predict_repro::sampling::SampleScratch,
    ) -> Vec<VertexId> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.inner.sample_vertices_with(graph, ratio, seed, scratch)
    }
}

fn graph() -> Arc<CsrGraph> {
    Arc::new(Dataset::Wikipedia.load_small())
}

fn four_workloads(n: usize) -> Vec<Arc<dyn Workload>> {
    vec![
        Arc::new(PageRankWorkload::with_epsilon(0.001, n)),
        Arc::new(TopKWorkload::default()),
        Arc::new(ConnectedComponentsWorkload),
        Arc::new(NeighborhoodWorkload::default()),
    ]
}

/// The acceptance bar of the session redesign: predicting 4 workloads on one
/// dataset through a session performs each `(ratio, seed)` sample run
/// exactly once, counted by engine invocations — repeating every prediction
/// adds zero runs, while the uncached one-shot path re-runs everything.
#[test]
fn session_performs_each_sample_run_exactly_once() {
    let g = graph();
    let workloads = four_workloads(g.num_vertices());
    let config = PredictorConfig::single_ratio(0.1);

    let calls = Arc::new(AtomicUsize::new(0));
    let engine = BspEngine::new(BspConfig::with_workers(4));
    let session = Predictor::builder()
        .engine(engine.clone())
        .sampler(CountingSampler {
            inner: BiasedRandomJump::default(),
            calls: Arc::clone(&calls),
        })
        .config(config.clone())
        .bind(Arc::clone(&g), "Wiki");

    for w in &workloads {
        session.predict(w.as_ref()).unwrap();
    }
    let runs_first_pass = engine.runs_executed();
    let samples_first_pass = calls.load(Ordering::Relaxed);
    // One (ratio, seed) pair -> the sampler ran exactly once for all 4
    // workloads.
    assert_eq!(samples_first_pass, 1, "sampling was not shared");

    // Predicting all 4 workloads again: every sample run is cached.
    for w in &workloads {
        session.predict(w.as_ref()).unwrap();
    }
    assert_eq!(
        engine.runs_executed(),
        runs_first_pass,
        "a repeated prediction re-executed a sample run"
    );
    assert_eq!(calls.load(Ordering::Relaxed), samples_first_pass);
    assert_eq!(session.stats().samples, 1);
    assert_eq!(session.stats().sample_runs, workloads.len());

    // Reference: the uncached one-shot path re-runs everything per call, so
    // two passes cost exactly twice one pass.
    let uncached_engine = BspEngine::new(BspConfig::with_workers(4));
    let sampler = BiasedRandomJump::default();
    for _ in 0..2 {
        for w in &workloads {
            Predictor::new(&uncached_engine, &sampler, config.clone())
                .predict(w.as_ref(), &g, &HistoryStore::new(), "Wiki")
                .unwrap();
        }
    }
    assert_eq!(uncached_engine.runs_executed(), 2 * runs_first_pass);
}

/// `submit_batch` output must be identical across 1-thread and N-thread
/// executions, byte for byte, in request order.
#[test]
fn submit_batch_is_deterministic_across_thread_counts() {
    let g = graph();
    let other = Arc::new(Dataset::LiveJournal.load_small());
    let config = PredictorConfig::single_ratio(0.1).with_seed(9);

    let requests: Vec<PredictRequest> =
        four_workloads(g.num_vertices())
            .into_iter()
            .map(|w| PredictRequest::new("Wiki", Arc::clone(&g), w).with_config(config.clone()))
            .chain(four_workloads(other.num_vertices()).into_iter().map(|w| {
                PredictRequest::new("LJ", Arc::clone(&other), w).with_config(config.clone())
            }))
            .collect();

    let run_batch = |threads: usize| -> Vec<String> {
        let service = PredictService::new(
            BspEngine::new(BspConfig::with_workers(4)),
            Arc::new(BiasedRandomJump::default()),
        );
        service
            .submit_batch(&requests, threads)
            .into_iter()
            .map(|r| serde_json::to_string(&r.expect("prediction succeeds")).unwrap())
            .collect()
    };

    let sequential = run_batch(1);
    let concurrent = run_batch(4);
    assert_eq!(sequential.len(), requests.len());
    assert_eq!(
        sequential, concurrent,
        "batch output depends on thread count"
    );
    // Request order is preserved: workload names follow the request list.
    for (req, json) in requests.iter().zip(&sequential) {
        assert!(
            json.contains(&format!("\"workload\":\"{}\"", req.workload.name())),
            "result out of order for {}",
            req.workload.name()
        );
    }
}

/// Repeated requests through the warm service do *zero* engine work, which
/// is the mechanism behind the ≥2x repeated-request throughput the bench
/// `bench_predict_service` measures (in practice the margin is two orders of
/// magnitude). Asserted on engine-invocation counts — deterministic — with
/// the wall-clock ratio reported for information only, so a loaded CI
/// machine cannot fail the suite spuriously.
#[test]
fn warm_service_does_no_engine_work() {
    let g = graph();
    let workloads = four_workloads(g.num_vertices());
    let config = PredictorConfig::single_ratio(0.1);
    let rounds = 3;

    let service_engine = BspEngine::new(BspConfig::with_workers(4));
    let service = PredictService::new(
        service_engine.clone(),
        Arc::new(BiasedRandomJump::default()),
    );
    let requests: Vec<PredictRequest> = workloads
        .iter()
        .map(|w| {
            PredictRequest::new("Wiki", Arc::clone(&g), Arc::clone(w)).with_config(config.clone())
        })
        .collect();
    for request in &requests {
        service.submit(request).unwrap(); // warm the caches
    }
    let warm_runs_before = service_engine.runs_executed();
    let start = Instant::now();
    for _ in 0..rounds {
        for request in &requests {
            service.submit(request).unwrap();
        }
    }
    let warm = start.elapsed();
    assert_eq!(
        service_engine.runs_executed(),
        warm_runs_before,
        "warm requests must be answered without engine work"
    );

    let engine = BspEngine::new(BspConfig::with_workers(4));
    let sampler = BiasedRandomJump::default();
    let start = Instant::now();
    for _ in 0..rounds {
        for w in &workloads {
            Predictor::new(&engine, &sampler, config.clone())
                .predict(w.as_ref(), &g, &HistoryStore::new(), "Wiki")
                .unwrap();
        }
    }
    let uncached = start.elapsed();
    assert!(
        engine.runs_executed() > 0,
        "the uncached reference must actually run the engine"
    );
    eprintln!(
        "warm service: {warm:?} for {} requests vs uncached one-shot {uncached:?}",
        rounds * requests.len()
    );
}
