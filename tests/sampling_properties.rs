//! Property-based integration tests (proptest) for the invariants the
//! pipeline relies on: sampler contracts, extrapolation arithmetic and
//! regression recovery.

use predict_repro::graph::generators::{generate_rmat, RmatConfig};
use predict_repro::predict::{Extrapolator, FeatureSet, KeyFeature, LinearModel};
use predict_repro::prelude::*;
use predict_repro::sampling::{Mhrw, RandomJump, RandomNode};
use proptest::prelude::*;

/// Case count for this suite: the local default, bounded by `PROPTEST_CASES`
/// when set (CI sets it so the property suites finish in seconds).
///
/// Kept at the call site (not only in the vendored proptest) because the real
/// registry `proptest` ignores `PROPTEST_CASES` once `with_cases` is used;
/// this keeps the CI bound working if the workspace swaps back to it.
fn suite_cases(default_cases: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.trim().parse::<u32>().ok())
        .map_or(default_cases, |env| default_cases.min(env))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(suite_cases(24)))]

    /// Every sampler returns the requested number of unique, in-range
    /// vertices for any ratio and seed.
    #[test]
    fn samplers_respect_ratio_and_uniqueness(
        scale in 6u32..9,
        degree in 2usize..6,
        ratio in 0.02f64..0.9,
        seed in 0u64..1_000,
    ) {
        let graph = generate_rmat(&RmatConfig::new(scale, degree).with_seed(seed));
        let expected = ((graph.num_vertices() as f64 * ratio).round() as usize)
            .clamp(1, graph.num_vertices());
        let brj = BiasedRandomJump::default();
        let rj = RandomJump::default();
        let mhrw = Mhrw::default();
        let rn = RandomNode;
        let samplers: [&dyn Sampler; 4] = [&brj, &rj, &mhrw, &rn];
        for sampler in samplers {
            let vertices = sampler.sample_vertices(&graph, ratio, seed);
            prop_assert_eq!(vertices.len(), expected, "{} size", sampler.name());
            let mut unique = vertices.clone();
            unique.sort_unstable();
            unique.dedup();
            prop_assert_eq!(unique.len(), vertices.len(), "{} uniqueness", sampler.name());
            prop_assert!(vertices.iter().all(|&v| (v as usize) < graph.num_vertices()));
        }
    }

    /// The induced sample graph never has more vertices/edges than the full
    /// graph and its per-vertex degrees are bounded by the originals.
    #[test]
    fn induced_samples_are_subgraphs(
        scale in 6u32..9,
        ratio in 0.05f64..0.5,
        seed in 0u64..500,
    ) {
        let graph = generate_rmat(&RmatConfig::new(scale, 5).with_seed(seed));
        let sample = BiasedRandomJump::default().sample(&graph, ratio, seed);
        prop_assert!(sample.graph.num_vertices() <= graph.num_vertices());
        prop_assert!(sample.graph.num_edges() <= graph.num_edges());
        for (s, o) in sample.mapping.iter() {
            prop_assert!(sample.graph.out_degree(s) <= graph.out_degree(o));
        }
    }

    /// Extrapolating features by (eV, eE) and scaling them back down is the
    /// identity (up to floating point).
    #[test]
    fn extrapolation_is_invertible(
        active in 1u64..100_000,
        msgs in 1u64..1_000_000,
        bytes in 1u64..100_000_000,
        ev in 1.0f64..100.0,
        ee in 1.0f64..100.0,
    ) {
        let counters = predict_repro::bsp::WorkerCounters {
            active_vertices: active,
            total_vertices: active * 2,
            local_messages: msgs / 3,
            remote_messages: msgs,
            local_message_bytes: bytes / 5,
            remote_message_bytes: bytes,
        };
        let features = FeatureSet::from_counters(&counters);
        let up = Extrapolator::new(ev, ee).extrapolate(&features);
        let down = Extrapolator::new(1.0 / ev, 1.0 / ee).extrapolate(&up);
        for f in KeyFeature::ALL {
            let original = features.get(f);
            let roundtrip = down.get(f);
            prop_assert!((original - roundtrip).abs() <= original.abs() * 1e-9 + 1e-9);
        }
    }

    /// Ordinary least squares recovers a noiseless linear relationship for
    /// arbitrary coefficients.
    #[test]
    fn regression_recovers_arbitrary_linear_models(
        intercept in -100.0f64..100.0,
        c1 in -10.0f64..10.0,
        c2 in -10.0f64..10.0,
    ) {
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![i as f64, ((i * 7) % 13) as f64])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| intercept + c1 * r[0] + c2 * r[1]).collect();
        let model = LinearModel::fit(&rows, &y).unwrap();
        prop_assert!((model.intercept - intercept).abs() < 1e-6);
        prop_assert!((model.coefficients[0] - c1).abs() < 1e-6);
        prop_assert!((model.coefficients[1] - c2).abs() < 1e-6);
    }
}
