//! Integration tests for the parallel runtime's determinism contract: the
//! `RunProfile` of a workload — counters, aggregates and simulated timings —
//! serializes to byte-identical JSON no matter how many OS threads execute
//! the superstep phases (see `predict_bsp::runtime`).

use predict_repro::prelude::*;

/// Runs `workload` on `graph` under the given execution mode and returns the
/// profile serialized to JSON (the byte-level representation the history
/// store and experiment harness persist).
fn profile_json(workload: &dyn Workload, graph: &CsrGraph, mode: ExecutionMode) -> String {
    let engine = BspEngine::new(BspConfig::with_workers(8).with_execution(mode));
    let run = workload.run(&engine, graph);
    run.profile.to_json().expect("profile serializes")
}

fn assert_thread_count_invariant(workload: &dyn Workload, graph: &CsrGraph) {
    let sequential = profile_json(workload, graph, ExecutionMode::Sequential);
    for threads in [1usize, 2, 4] {
        let parallel = profile_json(workload, graph, ExecutionMode::Parallel { threads });
        assert_eq!(
            sequential,
            parallel,
            "{} profile diverged at {threads} threads",
            workload.name()
        );
    }
}

#[test]
fn pagerank_profile_is_byte_identical_across_thread_counts() {
    let graph = Dataset::Wikipedia.load_small();
    let workload = PageRankWorkload::with_epsilon(0.01, graph.num_vertices());
    assert_thread_count_invariant(&workload, &graph);
}

#[test]
fn semi_clustering_profile_is_byte_identical_across_thread_counts() {
    let graph = Dataset::LiveJournal.load_small();
    let workload = SemiClusteringWorkload::default();
    assert_thread_count_invariant(&workload, &graph);
}

#[test]
fn end_to_end_prediction_is_byte_identical_across_thread_counts() {
    // The full pipeline — sampling, sample runs, training, extrapolation —
    // rides on engine runs; pin its output bytes across execution modes too.
    let graph = std::sync::Arc::new(Dataset::Uk2002.load_small());
    let workload = TopKWorkload::default();
    let mut outputs = Vec::new();
    for mode in [
        ExecutionMode::Sequential,
        ExecutionMode::Parallel { threads: 2 },
        ExecutionMode::Parallel { threads: 4 },
    ] {
        let session = Predictor::builder()
            .engine(BspEngine::new(BspConfig::with_workers(8)))
            .execution(mode)
            .sampler(BiasedRandomJump::default())
            .config(PredictorConfig::single_ratio(0.1))
            .bind(std::sync::Arc::clone(&graph), "UK");
        let prediction = session.predict(&workload).expect("prediction succeeds");
        outputs.push(serde_json::to_string(&prediction).expect("prediction serializes"));
    }
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[0], outputs[2]);
}
