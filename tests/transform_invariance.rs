//! Integration tests for the transform function: the paper's core insight
//! that only the combination of a structure-preserving sampling technique and
//! a threshold transform preserves the number of iterations.

use predict_repro::algorithms::ConvergenceKind;
use predict_repro::predict::TransformFunction;
use predict_repro::prelude::*;

fn engine() -> BspEngine {
    BspEngine::new(BspConfig::with_workers(8))
}

#[test]
fn transform_keeps_pagerank_iterations_closer_than_no_transform() {
    // Figure 2 / section 1.1: without scaling the threshold the sample run
    // converges after a different number of iterations than the actual run.
    let session = Predictor::builder()
        .engine(engine())
        .sampler(BiasedRandomJump::default())
        .bind(Dataset::Uk2002.load_small(), "UK");
    let workload = PageRankWorkload::with_epsilon(0.001, session.graph().num_vertices());
    let actual = session.actual_run(&workload).iterations() as f64;

    let error_with = |transform: Option<TransformFunction>| -> f64 {
        let mut config = PredictorConfig::single_ratio(0.1).with_seed(5);
        config.transform = transform;
        let p = session
            .predict_with(&workload, &config)
            .expect("prediction succeeds");
        (p.predicted_iterations as f64 - actual).abs() / actual
    };

    let with_transform = error_with(None);
    let without_transform = error_with(Some(TransformFunction::identity()));
    assert!(
        with_transform < without_transform,
        "default transform ({with_transform:.2}) should beat the identity transform ({without_transform:.2})"
    );
    // Without the transform the sample run keeps iterating against a
    // threshold that is 10x too tight for its size, so it overshoots badly.
    assert!(without_transform > 0.2);
}

#[test]
fn ratio_convergence_workloads_keep_their_threshold() {
    // Semi-clustering and top-k converge on ratios, so the paper's default
    // rule is the identity: the sample-run workload must carry the same
    // threshold as the actual-run workload.
    let sc = SemiClusteringWorkload::default();
    let transform = TransformFunction::default_for(sc.convergence());
    let transformed = transform.apply(&sc, 0.1);
    assert_eq!(transformed.threshold(), sc.threshold());

    let pr = PageRankWorkload::with_epsilon(0.01, 10_000);
    assert_eq!(pr.convergence(), ConvergenceKind::AbsoluteAggregate);
    let transform = TransformFunction::default_for(pr.convergence());
    let transformed = transform.apply(&pr, 0.1);
    assert!((transformed.threshold() - pr.threshold() * 10.0).abs() < 1e-15);
}

#[test]
fn transformed_sample_run_converges_in_similar_iterations_as_actual() {
    // Direct check of the invariant the transform is designed to maintain,
    // independent of the rest of the pipeline.
    let graph = Dataset::Wikipedia.load_small();
    let engine = engine();
    let sampler = BiasedRandomJump::default();
    let workload = PageRankWorkload::with_epsilon(0.001, graph.num_vertices());

    let actual_iterations = workload.run(&engine, &graph).iterations();

    let sample = sampler.sample(&graph, 0.1, 3);
    let transform = TransformFunction::default_for(workload.convergence());
    let sample_workload = transform.apply(&workload, sample.achieved_ratio);
    let sample_iterations = sample_workload.run(&engine, &sample.graph).iterations();

    let error =
        (sample_iterations as f64 - actual_iterations as f64).abs() / actual_iterations as f64;
    assert!(
        error <= 0.65,
        "transformed sample run iterations {sample_iterations} too far from actual {actual_iterations}"
    );
}
