//! Smoke tests for the `examples/` directory.
//!
//! CI compiles every example (`cargo build --examples`); these tests
//! additionally exercise the exact API paths the examples walk, at small
//! scale so they run in seconds under `cargo test`.

use predict_repro::algorithms::SemiClusteringParams;
use predict_repro::prelude::*;
use std::sync::Arc;

/// The `examples/quickstart.rs` path: bind a session, evaluate a PageRank
/// prediction against the actual run and read out everything the example
/// prints.
#[test]
fn quickstart_path_produces_a_complete_evaluation() {
    let graph = Dataset::Wikipedia.load_small();
    let workload = PageRankWorkload::with_epsilon(0.001, graph.num_vertices());
    let session = Predictor::builder()
        .engine(BspEngine::new(BspConfig::with_workers(8)))
        .sampler(BiasedRandomJump::default())
        .config(PredictorConfig::default())
        .bind(graph, "Wiki");

    let evaluation = session.evaluate(&workload).expect("prediction succeeds");
    let prediction = &evaluation.prediction;

    assert!(prediction.predicted_iterations > 0);
    assert!(prediction.predicted_superstep_ms > 0.0);
    assert!(!prediction.cost_model.features.is_empty());
    assert!(prediction.cost_model.r_squared().is_finite());
    assert_eq!(prediction.training.source, TrainingSource::SampleRuns);
    assert!(evaluation.actual_iterations > 0);
    assert!(evaluation.actual_superstep_ms > 0.0);
    // The sample run must be much cheaper than the actual run — the whole
    // point of PREDIcT (Table 3 caps overhead at a fraction of the job).
    assert!(evaluation.sample_overhead_ratio() < 1.0);
}

/// The `examples/capacity_planning.rs` path: predictions for several worker
/// counts, one session per candidate allocation sharing the graph.
#[test]
fn capacity_planning_path_predicts_across_worker_counts() {
    let graph = Arc::new(Dataset::Wikipedia.load_small());
    let workload = SemiClusteringWorkload::new(SemiClusteringParams::default());

    for workers in [2usize, 4] {
        let session = Predictor::builder()
            .engine(BspEngine::new(BspConfig::with_workers(workers)))
            .sampler(BiasedRandomJump::default())
            .config(PredictorConfig::single_ratio(0.1).with_seed(3))
            .bind(Arc::clone(&graph), "Wiki");
        let prediction = session.predict(&workload).expect("prediction succeeds");
        assert!(
            prediction.predicted_superstep_ms > 0.0,
            "workers = {workers}"
        );
    }
}

/// The `examples/feasibility_analysis.rs` path: a mixed workload predicted
/// through one session (sharing the sample draw), summed into an SLA
/// verdict.
#[test]
fn feasibility_path_sums_predictions_for_a_mixed_workload() {
    let session = Predictor::builder()
        .engine(BspEngine::new(BspConfig::with_workers(8)))
        .sampler(BiasedRandomJump::default())
        .config(PredictorConfig::single_ratio(0.1).with_seed(11))
        .bind(Dataset::Uk2002.load_small(), "UK");
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(PageRankWorkload::with_epsilon(
            0.001,
            session.graph().num_vertices(),
        )),
        Box::new(ConnectedComponentsWorkload),
    ];

    let mut total_ms = 0.0;
    for workload in &workloads {
        let prediction = session
            .predict(workload.as_ref())
            .expect("prediction succeeds");
        total_ms += prediction.predicted_superstep_ms;
    }
    assert!(total_ms > 0.0);
    // Both workloads shared one sampling artifact.
    assert_eq!(session.stats().samples, 1);
    assert_eq!(session.stats().sample_runs, 2);
}

/// The `examples/ranking_workload.rs` path: top-k requests served through a
/// `PredictService`.
#[test]
fn ranking_path_serves_topk_through_the_service() {
    let service = PredictService::new(
        BspEngine::new(BspConfig::with_workers(8)),
        Arc::new(BiasedRandomJump::default()),
    );
    let graph = Arc::new(Dataset::Wikipedia.load_small());
    let request = PredictRequest::new("Wiki", graph, Arc::new(TopKWorkload::default()))
        .with_config(PredictorConfig::single_ratio(0.1));
    let evaluation = service.evaluate(&request).expect("prediction succeeds");
    assert!(evaluation.prediction.predicted_iterations >= 2);
    assert!(evaluation.actual_superstep_ms > 0.0);
}
