//! Smoke tests for the `examples/` directory.
//!
//! CI compiles every example (`cargo build --examples`); these tests
//! additionally exercise the exact API paths the examples walk, at small
//! scale so they run in seconds under `cargo test`.

use predict_repro::algorithms::SemiClusteringParams;
use predict_repro::prelude::*;

/// The `examples/quickstart.rs` path: evaluate a PageRank prediction against
/// the actual run and read out everything the example prints.
#[test]
fn quickstart_path_produces_a_complete_evaluation() {
    let graph = Dataset::Wikipedia.load_small();
    let workload = PageRankWorkload::with_epsilon(0.001, graph.num_vertices());
    let engine = BspEngine::new(BspConfig::with_workers(8));
    let sampler = BiasedRandomJump::default();
    let predictor = Predictor::new(&engine, &sampler, PredictorConfig::default());

    let evaluation = predictor
        .evaluate(&workload, &graph, &HistoryStore::new(), "Wiki")
        .expect("prediction succeeds");
    let prediction = &evaluation.prediction;

    assert!(prediction.predicted_iterations > 0);
    assert!(prediction.predicted_superstep_ms > 0.0);
    assert!(!prediction.cost_model.features.is_empty());
    assert!(prediction.cost_model.r_squared().is_finite());
    assert!(evaluation.actual_iterations > 0);
    assert!(evaluation.actual_superstep_ms > 0.0);
    // The sample run must be much cheaper than the actual run — the whole
    // point of PREDIcT (Table 3 caps overhead at a fraction of the job).
    assert!(evaluation.sample_overhead_ratio() < 1.0);
}

/// The `examples/capacity_planning.rs` path: predictions for several worker
/// counts, each from a predictor configured like the example's.
#[test]
fn capacity_planning_path_predicts_across_worker_counts() {
    let graph = Dataset::Wikipedia.load_small();
    let sampler = BiasedRandomJump::default();
    let workload = SemiClusteringWorkload::new(SemiClusteringParams::default());

    for workers in [2usize, 4] {
        let engine = BspEngine::new(BspConfig::with_workers(workers));
        let predictor = Predictor::new(
            &engine,
            &sampler,
            PredictorConfig::single_ratio(0.1).with_seed(3),
        );
        let prediction = predictor
            .predict(&workload, &graph, &HistoryStore::new(), "Wiki")
            .expect("prediction succeeds");
        assert!(
            prediction.predicted_superstep_ms > 0.0,
            "workers = {workers}"
        );
    }
}

/// The `examples/feasibility_analysis.rs` path: a mixed workload whose
/// predicted runtimes sum into an SLA verdict.
#[test]
fn feasibility_path_sums_predictions_for_a_mixed_workload() {
    let graph = Dataset::Uk2002.load_small();
    let engine = BspEngine::new(BspConfig::with_workers(8));
    let sampler = BiasedRandomJump::default();
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(PageRankWorkload::with_epsilon(0.001, graph.num_vertices())),
        Box::new(ConnectedComponentsWorkload),
    ];

    let mut total_ms = 0.0;
    for workload in &workloads {
        let predictor = Predictor::new(
            &engine,
            &sampler,
            PredictorConfig::single_ratio(0.1).with_seed(11),
        );
        let prediction = predictor
            .predict(workload.as_ref(), &graph, &HistoryStore::new(), "UK")
            .expect("prediction succeeds");
        total_ms += prediction.predicted_superstep_ms;
    }
    assert!(total_ms > 0.0);
}
