//! Integration tests for the historical-run store and for end-to-end
//! determinism of the pipeline, through the session API.

use predict_repro::algorithms::TopKParams;
use predict_repro::prelude::*;

fn engine() -> BspEngine {
    BspEngine::new(BspConfig::with_workers(8))
}

#[test]
fn history_store_roundtrips_through_disk_and_feeds_predictions() {
    let engine = engine();
    let workload = TopKWorkload::new(TopKParams::new(5, 0.001), 0.01);

    // Record actual runs on two datasets.
    let mut history = HistoryStore::new();
    for dataset in [Dataset::LiveJournal, Dataset::Uk2002] {
        let graph = dataset.load_small();
        let run = workload.run(&engine, &graph);
        history.record(workload.name(), dataset.prefix(), run.profile);
    }

    // Persist and reload.
    let dir = std::env::temp_dir().join("predict_repro_integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("history.json");
    history.save(&path).unwrap();
    let reloaded = HistoryStore::load(&path).unwrap();
    assert_eq!(reloaded.len(), 2);
    std::fs::remove_file(&path).ok();

    // Bind a session on a third dataset with the reloaded history.
    let with_history_session = Predictor::builder()
        .engine(engine.clone())
        .sampler(BiasedRandomJump::default())
        .config(PredictorConfig::single_ratio(0.1))
        .bind_with_history(Dataset::Wikipedia.load_small(), "Wiki", reloaded);
    let with_history = with_history_session
        .predict(&workload)
        .expect("prediction succeeds");
    assert!(with_history.cost_model.training_observations > 0);
    assert!(with_history.predicted_superstep_ms > 0.0);
    assert_eq!(
        with_history.training.source,
        TrainingSource::SampleRunsWithHistory
    );

    // History from other datasets adds training rows compared to sample-only.
    let without_history_session = Predictor::builder()
        .engine(engine)
        .sampler(BiasedRandomJump::default())
        .config(PredictorConfig::single_ratio(0.1))
        .bind(Dataset::Wikipedia.load_small(), "Wiki");
    let without_history = without_history_session
        .predict(&workload)
        .expect("prediction succeeds");
    assert!(
        with_history.cost_model.training_observations
            > without_history.cost_model.training_observations
    );
    assert_eq!(without_history.training.source, TrainingSource::SampleRuns);
    assert_eq!(without_history.training.history_observations, 0);
}

#[test]
fn pipeline_is_deterministic_for_fixed_seeds() {
    let engine = engine();
    let sampler = BiasedRandomJump::default();
    let graph = Dataset::Wikipedia.load_small();
    let workload = PageRankWorkload::with_epsilon(0.001, graph.num_vertices());
    let predictor = Predictor::new(
        &engine,
        &sampler,
        PredictorConfig::single_ratio(0.1).with_seed(42),
    );

    let a = predictor
        .predict(&workload, &graph, &HistoryStore::new(), "Wiki")
        .unwrap();
    let b = predictor
        .predict(&workload, &graph, &HistoryStore::new(), "Wiki")
        .unwrap();
    assert_eq!(a.predicted_iterations, b.predicted_iterations);
    assert_eq!(a.predicted_superstep_ms, b.predicted_superstep_ms);
    assert_eq!(a.per_iteration_ms, b.per_iteration_ms);
}

#[test]
fn same_seed_runs_serialize_to_byte_identical_history_json() {
    // Regression test for end-to-end determinism of the serialized artifacts:
    // two pipeline runs with the same seed must produce byte-identical
    // `HistoryStore::to_json()` output, not just equal in-memory predictions.
    // This guards both the pipeline (no hidden nondeterminism in sampling or
    // the simulated clock) and the serializer (deterministic field and map
    // ordering). One run goes through a cached session, the other through the
    // legacy one-shot facade, so the two code paths are also pinned to each
    // other.
    let engine = engine();
    let sampler = BiasedRandomJump::default();
    let graph = Dataset::LiveJournal.load_small();
    let workload = PageRankWorkload::with_epsilon(0.001, graph.num_vertices());
    let config = || PredictorConfig::single_ratio(0.1).with_seed(0xD5);

    let history_json = |prediction: Prediction| {
        let mut history = HistoryStore::new();
        history.record(workload.name(), "LJ", prediction.sample_profile);
        history.to_json().expect("history serializes")
    };

    let session = Predictor::builder()
        .engine(engine.clone())
        .sampler(BiasedRandomJump::default())
        .config(config())
        .bind(graph.clone(), "LJ");
    let a = history_json(session.predict(&workload).expect("prediction succeeds"));
    let b = history_json(
        Predictor::new(&engine, &sampler, config())
            .predict(&workload, &graph, &HistoryStore::new(), "LJ")
            .expect("prediction succeeds"),
    );
    assert!(!a.is_empty());
    assert_eq!(a.as_bytes(), b.as_bytes(), "same-seed history JSON differs");
}

#[test]
fn different_seeds_still_give_consistent_iteration_predictions() {
    // The prediction should be robust to the sampling seed: iteration
    // estimates across seeds must stay within a small band of each other.
    // One session serves all seeds; each seed is a distinct cached artifact.
    let session = Predictor::builder()
        .engine(engine())
        .sampler(BiasedRandomJump::default())
        .bind(Dataset::Uk2002.load_small(), "UK");
    let workload = PageRankWorkload::with_epsilon(0.001, session.graph().num_vertices());

    let mut iterations = Vec::new();
    for seed in [1u64, 2, 3, 4] {
        let p = session
            .predict_with(
                &workload,
                &PredictorConfig::single_ratio(0.1).with_seed(seed),
            )
            .unwrap();
        iterations.push(p.predicted_iterations as f64);
    }
    let min = iterations.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = iterations.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        max - min <= max * 0.35,
        "iteration predictions vary too much across seeds: {iterations:?}"
    );
}
