//! Integration tests for the persistent worker pool behind the service:
//! a warm service answers whole batches without spawning any OS thread, the
//! pool never changes prediction bytes, and the warm path performs zero
//! scratch-buffer allocations and zero repeated storage builds.

use predict_repro::prelude::*;
use std::sync::Arc;

fn graph() -> Arc<CsrGraph> {
    Arc::new(Dataset::Wikipedia.load_small())
}

fn workloads(n: usize) -> Vec<Arc<dyn Workload>> {
    vec![
        Arc::new(PageRankWorkload::with_epsilon(0.001, n)),
        Arc::new(TopKWorkload::default()),
        Arc::new(ConnectedComponentsWorkload),
        Arc::new(NeighborhoodWorkload::default()),
    ]
}

fn requests(g: &Arc<CsrGraph>) -> Vec<PredictRequest> {
    let config = PredictorConfig::single_ratio(0.1).with_seed(11);
    workloads(g.num_vertices())
        .into_iter()
        .map(|w| PredictRequest::new("Wiki", Arc::clone(g), w).with_config(config.clone()))
        .collect()
}

/// The tentpole's hard acceptance bar: once the pool is warm, an N-request
/// `submit_batch` spawns **zero** new OS threads — batches pipeline through
/// the same long-lived workers that also run each request's superstep
/// phases. Counted on the engine's own pool (not the process-global
/// counter), so concurrently running tests cannot interfere.
#[test]
fn a_warm_service_answers_batches_without_spawning_threads() {
    let g = graph();
    // PoolMode::On (not Auto) so a stray PREDICT_POOL=off in the
    // environment cannot silently turn this into a no-op test.
    let engine = BspEngine::new(
        BspConfig::with_workers(4)
            .with_execution(ExecutionMode::Parallel { threads: 4 })
            .with_pool(PoolMode::On),
    );
    let service = PredictService::new(engine.clone(), Arc::new(BiasedRandomJump::default()));
    let requests = requests(&g);

    // Cold batch: allowed to spawn (lazily, bounded by pool capacity).
    let cold = service.submit_batch(&requests, 4);
    assert!(cold.iter().all(Result::is_ok));
    let spawned_after_warmup = engine.pool_threads_spawned();
    assert!(
        spawned_after_warmup > 0,
        "the pool path was not exercised at all"
    );

    // Warm batches: zero spawns, batch after batch.
    for round in 0..3 {
        let warm = service.submit_batch(&requests, 4);
        assert!(warm.iter().all(Result::is_ok));
        assert_eq!(
            engine.pool_threads_spawned(),
            spawned_after_warmup,
            "warm batch round {round} spawned new threads"
        );
    }
}

/// Scheduling substrate must never leak into results: the same batch through
/// the pool and through scoped fallback threads, at several widths, is
/// byte-identical.
#[test]
fn pool_scheduling_never_changes_prediction_bytes() {
    let g = graph();
    let requests = requests(&g);
    let run = |pool: PoolMode, threads: usize| -> Vec<String> {
        let service = PredictService::new(
            BspEngine::new(BspConfig::with_workers(4).with_pool(pool)),
            Arc::new(BiasedRandomJump::default()),
        );
        service
            .submit_batch(&requests, threads)
            .into_iter()
            .map(|r| serde_json::to_string(&r.expect("prediction succeeds")).unwrap())
            .collect()
    };
    let reference = run(PoolMode::Off, 1);
    for (pool, threads) in [(PoolMode::On, 1), (PoolMode::On, 4), (PoolMode::Off, 4)] {
        assert_eq!(
            reference,
            run(pool, threads),
            "{pool:?} at {threads} threads changed prediction bytes"
        );
    }
}

/// The warm path allocates nothing per request: sampler scratch buffers come
/// from the session's scratch pool (no silent fresh-allocation fallback
/// under contention), and full-graph shard storage is built at most once per
/// engine configuration.
#[test]
fn warm_batches_reuse_scratch_buffers_and_storage() {
    let g = graph();
    let engine = BspEngine::new(
        BspConfig::with_workers(4)
            .with_pool(PoolMode::On)
            .with_storage(StorageMode::Sharded),
    );
    let service = PredictService::new(engine, Arc::new(BiasedRandomJump::default()));
    let requests = requests(&g);
    assert!(service.submit_batch(&requests, 4).iter().all(Result::is_ok));

    let session = service.session_for("Wiki", &g);
    let warm = session.stats();
    // The batch above drew one sample (one ratio/seed pair shared by all
    // four workloads), so the scratch pool allocated at most once per
    // concurrent draw — and never more than the batch width.
    assert!(
        warm.scratch_allocations >= 1 && warm.scratch_allocations <= 4,
        "unexpected scratch allocations: {}",
        warm.scratch_allocations
    );
    assert!(
        warm.full_storage_builds <= 1,
        "full-graph storage was built {} times",
        warm.full_storage_builds
    );

    for _ in 0..3 {
        assert!(service.submit_batch(&requests, 4).iter().all(Result::is_ok));
    }
    let stats = session.stats();
    assert_eq!(
        stats.scratch_allocations, warm.scratch_allocations,
        "a warm batch allocated fresh sampler scratch"
    );
    assert_eq!(
        stats.full_storage_builds, warm.full_storage_builds,
        "a warm batch rebuilt full-graph storage"
    );
}
