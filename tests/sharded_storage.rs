//! Integration tests for sharded graph storage: a run that keeps the graph
//! as one `ShardedCsr` per worker is byte-identical — values, `RunProfile`
//! JSON, predictions — to the same run over the unified CSR allocation, at
//! every thread count (see `predict_bsp::storage`).

use predict_repro::prelude::*;

/// Runs `workload` on `graph` under the given storage mode and returns the
/// profile serialized to JSON (the byte-level representation the history
/// store and experiment harness persist).
fn profile_json(
    workload: &dyn Workload,
    graph: &CsrGraph,
    storage: StorageMode,
    threads: usize,
) -> String {
    let engine = BspEngine::new(
        BspConfig::with_workers(8)
            .with_storage(storage)
            .with_execution(ExecutionMode::Parallel { threads }),
    );
    let run = workload.run(&engine, graph);
    run.profile.to_json().expect("profile serializes")
}

fn assert_storage_invariant(workload: &dyn Workload, graph: &CsrGraph) {
    let unified = profile_json(workload, graph, StorageMode::Unified, 1);
    for threads in [1usize, 4] {
        let sharded = profile_json(workload, graph, StorageMode::Sharded, threads);
        assert_eq!(
            unified,
            sharded,
            "{} profile diverged under sharded storage at {threads} threads",
            workload.name()
        );
    }
}

#[test]
fn pagerank_profile_is_byte_identical_under_sharded_storage() {
    let graph = Dataset::Wikipedia.load_small();
    let workload = PageRankWorkload::with_epsilon(0.01, graph.num_vertices());
    assert_storage_invariant(&workload, &graph);
}

#[test]
fn semi_clustering_profile_is_byte_identical_under_sharded_storage() {
    // Semi-clustering runs on the weighted undirected conversion, so this
    // pins cross-shard *weighted* edges end to end.
    let graph = Dataset::LiveJournal.load_small();
    let workload = SemiClusteringWorkload::default();
    assert_storage_invariant(&workload, &graph);
}

#[test]
fn end_to_end_prediction_is_byte_identical_under_sharded_storage() {
    // The full pipeline — sampling, sample runs, training, extrapolation —
    // rides on engine runs; pin its output bytes across storage modes and
    // thread counts via the builder's `.storage(...)` opt-in.
    let graph = std::sync::Arc::new(Dataset::Uk2002.load_small());
    let workload = TopKWorkload::default();
    let mut outputs = Vec::new();
    for (storage, threads) in [
        (StorageMode::Unified, 1usize),
        (StorageMode::Sharded, 1),
        (StorageMode::Sharded, 4),
    ] {
        let session = Predictor::builder()
            .engine(BspEngine::new(BspConfig::with_workers(8)))
            .execution(ExecutionMode::Parallel { threads })
            .storage(storage)
            .sampler(BiasedRandomJump::default())
            .config(PredictorConfig::single_ratio(0.1))
            .bind(std::sync::Arc::clone(&graph), "uk2002");
        let eval = session.evaluate(&workload).expect("prediction succeeds");
        outputs.push(serde_json::to_string(&eval).expect("evaluation serializes"));
    }
    assert_eq!(outputs[0], outputs[1], "sharded storage changed the bytes");
    assert_eq!(outputs[0], outputs[2], "threads changed sharded bytes");
}

#[test]
fn prebuilt_sharded_storage_runs_without_a_unified_graph() {
    // The point of the refactor: a graph can go edge list -> shards and be
    // executed without ever existing as one allocation. Only the reference
    // result materializes the unified CSR.
    let graph = Dataset::Wikipedia.load_small();
    let edge_list = graph.to_edge_list();
    let config = BspConfig::with_workers(8);
    let storage = GraphStorage::shard_edge_list(&edge_list, 8, config.partition_strategy);
    assert_eq!(storage.num_vertices(), graph.num_vertices());
    assert_eq!(storage.num_edges(), graph.num_edges());

    let engine = BspEngine::new(config);
    let program = predict_repro::algorithms::pagerank::PageRank::new(Default::default());
    let workload_graph_free = engine.run_storage(&storage, &program);
    let unified = engine.run(&graph, &program);
    assert_eq!(workload_graph_free.values, unified.values);
    assert_eq!(workload_graph_free.profile, unified.profile);
}
