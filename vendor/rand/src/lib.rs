//! Offline stand-in for the subset of the `rand 0.8` API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, dependency-free implementation of the `rand` surface it
//! consumes: [`rngs::StdRng`] (xoshiro256++ seeded with SplitMix64),
//! [`Rng::gen_range`] / [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`] and
//! [`seq::SliceRandom`]. The generator is deterministic for a given seed,
//! which the test suite and the PREDIcT experiment binaries rely on.
//!
//! This is **not** the real `rand` crate: distributions beyond uniform ranges,
//! thread-local generators and the wider trait hierarchy are intentionally
//! absent. Swap `[workspace.dependencies] rand` back to the registry version
//! once network access is available; no call site needs to change.

pub use rngs::StdRng;

/// Source of raw randomness: the core of the `rand` trait stack.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A random number generator seedable from a fixed-size seed or a `u64`.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 the way
    /// `rand 0.8` does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing helpers layered on top of [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps 64 random bits to a uniform `f32` in `[0, 1)`.
pub(crate) fn unit_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// SplitMix64, used to expand `u64` seeds into full generator states.
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(state: u64) -> Self {
        Self { state }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod distributions {
    //! Uniform sampling from range expressions, mirroring
    //! `rand::distributions::uniform::SampleRange`.

    use super::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// A range that can produce uniform samples of `T`.
    pub trait SampleRange<T> {
        /// Draws one sample from the range.
        ///
        /// # Panics
        ///
        /// Panics if the range is empty.
        fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
    }

    /// Multiply-shift bounded integer sampling (Lemire); the bias for the
    /// range sizes used in this workspace is below 2^-32 and irrelevant for
    /// simulation purposes.
    fn bounded(rng: &mut impl RngCore, span: u64) -> u64 {
        ((rng.next_u64() as u128 * span as u128) >> 64) as u64
    }

    macro_rules! int_sample_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(bounded(rng, span) as $t)
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(bounded(rng, span + 1) as $t)
                }
            }
        )*};
    }

    int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_sample_range {
        ($($t:ty => $unit:path),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    self.start + (self.end - self.start) * $unit(rng.next_u64())
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    lo + (hi - lo) * $unit(rng.next_u64())
                }
            }
        )*};
    }

    float_sample_range!(f64 => crate::unit_f64, f32 => crate::unit_f32);
}

pub mod rngs {
    //! Concrete generators. [`StdRng`] here is xoshiro256++ rather than
    //! ChaCha12 — statistically strong enough for graph generation and
    //! sampling simulations, and much simpler to vendor.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            Self { s }
        }
    }
}

pub mod seq {
    //! Sequence helpers mirroring `rand::seq::SliceRandom`.

    use super::{Rng, RngCore};

    /// Shuffling and random choice on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_the_whole_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation_and_choose_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
