//! Suite configuration, including the CI case-count bound.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Requested number of cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }

    /// The effective case count: the explicit count, bounded by the
    /// `PROPTEST_CASES` environment variable when it is set (so CI can cap
    /// suite runtime without editing every suite, and local runs keep their
    /// full depth).
    pub fn resolved_cases(&self) -> u32 {
        match env_cases() {
            Some(env) => self.cases.min(env),
            None => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: env_cases().unwrap_or(256),
        }
    }
}

fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_cases_is_explicit() {
        // Note: cannot mutate the environment here without racing other
        // tests, so only the no-env path is covered directly.
        let config = ProptestConfig::with_cases(64);
        assert_eq!(config.cases, 64);
        assert!(config.resolved_cases() <= 64);
    }
}
