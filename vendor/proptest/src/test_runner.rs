//! Case execution support: per-case deterministic generators and the error
//! type property bodies return.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Why a property case did not pass.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
    rejection: bool,
}

impl TestCaseError {
    /// A genuine assertion failure.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            rejection: false,
        }
    }

    /// A rejected case (`prop_assume!`): skipped, not failed.
    pub fn reject(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            rejection: true,
        }
    }

    /// True for rejections, which the runner skips silently.
    pub fn is_rejection(&self) -> bool {
        self.rejection
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// The deterministic generator for one named case: every run of the suite
/// sees identical inputs, so failures are reproducible without persistence
/// files.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash ^ (u64::from(case) << 32) ^ u64::from(case))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn case_rng_is_deterministic_and_distinct() {
        let mut a = case_rng("foo", 0);
        let mut b = case_rng("foo", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = case_rng("foo", 1);
        let mut d = case_rng("bar", 0);
        let base = case_rng("foo", 0).next_u64();
        assert_ne!(base, c.next_u64());
        assert_ne!(base, d.next_u64());
    }

    #[test]
    fn rejections_are_distinguished() {
        assert!(TestCaseError::reject("r").is_rejection());
        assert!(!TestCaseError::fail("f").is_rejection());
        assert_eq!(TestCaseError::fail("boom").to_string(), "boom");
    }
}
