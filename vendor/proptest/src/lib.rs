//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! small, deterministic property-testing engine with proptest-compatible
//! surface syntax: the [`proptest!`] macro (with `#![proptest_config(...)]`
//! and `arg in strategy` bindings), range/tuple/`prop_map`/collection
//! strategies, [`any`], and the `prop_assert*` macros. Test bodies are
//! wrapped in `Result`-returning closures exactly like real proptest, so
//! early `return Ok(())` works.
//!
//! Differences from real proptest, by design:
//!
//! * cases are generated from a fixed per-case seed, so runs are fully
//!   deterministic with no persistence files;
//! * there is no shrinking — a failure reports the case number and seed;
//! * [`ProptestConfig`] honors the `PROPTEST_CASES` environment variable
//!   (taking the minimum of it and the explicit case count) so CI can bound
//!   suite runtime without losing local depth.

pub mod arbitrary;
pub mod collection;
pub mod config;
pub mod strategy;
pub mod test_runner;

/// The glob import every proptest suite starts with.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `arg in strategy` binding is sampled for
/// every case and the body runs as a `Result`-returning closure.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::config::ProptestConfig = $config;
                let cases = config.resolved_cases();
                for case in 0..cases {
                    let mut rng = $crate::test_runner::case_rng(stringify!($name), case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&$strategy, &mut rng);
                    )+
                    let mut body = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    };
                    match body() {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(e) if e.is_rejection() => {}
                        ::std::result::Result::Err(e) => {
                            panic!(
                                "proptest case {}/{} of `{}` failed: {}",
                                case + 1,
                                cases,
                                stringify!($name),
                                e
                            );
                        }
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::config::ProptestConfig::default())]
            $(
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

/// Fails the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} (`{:?}` vs `{:?}`)", format!($($fmt)*), left, right),
            ));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Skips the current case when `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
