//! The `any::<T>()` entry point for canonical strategies.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Types with a canonical strategy covering their whole domain.
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;

    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy for uniformly random `bool`s.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! arbitrary_full_range_int {
    ($($t:ty => $strat:ident),*) => {$(
        /// Strategy covering the type's full value range.
        #[derive(Debug, Clone, Copy)]
        pub struct $strat;

        impl Strategy for $strat {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }

        impl Arbitrary for $t {
            type Strategy = $strat;

            fn arbitrary() -> $strat {
                $strat
            }
        }
    )*};
}

arbitrary_full_range_int! {
    u8 => AnyU8, u16 => AnyU16, u32 => AnyU32,
    i8 => AnyI8, i16 => AnyI16, i32 => AnyI32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn any_bool_hits_both_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = any::<bool>();
        let trues = (0..1_000).filter(|_| s.generate(&mut rng)).count();
        assert!((300..700).contains(&trues), "trues = {trues}");
    }

    #[test]
    fn any_int_spans_the_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = any::<u8>();
        let mut seen_high = false;
        let mut seen_low = false;
        for _ in 0..2_000 {
            let v = s.generate(&mut rng);
            seen_high |= v >= 200;
            seen_low |= v < 56;
        }
        assert!(seen_high && seen_low);
    }
}
