//! Value-generation strategies: ranges, tuples, mapping and constants.

use rand::distributions::SampleRange;
use rand::rngs::StdRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of [`Strategy::Value`].
///
/// Unlike real proptest there is no value tree or shrinking: a strategy
/// simply draws one value per case from a deterministic generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generates with a fresh strategy derived from each value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Retries until `pred` accepts a value (up to an internal cap).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            pred,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.source.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 candidates in a row",
            self.whence
        );
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                self.clone().sample_single(rng)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                self.clone().sample_single(rng)
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_and_map_generate_in_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1_000 {
            let v = (0u32..10).generate(&mut rng);
            assert!(v < 10);
            let (a, b, c) = (0u32..4, 1usize..3, 0.5f64..1.5).generate(&mut rng);
            assert!(a < 4 && (1..3).contains(&b) && (0.5..1.5).contains(&c));
            let doubled = (1u64..100).prop_map(|x| x * 2).generate(&mut rng);
            assert!(doubled % 2 == 0 && doubled < 200);
        }
    }

    #[test]
    fn just_filter_and_flat_map_work() {
        let mut rng = StdRng::seed_from_u64(8);
        assert_eq!(Just(41u8).generate(&mut rng), 41);
        let even = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..100 {
            assert_eq!(even.generate(&mut rng) % 2, 0);
        }
        let nested = (1usize..5).prop_flat_map(|n| (0usize..n).prop_map(move |k| (n, k)));
        for _ in 0..100 {
            let (n, k) = nested.generate(&mut rng);
            assert!(k < n);
        }
    }
}
