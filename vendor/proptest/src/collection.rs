//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// A length specification for collection strategies: either a fixed size or
/// a half-open range of sizes.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        Self {
            min: len,
            max: len + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        Self {
            min: range.start,
            max: range.end,
        }
    }
}

/// Strategy for `Vec`s whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.size.min + 1 == self.size.max {
            self.size.min
        } else {
            rng.gen_range(self.size.min..self.size.max)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_respects_fixed_and_ranged_sizes() {
        let mut rng = StdRng::seed_from_u64(4);
        let fixed = vec(0u32..5, 48);
        assert_eq!(fixed.generate(&mut rng).len(), 48);
        let ranged = vec((0u32..3, 0u32..3), 1..10);
        for _ in 0..200 {
            let v = ranged.generate(&mut rng);
            assert!((1..10).contains(&v.len()));
            assert!(v.iter().all(|&(a, b)| a < 3 && b < 3));
        }
    }
}
