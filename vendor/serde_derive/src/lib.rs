//! Hand-written `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for
//! the vendored `serde` stand-in.
//!
//! The build environment has no crates.io access, so these derives are
//! implemented directly on `proc_macro::TokenStream` without `syn`/`quote`.
//! They support the shapes this workspace actually uses:
//!
//! * structs with named fields (including generic structs such as
//!   `Payload<'a, T>`), tuple structs and unit structs;
//! * enums with unit, tuple and struct variants (serde's external tagging:
//!   a unit variant becomes `"Name"`, a data variant `{"Name": ...}`);
//! * the `#[serde(default)]` field attribute on named fields (an absent key
//!   deserializes to `Default::default()`) and the `#[serde(skip)]` field
//!   attribute on named fields (the field is never serialized and
//!   deserializes to `Default::default()`, e.g. for derived caches); all
//!   other `#[serde(...)]` attributes are unsupported.
//!
//! Generated code refers to the framework via the `::serde` path, so any
//! crate using the derives must depend on the vendored `serde`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` by mapping the item onto the `serde::Value`
/// data model.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize` by reconstructing the item from the
/// `serde::Value` data model.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = parse_item(input);
    let code = match mode {
        Mode::Serialize => gen_serialize(&item),
        Mode::Deserialize => gen_deserialize(&item),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

// ---------------------------------------------------------------------------
// A minimal item model.

struct Item {
    name: String,
    /// Generic parameter declarations, e.g. `'a, T`.
    generic_decls: Vec<GenericParam>,
    body: Body,
}

enum GenericParam {
    Lifetime(String),
    Type(String),
}

enum Body {
    /// `struct S;`
    UnitStruct,
    /// `struct S(A, B);` with the field count.
    TupleStruct(usize),
    /// `struct S { a: A, .. }` with the fields.
    NamedStruct(Vec<Field>),
    /// `enum E { .. }`
    Enum(Vec<Variant>),
}

/// One named field and whether it carries `#[serde(default)]` /
/// `#[serde(skip)]`.
struct Field {
    name: String,
    default: bool,
    skip: bool,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// Tuple variant with the field count.
    Tuple(usize),
    /// Struct variant with the fields.
    Named(Vec<Field>),
}

// ---------------------------------------------------------------------------
// Parsing.

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes_and_visibility(&tokens, &mut i);

    let kind = expect_ident(&tokens, &mut i);
    assert!(
        kind == "struct" || kind == "enum",
        "serde_derive supports only structs and enums, got `{kind}`"
    );
    let name = expect_ident(&tokens, &mut i);
    let generic_decls = parse_generics(&tokens, &mut i);

    // A `where` clause would appear here; this workspace does not use any on
    // serialized types.
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        assert!(
            id.to_string() != "where",
            "serde_derive does not support where clauses"
        );
    }

    let body = if kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
            other => panic!("unexpected struct body: {other:?}"),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("unexpected enum body: {other:?}"),
        }
    };

    Item {
        name,
        generic_decls,
        body,
    }
}

/// True when the attribute bracket group after `#` at `tokens[i]` is a
/// `#[serde(...)]` attribute of any shape.
fn is_serde_attr(tokens: &[TokenTree], i: usize) -> bool {
    match tokens.get(i + 1) {
        Some(TokenTree::Group(bracket)) => matches!(
            bracket.stream().into_iter().next(),
            Some(TokenTree::Ident(id)) if id.to_string() == "serde"
        ),
        _ => false,
    }
}

/// Skips any `#[...]` attributes and a `pub` / `pub(...)` visibility prefix.
///
/// # Panics
///
/// Fails fast on `#[serde(...)]` attributes: the only supported positions
/// are `#[serde(default)]` / `#[serde(skip)]` on a named field, which
/// `parse_named_fields` consumes before delegating here. Anywhere else
/// (container, variant), silently ignoring the attribute would change the
/// serialized shape.
fn skip_attributes_and_visibility(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                assert!(
                    !is_serde_attr(tokens, *i),
                    "serde_derive supports `#[serde(default)]`/`#[serde(skip)]` \
                     on named fields only"
                );
                *i += 2; // `#` and the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // `(crate)` etc.
                    }
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, got {other:?}"),
    }
}

/// Parses `<...>` generic parameter declarations, if present.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<GenericParam> {
    match tokens.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return Vec::new(),
    }
    *i += 1;
    let mut depth = 1usize;
    let mut inner: Vec<TokenTree> = Vec::new();
    while depth > 0 {
        let tok = tokens
            .get(*i)
            .unwrap_or_else(|| panic!("unterminated generics on line {}", line!()));
        *i += 1;
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
        inner.push(tok.clone());
    }

    // Split the collected tokens on top-level commas and take each
    // parameter's name (the bounds after `:` are re-derived by the
    // generator).
    let mut params = Vec::new();
    for segment in split_top_level(&inner) {
        if segment.is_empty() {
            continue;
        }
        match &segment[0] {
            TokenTree::Punct(p) if p.as_char() == '\'' => {
                let TokenTree::Ident(id) = &segment[1] else {
                    panic!("malformed lifetime parameter");
                };
                params.push(GenericParam::Lifetime(format!("'{id}")));
            }
            TokenTree::Ident(id) if id.to_string() == "const" => {
                panic!("serde_derive does not support const generics");
            }
            TokenTree::Ident(id) => params.push(GenericParam::Type(id.to_string())),
            other => panic!("unexpected generic parameter start: {other:?}"),
        }
    }
    params
}

/// Splits a token slice on commas at angle-bracket depth zero (group tokens
/// are atomic, so only `<`/`>` need counting).
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut parts = vec![Vec::new()];
    let mut depth = 0usize;
    for tok in tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => {
                    parts.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        parts
            .last_mut()
            .expect("parts is never empty")
            .push(tok.clone());
    }
    if parts.last().is_some_and(Vec::is_empty) {
        parts.pop();
    }
    parts
}

/// Field-level serde markers parsed from one `#[serde(...)]` attribute.
#[derive(Clone, Copy, Default)]
struct FieldAttrs {
    default: bool,
    skip: bool,
}

/// Parses the attribute bracket group (the `[...]` after `#`) when it spells
/// `serde(default)` and/or `serde(skip)`.
///
/// # Panics
///
/// Fails fast on any other `#[serde(...)]` argument (`rename`,
/// `default = "path"`, ...): silently ignoring it would change the
/// serialized shape with no diagnostic, which this stub never does.
fn parse_serde_field_attr(tokens: &[TokenTree], i: usize) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    let Some(TokenTree::Group(bracket)) = tokens.get(i + 1) else {
        return attrs;
    };
    let inner: Vec<TokenTree> = bracket.stream().into_iter().collect();
    match (inner.first(), inner.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args)))
            if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            let arg_tokens: Vec<TokenTree> = args.stream().into_iter().collect();
            for segment in split_top_level(&arg_tokens) {
                let word = match segment.as_slice() {
                    [TokenTree::Ident(id)] => id.to_string(),
                    _ => String::new(),
                };
                match word.as_str() {
                    "default" => attrs.default = true,
                    "skip" => attrs.skip = true,
                    _ => panic!(
                        "serde_derive supports only the bare `default` and `skip` \
                         field attributes, got `#[serde({})]`",
                        args.stream()
                    ),
                }
            }
            attrs
        }
        _ => attrs,
    }
}

/// Parses `name: Type, ...` named-field lists, returning the fields with
/// their `#[serde(default)]` / `#[serde(skip)]` markers.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Inspect the field's attributes for serde markers before skipping
        // them (doc comments and other attributes are ignored).
        let mut attrs = FieldAttrs::default();
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            let parsed = parse_serde_field_attr(&tokens, i);
            attrs.default = attrs.default || parsed.default;
            attrs.skip = attrs.skip || parsed.skip;
            i += 2; // `#` and the bracket group
        }
        skip_attributes_and_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        names.push(Field {
            name: expect_ident(&tokens, &mut i),
            default: attrs.default,
            skip: attrs.skip,
        });
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field name, got {other:?}"),
        }
        // Skip the type up to the next top-level comma.
        let mut depth = 0usize;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth = depth.saturating_sub(1),
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    names
}

/// Counts comma-separated fields in a tuple struct/variant body.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    split_top_level(&tokens).len()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant and the separating comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation.

impl Item {
    /// `<'a, T: serde::Serialize>` — the impl's generic declarations with the
    /// trait bound added to every type parameter.
    fn impl_generics(&self, bound: &str) -> String {
        if self.generic_decls.is_empty() {
            return String::new();
        }
        let params: Vec<String> = self
            .generic_decls
            .iter()
            .map(|p| match p {
                GenericParam::Lifetime(lt) => lt.clone(),
                GenericParam::Type(name) => format!("{name}: {bound}"),
            })
            .collect();
        format!("<{}>", params.join(", "))
    }

    /// `<'a, T>` — the type's generic arguments.
    fn type_generics(&self) -> String {
        if self.generic_decls.is_empty() {
            return String::new();
        }
        let params: Vec<String> = self
            .generic_decls
            .iter()
            .map(|p| match p {
                GenericParam::Lifetime(lt) => lt.clone(),
                GenericParam::Type(name) => name.clone(),
            })
            .collect();
        format!("<{}>", params.join(", "))
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::UnitStruct => "::serde::Value::Null".to_string(),
        Body::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", elems.join(", "))
        }
        Body::NamedStruct(fields) => gen_serialize_named_map(fields, "self."),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| gen_serialize_variant(name, v))
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl{} ::serde::Serialize for {name}{} {{\n\
         fn serialize_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}",
        item.impl_generics("::serde::Serialize"),
        item.type_generics(),
    )
}

/// `Value::Map(vec![("a", ser(&self.a)), ...])` for named fields accessed
/// through `prefix` (`self.` for structs, empty for bound variant fields).
/// `#[serde(default)]` fields are always written; the attribute only relaxes
/// deserialization. `#[serde(skip)]` fields are omitted entirely.
fn gen_serialize_named_map(fields: &[Field], prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .filter(|f| !f.skip)
        .map(|f| {
            let f = &f.name;
            format!(
                "(::std::string::String::from(\"{f}\"), \
                 ::serde::Serialize::serialize_value(&{prefix}{f}))"
            )
        })
        .collect();
    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
}

fn gen_serialize_variant(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.kind {
        VariantKind::Unit => format!(
            "{enum_name}::{vname} => \
             ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
        ),
        VariantKind::Tuple(1) => format!(
            "{enum_name}::{vname}(f0) => ::serde::Value::Map(::std::vec![(\
             ::std::string::String::from(\"{vname}\"), \
             ::serde::Serialize::serialize_value(f0))]),"
        ),
        VariantKind::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            let elems: Vec<String> = binds
                .iter()
                .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                .collect();
            format!(
                "{enum_name}::{vname}({}) => ::serde::Value::Map(::std::vec![(\
                 ::std::string::String::from(\"{vname}\"), \
                 ::serde::Value::Seq(::std::vec![{}]))]),",
                binds.join(", "),
                elems.join(", ")
            )
        }
        VariantKind::Named(fields) => {
            let map = gen_serialize_named_map(fields, "");
            // Skipped fields are bound to `_` so the generated match arm does
            // not trigger unused-variable warnings.
            let binds: Vec<String> = fields
                .iter()
                .map(|f| {
                    if f.skip {
                        format!("{}: _", f.name)
                    } else {
                        f.name.clone()
                    }
                })
                .collect();
            format!(
                "{enum_name}::{vname} {{ {} }} => ::serde::Value::Map(::std::vec![(\
                 ::std::string::String::from(\"{vname}\"), {map})]),",
                binds.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::UnitStruct => format!("{{ let _ = value; ::std::result::Result::Ok({name}) }}"),
        Body::TupleStruct(n) => gen_deserialize_tuple(name, *n, "value"),
        Body::NamedStruct(fields) => {
            let ctor = gen_deserialize_named(name, fields, "entries");
            format!(
                "{{ let entries = value.as_map().ok_or_else(|| \
                 ::serde::Error::msg(\"expected map for {name}\"))?; {ctor} }}"
            )
        }
        Body::Enum(variants) => gen_deserialize_enum(name, variants),
    };
    format!(
        "impl{} ::serde::Deserialize for {name}{} {{\n\
         fn deserialize_value(value: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}",
        item.impl_generics("::serde::Deserialize"),
        item.type_generics(),
    )
}

/// Builds `Ok(Ctor(de(&items[0])?, ...))` from a sequence value expression.
fn gen_deserialize_tuple(ctor: &str, n: usize, value_expr: &str) -> String {
    let args: Vec<String> = (0..n)
        .map(|i| format!("::serde::Deserialize::deserialize_value(&items[{i}])?"))
        .collect();
    format!(
        "{{ let items = {value_expr}.as_seq().ok_or_else(|| \
         ::serde::Error::msg(\"expected sequence for {ctor}\"))?; \
         if items.len() != {n} {{ return ::std::result::Result::Err(\
         ::serde::Error::msg(\"wrong tuple arity for {ctor}\")); }} \
         ::std::result::Result::Ok({ctor}({})) }}",
        args.join(", ")
    )
}

/// Builds `Ok(Name { a: de(get_field(entries, "a")?)?, ... })`.
fn gen_deserialize_named(ctor: &str, fields: &[Field], entries_expr: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let name = &f.name;
            if f.skip {
                format!("{name}: ::std::default::Default::default()")
            } else if f.default {
                format!(
                    "{name}: match ::serde::get_field_opt({entries_expr}, \"{name}\") {{ \
                     ::std::option::Option::Some(v) => \
                     ::serde::Deserialize::deserialize_value(v)?, \
                     ::std::option::Option::None => ::std::default::Default::default() }}"
                )
            } else {
                format!(
                    "{name}: ::serde::Deserialize::deserialize_value(\
                     ::serde::get_field({entries_expr}, \"{name}\")?)?"
                )
            }
        })
        .collect();
    format!(
        "::std::result::Result::Ok({ctor} {{ {} }})",
        inits.join(", ")
    )
}

fn gen_deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let vname = &v.name;
            match &v.kind {
                VariantKind::Unit => None,
                VariantKind::Tuple(1) => Some(format!(
                    "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                     ::serde::Deserialize::deserialize_value(inner)?)),"
                )),
                VariantKind::Tuple(n) => Some(format!(
                    "\"{vname}\" => {},",
                    gen_deserialize_tuple(&format!("{name}::{vname}"), *n, "inner")
                )),
                VariantKind::Named(fields) => Some(format!(
                    "\"{vname}\" => {{ let entries = inner.as_map().ok_or_else(|| \
                     ::serde::Error::msg(\"expected map for {name}::{vname}\"))?; {} }},",
                    gen_deserialize_named(&format!("{name}::{vname}"), fields, "entries")
                )),
            }
        })
        .collect();

    let unit_match = if unit_arms.is_empty() {
        String::new()
    } else {
        format!(
            "if let ::serde::Value::Str(s) = value {{ \
             return match s.as_str() {{ {} _ => ::std::result::Result::Err(\
             ::serde::Error::msg(::std::format!(\"unknown variant `{{s}}` of {name}\"))) }}; }}",
            unit_arms.join(" ")
        )
    };
    let data_match = if data_arms.is_empty() {
        format!(
            "::std::result::Result::Err(::serde::Error::msg(\
             \"expected a variant name string for {name}\"))"
        )
    } else {
        format!(
            "{{ let entries = value.as_map().ok_or_else(|| \
             ::serde::Error::msg(\"expected variant map for {name}\"))?; \
             if entries.len() != 1 {{ return ::std::result::Result::Err(\
             ::serde::Error::msg(\"expected single-key variant map for {name}\")); }} \
             let (key, inner) = &entries[0]; \
             match key.as_str() {{ {} _ => ::std::result::Result::Err(\
             ::serde::Error::msg(::std::format!(\"unknown variant `{{key}}` of {name}\"))) }} }}",
            data_arms.join(" ")
        )
    };
    format!("{{ {unit_match} {data_match} }}")
}
