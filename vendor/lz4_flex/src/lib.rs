//! Offline stand-in for the `lz4_flex 0.11` block API surface used by this
//! workspace.
//!
//! Implements only the size-prepended block functions the artifact store
//! consumes:
//!
//! * [`compress_prepend_size`] — compress a byte slice, prefixing the
//!   uncompressed length as a little-endian `u32`;
//! * [`decompress_size_prepended`] — the inverse, validating the prefix and
//!   returning [`block::DecompressError`] on any malformed input (never
//!   panicking), which is what lets the store quarantine corrupt artifacts
//!   instead of crashing.
//!
//! The wire format is an LZ77/LZSS-style token stream (greedy hash-chain
//! matcher, 64 KiB window) and is **not** compatible with real LZ4 frames.
//! That is safe here: the only producer and consumer is the artifact store,
//! and a store file written by a different codec simply fails checksum or
//! decode validation and is quarantined + recomputed. Compression is fully
//! deterministic — identical input bytes always produce identical compressed
//! bytes — which the store's byte-identity tests rely on.
//!
//! Token stream grammar (after the 4-byte size prefix):
//!
//! ```text
//! block   := literal | match
//! literal := 0x00 varint(len) byte{len}
//! match   := 0x01 varint(distance) varint(length)     ; length >= MIN_MATCH
//! varint  := LEB128 (7 bits per byte, high bit = continue)
//! ```

/// Block (headerless) compression format, mirroring `lz4_flex::block`.
pub mod block {
    use std::fmt;

    /// Error returned by the block decompression functions.
    ///
    /// Mirrors `lz4_flex::block::DecompressError` in spirit: one opaque
    /// error type; the variants carry enough detail for diagnostics.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum DecompressError {
        /// Input shorter than the 4-byte uncompressed-size prefix.
        MissingSizePrefix,
        /// Token stream ended mid-block or declared lengths overran it.
        TruncatedInput,
        /// A match referenced bytes before the start of the output.
        OffsetOutOfBounds,
        /// Unknown block tag byte.
        InvalidToken(u8),
        /// Decompressed output did not match the size prefix.
        UncompressedSizeMismatch {
            /// Size declared by the prefix.
            expected: usize,
            /// Size actually produced.
            actual: usize,
        },
    }

    impl fmt::Display for DecompressError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                DecompressError::MissingSizePrefix => {
                    write!(f, "input shorter than the 4-byte size prefix")
                }
                DecompressError::TruncatedInput => write!(f, "compressed stream is truncated"),
                DecompressError::OffsetOutOfBounds => {
                    write!(f, "match distance points before the start of output")
                }
                DecompressError::InvalidToken(t) => write!(f, "invalid block token {t:#04x}"),
                DecompressError::UncompressedSizeMismatch { expected, actual } => write!(
                    f,
                    "size prefix declared {expected} bytes but stream produced {actual}"
                ),
            }
        }
    }

    impl std::error::Error for DecompressError {}
}

use block::DecompressError;

const TAG_LITERAL: u8 = 0x00;
const TAG_MATCH: u8 = 0x01;
/// Matches shorter than this cost more to encode than the literals they
/// replace (tag + two varints >= 3 bytes).
const MIN_MATCH: usize = 4;
/// Longest match the greedy matcher will emit in one token.
const MAX_MATCH: usize = 0xFFFF;
/// Back-reference window; distances never exceed this.
const WINDOW: usize = 64 * 1024;
/// Number of hash-table buckets (power of two).
const HASH_BUCKETS: usize = 1 << 14;

fn hash4(bytes: &[u8]) -> usize {
    // Multiplicative hash of the next four bytes (Fibonacci constant),
    // folded to the bucket count.
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(2654435761) >> 18) as usize & (HASH_BUCKETS - 1)
}

fn push_varint(out: &mut Vec<u8>, mut v: usize) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(input: &[u8], pos: &mut usize) -> Result<usize, DecompressError> {
    let mut value: usize = 0;
    let mut shift = 0u32;
    loop {
        let byte = *input.get(*pos).ok_or(DecompressError::TruncatedInput)?;
        *pos += 1;
        // Cap at 5 bytes (35 bits): lengths and distances are bounded well
        // below that, so anything longer is corruption, not a big value.
        if shift > 28 {
            return Err(DecompressError::TruncatedInput);
        }
        value |= ((byte & 0x7F) as usize) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

fn flush_literals(out: &mut Vec<u8>, input: &[u8], start: usize, end: usize) {
    if end > start {
        out.push(TAG_LITERAL);
        push_varint(out, end - start);
        out.extend_from_slice(&input[start..end]);
    }
}

/// Compresses `input`, prepending the uncompressed size as a little-endian
/// `u32` (the `lz4_flex::compress_prepend_size` convention).
pub fn compress_prepend_size(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + input.len() / 2);
    out.extend_from_slice(&(input.len() as u32).to_le_bytes());

    // head[bucket] is the most recent input position whose 4-byte prefix
    // hashed to `bucket` (usize::MAX = empty).
    let mut head = vec![usize::MAX; HASH_BUCKETS];
    let mut pos = 0usize;
    let mut literal_start = 0usize;

    while pos + MIN_MATCH <= input.len() {
        let bucket = hash4(&input[pos..]);
        let candidate = head[bucket];
        head[bucket] = pos;

        let mut match_len = 0usize;
        if candidate != usize::MAX && pos - candidate <= WINDOW {
            let limit = (input.len() - pos).min(MAX_MATCH);
            while match_len < limit && input[candidate + match_len] == input[pos + match_len] {
                match_len += 1;
            }
        }

        if match_len >= MIN_MATCH {
            flush_literals(&mut out, input, literal_start, pos);
            out.push(TAG_MATCH);
            push_varint(&mut out, pos - candidate);
            push_varint(&mut out, match_len);
            // Seed the hash table across the matched span so later data can
            // reference positions inside it (skip a few for speed; greedy
            // matching does not need every position).
            let match_end = pos + match_len;
            pos += 1;
            while pos < match_end && pos + MIN_MATCH <= input.len() {
                head[hash4(&input[pos..])] = pos;
                pos += 2;
            }
            pos = match_end;
            literal_start = pos;
        } else {
            pos += 1;
        }
    }
    flush_literals(&mut out, input, literal_start, input.len());
    out
}

/// Decompresses a buffer produced by [`compress_prepend_size`], validating
/// the little-endian `u32` uncompressed-size prefix.
///
/// Never panics on malformed input — every corruption mode maps to a
/// [`block::DecompressError`].
pub fn decompress_size_prepended(input: &[u8]) -> Result<Vec<u8>, DecompressError> {
    if input.len() < 4 {
        return Err(DecompressError::MissingSizePrefix);
    }
    let expected = u32::from_le_bytes([input[0], input[1], input[2], input[3]]) as usize;
    let mut out = Vec::with_capacity(expected);
    let mut pos = 4usize;

    while pos < input.len() {
        let tag = input[pos];
        pos += 1;
        match tag {
            TAG_LITERAL => {
                let len = read_varint(input, &mut pos)?;
                let end = pos
                    .checked_add(len)
                    .ok_or(DecompressError::TruncatedInput)?;
                if end > input.len() || out.len() + len > expected {
                    return Err(DecompressError::TruncatedInput);
                }
                out.extend_from_slice(&input[pos..end]);
                pos = end;
            }
            TAG_MATCH => {
                let distance = read_varint(input, &mut pos)?;
                let length = read_varint(input, &mut pos)?;
                if distance == 0 || distance > out.len() {
                    return Err(DecompressError::OffsetOutOfBounds);
                }
                if out.len() + length > expected {
                    return Err(DecompressError::TruncatedInput);
                }
                // Byte-at-a-time copy: overlapping matches (distance <
                // length) intentionally re-read bytes written earlier in
                // this same match, which is how runs are encoded.
                let start = out.len() - distance;
                for i in 0..length {
                    let b = out[start + i];
                    out.push(b);
                }
            }
            other => return Err(DecompressError::InvalidToken(other)),
        }
    }

    if out.len() != expected {
        return Err(DecompressError::UncompressedSizeMismatch {
            expected,
            actual: out.len(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let compressed = compress_prepend_size(data);
        let restored = decompress_size_prepended(&compressed).expect("roundtrip");
        assert_eq!(restored, data);
    }

    #[test]
    fn roundtrip_empty() {
        roundtrip(b"");
    }

    #[test]
    fn roundtrip_short_literals() {
        roundtrip(b"abc");
        roundtrip(b"a");
    }

    #[test]
    fn roundtrip_repetitive() {
        let data: Vec<u8> = std::iter::repeat_n(b"abcdefgh".as_slice(), 500)
            .flatten()
            .copied()
            .collect();
        let compressed = compress_prepend_size(&data);
        assert!(
            compressed.len() < data.len() / 4,
            "repetitive data must shrink"
        );
        roundtrip(&data);
    }

    #[test]
    fn roundtrip_runs_overlapping_match() {
        let data = vec![0u8; 10_000];
        roundtrip(&data);
    }

    #[test]
    fn roundtrip_pseudorandom() {
        // SplitMix64 byte stream: incompressible, exercises the all-literal
        // path and bucket collisions.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut data = Vec::new();
        for _ in 0..4096 {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            data.extend_from_slice(&(z ^ (z >> 31)).to_le_bytes());
        }
        roundtrip(&data);
    }

    #[test]
    fn deterministic_output() {
        let data = b"the quick brown fox jumps over the lazy dog, the quick brown fox";
        assert_eq!(compress_prepend_size(data), compress_prepend_size(data));
    }

    #[test]
    fn rejects_truncated_prefix() {
        assert_eq!(
            decompress_size_prepended(&[1, 2, 3]),
            Err(DecompressError::MissingSizePrefix)
        );
    }

    #[test]
    fn rejects_truncated_stream() {
        let mut compressed = compress_prepend_size(b"hello world, hello world, hello world");
        compressed.truncate(compressed.len() - 3);
        assert!(decompress_size_prepended(&compressed).is_err());
    }

    #[test]
    fn rejects_bad_token() {
        let mut buf = 1u32.to_le_bytes().to_vec();
        buf.push(0x7F);
        assert_eq!(
            decompress_size_prepended(&buf),
            Err(DecompressError::InvalidToken(0x7F))
        );
    }

    #[test]
    fn rejects_size_mismatch() {
        let mut compressed = compress_prepend_size(b"abcdef");
        // Claim a larger uncompressed size than the stream produces.
        compressed[0..4].copy_from_slice(&100u32.to_le_bytes());
        assert!(matches!(
            decompress_size_prepended(&compressed),
            Err(DecompressError::UncompressedSizeMismatch { .. })
        ));
    }

    #[test]
    fn rejects_out_of_window_offset() {
        let mut buf = 4u32.to_le_bytes().to_vec();
        buf.push(TAG_MATCH);
        buf.push(8); // distance 8 with empty output
        buf.push(4);
        assert_eq!(
            decompress_size_prepended(&buf),
            Err(DecompressError::OffsetOutOfBounds)
        );
    }

    #[test]
    fn flipped_bits_never_panic() {
        let data: Vec<u8> = (0u8..=255).cycle().take(2048).collect();
        let compressed = compress_prepend_size(&data);
        for i in 0..compressed.len() {
            let mut corrupt = compressed.clone();
            corrupt[i] ^= 0x40;
            // Either decodes to *something* or errors; must not panic.
            let _ = decompress_size_prepended(&corrupt);
        }
    }
}
