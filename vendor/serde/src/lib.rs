//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! self-contained serialization framework with serde-compatible *surface*
//! syntax: `#[derive(Serialize, Deserialize)]` on structs and enums (no
//! `#[serde(...)]` attributes), driven by the hand-written proc macros in the
//! sibling `serde_derive` crate.
//!
//! Unlike real serde's visitor architecture, this stand-in routes everything
//! through an owned [`Value`] tree — simpler, and fully sufficient for the
//! JSON persistence and experiment output this repository needs. Maps
//! serialize in deterministic (insertion or sorted) key order, which the
//! history-store determinism tests rely on.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value: the data model every `Serialize` impl
/// produces and every `Deserialize` impl consumes.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also the encoding of `None` and unit).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (struct fields keep declaration
    /// order; hash maps are sorted by key for deterministic output).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this value is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The sequence elements, if this value is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Error produced by deserialization (and, for API parity, serialization).
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn msg(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Looks up a required struct field in serialized map entries.
pub fn get_field<'a>(entries: &'a [(String, Value)], key: &str) -> Result<&'a Value, Error> {
    entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::msg(format!("missing field `{key}`")))
}

/// Looks up an optional struct field in serialized map entries; `None` means
/// the field was absent (used by `#[serde(default)]` fields, which then fall
/// back to `Default::default()`).
pub fn get_field_opt<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// A type that can be converted into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into a [`Value`] tree.
    fn serialize_value(&self) -> Value;
}

/// A type that can be reconstructed from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Deserializes an instance from a [`Value`] tree.
    fn deserialize_value(value: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let n = match value {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    other => return Err(Error::msg(format!("expected unsigned integer, got {other:?}"))),
                };
                <$t>::try_from(n).map_err(|_| Error::msg(format!("integer {n} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let n = match value {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| Error::msg(format!("integer {n} out of range")))?,
                    other => return Err(Error::msg(format!("expected integer, got {other:?}"))),
                };
                <$t>::try_from(n).map_err(|_| Error::msg(format!("integer {n} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Int(n) => Ok(*n as $t),
                    // JSON has no NaN/Infinity literal, so the writer emits
                    // non-finite floats as `null` (matching serde_json's
                    // behavior). Read `null` back as NaN so a struct with a
                    // non-finite float field (e.g. an undefined ratio)
                    // round-trips instead of failing to deserialize.
                    // `Option<f64>` is unaffected: its impl matches `Null`
                    // before ever delegating here.
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error::msg(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        self.as_slice().serialize_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_seq()
            .ok_or_else(|| Error::msg(format!("expected sequence, got {value:?}")))?;
        if items.len() != N {
            return Err(Error::msg(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items
            .iter()
            .map(T::deserialize_value)
            .collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error::msg("array length mismatch"))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        self.as_slice().serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_seq()
            .ok_or_else(|| Error::msg(format!("expected sequence, got {value:?}")))?;
        items.iter().map(T::deserialize_value).collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.serialize_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let entries = value
            .as_map()
            .ok_or_else(|| Error::msg(format!("expected map, got {value:?}")))?;
        entries
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize_value(&self) -> Value {
        // Sorted for deterministic output regardless of hash seeds.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let entries = value
            .as_map()
            .ok_or_else(|| Error::msg(format!("expected map, got {value:?}")))?;
        entries
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let items = value
                    .as_seq()
                    .ok_or_else(|| Error::msg(format!("expected tuple sequence, got {value:?}")))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::msg(format!(
                        "expected tuple of length {expected}, got {}",
                        items.len()
                    )));
                }
                Ok(($($name::deserialize_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::deserialize_value(&7u64.serialize_value()).unwrap(), 7);
        assert_eq!(
            i64::deserialize_value(&(-3i64).serialize_value()).unwrap(),
            -3
        );
        assert_eq!(
            f64::deserialize_value(&1.5f64.serialize_value()).unwrap(),
            1.5
        );
        assert_eq!(
            String::deserialize_value(&"hi".to_string().serialize_value()).unwrap(),
            "hi"
        );
        assert!(bool::deserialize_value(&true.serialize_value()).unwrap());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u64, 2.5f64), (3, 4.5)];
        let round: Vec<(u64, f64)> = Deserialize::deserialize_value(&v.serialize_value()).unwrap();
        assert_eq!(round, v);

        let mut m = BTreeMap::new();
        m.insert("b".to_string(), 2u32);
        m.insert("a".to_string(), 1u32);
        let round: BTreeMap<String, u32> =
            Deserialize::deserialize_value(&m.serialize_value()).unwrap();
        assert_eq!(round, m);

        let opt: Option<u64> = None;
        assert_eq!(opt.serialize_value(), Value::Null);
        let round: Option<u64> = Deserialize::deserialize_value(&Value::Null).unwrap();
        assert_eq!(round, None);
    }

    #[test]
    fn non_finite_floats_roundtrip_through_null() {
        // Writers emit non-finite floats as `null`; reading `null` back
        // yields NaN rather than a deserialization error.
        assert!(f64::deserialize_value(&Value::Null).unwrap().is_nan());
        assert!(f32::deserialize_value(&Value::Null).unwrap().is_nan());
        // Option<f64> still treats `null` as None, not Some(NaN).
        let round: Option<f64> = Deserialize::deserialize_value(&Value::Null).unwrap();
        assert_eq!(round, None);
    }

    #[test]
    fn hashmap_serializes_sorted() {
        let mut m = HashMap::new();
        m.insert("zeta".to_string(), 1u32);
        m.insert("alpha".to_string(), 2u32);
        let Value::Map(entries) = m.serialize_value() else {
            panic!("expected map");
        };
        assert_eq!(entries[0].0, "alpha");
        assert_eq!(entries[1].0, "zeta");
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(u64::deserialize_value(&Value::Str("x".into())).is_err());
        assert!(String::deserialize_value(&Value::UInt(1)).is_err());
        assert!(<(u64, u64)>::deserialize_value(&Value::Seq(vec![Value::UInt(1)])).is_err());
    }
}
