//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal benchmark harness with criterion-compatible surface syntax:
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion::benchmark_group`],
//! `sample_size`, `bench_with_input` / `bench_function`, [`BenchmarkId`] and
//! [`Bencher::iter`]. It measures wall time with `std::time::Instant` and
//! prints a `name  median  min..max` line per benchmark — no statistics
//! engine, plots or HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers keep working.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark identified by `id` over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Runs a benchmark in this group without an input parameter.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, |b| f(b));
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        Self {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, recording one sample per call.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }
}

fn run_benchmark<F>(label: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::new(),
    };
    // One warm-up invocation, then the measured samples.
    f(&mut bencher);
    bencher.samples.clear();
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    if bencher.samples.is_empty() {
        println!("{label:<50} (no samples recorded)");
        return;
    }
    bencher.samples.sort_unstable();
    let median = bencher.samples[bencher.samples.len() / 2];
    let min = bencher.samples[0];
    let max = bencher.samples[bencher.samples.len() - 1];
    println!(
        "{label:<50} median {:>12?}   [{:?} .. {:?}]",
        median, min, max
    );
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_ids_compose_and_run() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut calls = 0usize;
        {
            let mut group = c.benchmark_group("unit");
            group.sample_size(2);
            group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
                b.iter(|| {
                    calls += 1;
                    n * 2
                })
            });
            group.finish();
        }
        // One warm-up plus two measured samples.
        assert_eq!(calls, 3);
        assert_eq!(BenchmarkId::new("fit", 42).label, "fit/42");
    }
}
