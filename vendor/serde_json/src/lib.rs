//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], the [`json!`] object
//! macro and a [`Value`] alias.
//!
//! Backed by the vendored `serde` [`Value`] data model. Output is fully
//! deterministic: struct fields serialize in declaration order, `BTreeMap`s
//! in key order and `HashMap`s sorted by key — a property the history-store
//! determinism tests assert on. Floats are written with Rust's shortest
//! round-trip formatting, so `from_str(to_string(x))` reproduces `x` exactly.
//!
//! Non-finite floats serialize as `null`, matching real serde_json.

use std::fmt::Write as _;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Error type shared by serialization and parsing.
pub type Error = serde::Error;

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.serialize_value()
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(json: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: json.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::deserialize_value(&value)
}

/// Builds a [`Value`] from a JSON-shaped object literal whose values are
/// arbitrary serializable Rust expressions (the subset of `serde_json::json!`
/// the experiment binaries use).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($body:tt)* }) => {{
        let mut entries = $crate::__new_map_entries();
        $crate::json_object_entries!(entries; $($body)*);
        $crate::Value::Map(entries)
    }};
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Seq(::std::vec![$($crate::to_value(&$elem)),*])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Internal: fresh entry accumulator for [`json!`]. Not public API.
#[doc(hidden)]
pub fn __new_map_entries() -> Vec<(String, Value)> {
    Vec::new()
}

/// Internal: accumulates `"key": value` pairs for [`json!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_entries {
    ($entries:ident;) => {};
    ($entries:ident; $key:literal : { $($nested:tt)* } , $($rest:tt)*) => {
        $entries.push(($key.to_string(), $crate::json!({ $($nested)* })));
        $crate::json_object_entries!($entries; $($rest)*);
    };
    ($entries:ident; $key:literal : { $($nested:tt)* }) => {
        $entries.push(($key.to_string(), $crate::json!({ $($nested)* })));
    };
    ($entries:ident; $key:literal : $value:expr , $($rest:tt)*) => {
        $entries.push(($key.to_string(), $crate::to_value(&$value)));
        $crate::json_object_entries!($entries; $($rest)*);
    };
    ($entries:ident; $key:literal : $value:expr) => {
        $entries.push(($key.to_string(), $crate::to_value(&$value)));
    };
}

// ---------------------------------------------------------------------------
// Writer.

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            write_compound(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                write_value(out, &items[i], indent, d);
            })
        }
        Value::Map(entries) => {
            write_compound(out, indent, depth, '{', '}', entries.len(), |out, i, d| {
                write_string(out, &entries[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, &entries[i].1, indent, d);
            })
        }
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        write_item(out, i, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(close);
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    // `{:?}` is Rust's shortest round-trip representation; it always
    // contains a `.`, an `e` or an `E`, so the parser reads it back as a
    // float.
    let _ = write!(out, "{f:?}");
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser.

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_roundtrip() {
        let value = Value::Map(vec![
            (
                "name".to_string(),
                Value::Str("PREDIcT \"BRJ\"\n".to_string()),
            ),
            ("count".to_string(), Value::UInt(42)),
            ("delta".to_string(), Value::Float(0.1)),
            ("neg".to_string(), Value::Int(-7)),
            ("flag".to_string(), Value::Bool(true)),
            ("nothing".to_string(), Value::Null),
            (
                "seq".to_string(),
                Value::Seq(vec![Value::UInt(1), Value::UInt(2)]),
            ),
            ("empty".to_string(), Value::Seq(Vec::new())),
        ]);
        for json in [
            to_string(&value).unwrap(),
            to_string_pretty(&value).unwrap(),
        ] {
            let back: Value = from_str(&json).unwrap();
            assert_eq!(back, value);
        }
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for f in [
            0.1f64,
            1.0 / 3.0,
            1e-300,
            123_456_789.123_456_79,
            -2.5e10,
            1.0,
        ] {
            let json = to_string(&f).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{json}");
        }
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn non_finite_floats_roundtrip_as_nan() {
        // A bare f64 field (not Option<f64>) whose value was non-finite is
        // written as `null`; deserializing must yield NaN, not an error —
        // otherwise any artifact holding an undefined ratio could be saved
        // but never loaded.
        for f in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let json = to_string(&f).unwrap();
            assert_eq!(json, "null");
            let back: f64 = from_str(&json).unwrap();
            assert!(back.is_nan(), "{f} came back as {back}");
        }
        // And inside a struct-shaped map, via the Value layer.
        let v = Value::Map(vec![("ratio".to_string(), Value::Float(f64::NAN))]);
        let json = to_string(&v).unwrap();
        assert_eq!(json, r#"{"ratio":null}"#);
        let back: Value = from_str(&json).unwrap();
        assert_eq!(back, Value::Map(vec![("ratio".to_string(), Value::Null)]));
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = json!({"a": 1u32, "b": {"c": true}});
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(
            pretty,
            "{\n  \"a\": 1,\n  \"b\": {\n    \"c\": true\n  }\n}"
        );
    }

    #[test]
    fn json_macro_supports_nested_objects_and_exprs() {
        fn by_ratio(r: f64) -> f64 {
            r * 2.0
        }
        let points = vec![1u64, 2, 3];
        let v = json!({
            "workload": "PR",
            "sample_ms": {"0.01": by_ratio(0.01), "0.1": by_ratio(0.1)},
            "points": points,
            "overhead_at_0.1": 0.25,
        });
        let Value::Map(entries) = &v else {
            panic!("expected map")
        };
        assert_eq!(entries.len(), 4);
        assert_eq!(entries[0].1, Value::Str("PR".to_string()));
        assert_eq!(
            entries[2].1,
            Value::Seq(vec![Value::UInt(1), Value::UInt(2), Value::UInt(3)])
        );
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<u64>("\"str\"").is_err());
    }
}
