//! Key input features (Table 1 of the paper).
//!
//! PREDIcT profiles a small set of per-iteration features that are well
//! correlated with the processing requirements of network-intensive BSP
//! algorithms: active/total vertices, local/remote message counts and byte
//! counts, the average message size, and the number of iterations. The first
//! six are extrapolated from the sample run to the full dataset (by a
//! vertex-ratio or edge-ratio factor); the average message size and the number
//! of iterations are preserved as-is.

use predict_bsp::WorkerCounters;
use serde::{Deserialize, Serialize};

/// How a feature is extrapolated from the sample run to the actual run
/// (the "Extrapolation" column of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExtrapolationKind {
    /// Scaled by the vertex ratio `e_V = |V_G| / |V_S|`.
    Vertices,
    /// Scaled by the edge ratio `e_E = |E_G| / |E_S|`.
    Edges,
    /// Not extrapolated (already scale-free).
    None,
}

/// The per-iteration key input features of Table 1 (excluding `NumIter`,
/// which is a property of the whole run rather than of one iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KeyFeature {
    /// Number of vertices that executed the compute function (`ActVert`).
    ActiveVertices,
    /// Number of vertices assigned to the worker (`TotVert`).
    TotalVertices,
    /// Number of messages with same-worker destinations (`LocMsg`).
    LocalMessages,
    /// Number of messages crossing workers (`RemMsg`).
    RemoteMessages,
    /// Bytes of local messages (`LocMsgSize`).
    LocalMessageBytes,
    /// Bytes of remote messages (`RemMsgSize`).
    RemoteMessageBytes,
    /// Average size of a message in bytes (`AvgMsgSize`).
    AvgMessageSize,
}

impl KeyFeature {
    /// All features, in the order of Table 1.
    pub const ALL: [KeyFeature; 7] = [
        KeyFeature::ActiveVertices,
        KeyFeature::TotalVertices,
        KeyFeature::LocalMessages,
        KeyFeature::RemoteMessages,
        KeyFeature::LocalMessageBytes,
        KeyFeature::RemoteMessageBytes,
        KeyFeature::AvgMessageSize,
    ];

    /// The paper's short name for the feature.
    pub fn name(&self) -> &'static str {
        match self {
            KeyFeature::ActiveVertices => "ActVert",
            KeyFeature::TotalVertices => "TotVert",
            KeyFeature::LocalMessages => "LocMsg",
            KeyFeature::RemoteMessages => "RemMsg",
            KeyFeature::LocalMessageBytes => "LocMsgSize",
            KeyFeature::RemoteMessageBytes => "RemMsgSize",
            KeyFeature::AvgMessageSize => "AvgMsgSize",
        }
    }

    /// Index of the feature within [`KeyFeature::ALL`] and [`FeatureSet`].
    pub fn index(&self) -> usize {
        Self::ALL
            .iter()
            .position(|f| f == self)
            .expect("feature is in ALL")
    }

    /// How the feature is extrapolated (Table 1's "Extrapolation" column).
    pub fn extrapolation(&self) -> ExtrapolationKind {
        match self {
            KeyFeature::ActiveVertices | KeyFeature::TotalVertices => ExtrapolationKind::Vertices,
            KeyFeature::LocalMessages
            | KeyFeature::RemoteMessages
            | KeyFeature::LocalMessageBytes
            | KeyFeature::RemoteMessageBytes => ExtrapolationKind::Edges,
            KeyFeature::AvgMessageSize => ExtrapolationKind::None,
        }
    }

    /// Reads the feature's value out of a worker's counters.
    pub fn extract(&self, counters: &WorkerCounters) -> f64 {
        match self {
            KeyFeature::ActiveVertices => counters.active_vertices as f64,
            KeyFeature::TotalVertices => counters.total_vertices as f64,
            KeyFeature::LocalMessages => counters.local_messages as f64,
            KeyFeature::RemoteMessages => counters.remote_messages as f64,
            KeyFeature::LocalMessageBytes => counters.local_message_bytes as f64,
            KeyFeature::RemoteMessageBytes => counters.remote_message_bytes as f64,
            KeyFeature::AvgMessageSize => counters.avg_message_size(),
        }
    }
}

/// A concrete value for every [`KeyFeature`], describing one iteration of one
/// worker (or of the whole graph, when extracted from summed counters).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FeatureSet {
    values: [f64; KeyFeature::ALL.len()],
}

impl FeatureSet {
    /// Extracts every feature from a worker's counters.
    pub fn from_counters(counters: &WorkerCounters) -> Self {
        let mut values = [0.0; KeyFeature::ALL.len()];
        for f in KeyFeature::ALL {
            values[f.index()] = f.extract(counters);
        }
        Self { values }
    }

    /// Value of one feature.
    pub fn get(&self, feature: KeyFeature) -> f64 {
        self.values[feature.index()]
    }

    /// Sets the value of one feature.
    pub fn set(&mut self, feature: KeyFeature, value: f64) {
        self.values[feature.index()] = value;
    }

    /// Values of a subset of features, in the given order (the shape the
    /// regression consumes).
    pub fn select(&self, features: &[KeyFeature]) -> Vec<f64> {
        features.iter().map(|f| self.get(*f)).collect()
    }

    /// All values in [`KeyFeature::ALL`] order.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }
}

/// One training or prediction example: the features of an iteration together
/// with the measured wall time of that iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationObservation {
    /// Superstep number within its run.
    pub superstep: usize,
    /// Feature values of the observed worker.
    pub features: FeatureSet,
    /// Measured wall time of the superstep in (simulated) milliseconds.
    pub wall_time_ms: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters() -> WorkerCounters {
        WorkerCounters {
            active_vertices: 10,
            total_vertices: 20,
            local_messages: 3,
            remote_messages: 7,
            local_message_bytes: 30,
            remote_message_bytes: 140,
        }
    }

    #[test]
    fn every_feature_has_a_distinct_index_and_name() {
        let mut names: Vec<_> = KeyFeature::ALL.iter().map(|f| f.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), KeyFeature::ALL.len());
        for (i, f) in KeyFeature::ALL.iter().enumerate() {
            assert_eq!(f.index(), i);
        }
    }

    #[test]
    fn extraction_matches_counters() {
        let c = counters();
        assert_eq!(KeyFeature::ActiveVertices.extract(&c), 10.0);
        assert_eq!(KeyFeature::TotalVertices.extract(&c), 20.0);
        assert_eq!(KeyFeature::LocalMessages.extract(&c), 3.0);
        assert_eq!(KeyFeature::RemoteMessages.extract(&c), 7.0);
        assert_eq!(KeyFeature::LocalMessageBytes.extract(&c), 30.0);
        assert_eq!(KeyFeature::RemoteMessageBytes.extract(&c), 140.0);
        assert_eq!(KeyFeature::AvgMessageSize.extract(&c), 17.0);
    }

    #[test]
    fn extrapolation_kinds_match_table1() {
        assert_eq!(
            KeyFeature::ActiveVertices.extrapolation(),
            ExtrapolationKind::Vertices
        );
        assert_eq!(
            KeyFeature::TotalVertices.extrapolation(),
            ExtrapolationKind::Vertices
        );
        assert_eq!(
            KeyFeature::LocalMessages.extrapolation(),
            ExtrapolationKind::Edges
        );
        assert_eq!(
            KeyFeature::RemoteMessages.extrapolation(),
            ExtrapolationKind::Edges
        );
        assert_eq!(
            KeyFeature::LocalMessageBytes.extrapolation(),
            ExtrapolationKind::Edges
        );
        assert_eq!(
            KeyFeature::RemoteMessageBytes.extrapolation(),
            ExtrapolationKind::Edges
        );
        assert_eq!(
            KeyFeature::AvgMessageSize.extrapolation(),
            ExtrapolationKind::None
        );
    }

    #[test]
    fn feature_set_roundtrips_through_get_set_select() {
        let mut fs = FeatureSet::from_counters(&counters());
        assert_eq!(fs.get(KeyFeature::RemoteMessages), 7.0);
        fs.set(KeyFeature::RemoteMessages, 70.0);
        assert_eq!(fs.get(KeyFeature::RemoteMessages), 70.0);
        let selected = fs.select(&[KeyFeature::AvgMessageSize, KeyFeature::ActiveVertices]);
        assert_eq!(selected, vec![17.0, 10.0]);
        assert_eq!(fs.as_slice().len(), 7);
    }
}
