//! PREDIcT: sample-run based runtime prediction for large-scale iterative
//! analytics.
//!
//! This crate is the paper's primary contribution — an experimental
//! methodology that predicts both the number of iterations and the runtime of
//! network-intensive iterative graph algorithms executing on a BSP engine:
//!
//! * [`transform`] — the transform function that rescales convergence
//!   thresholds so a sample run converges in the same number of iterations as
//!   the actual run (section 3.2.2);
//! * [`features`] / [`critical_path`] — the Table 1 key input features and
//!   the critical-path worker selection used to extract them from run
//!   profiles (sections 3.3 and 3.4);
//! * [`extrapolator`] — per-iteration scaling of sample-run features to the
//!   full dataset by vertex/edge ratios (section 3.4);
//! * [`regression`], [`feature_selection`], [`cost_model`] — the customizable
//!   cost model: multivariate linear regression over forward-selected
//!   features (section 3.4);
//! * [`history`] — the historical-run store that improves cost models when
//!   prior actual runs exist (section 5.2);
//! * [`pipeline`] — the end-to-end [`Predictor`] (Figure 1);
//! * [`metrics`] — the signed-relative-error and R² metrics of section 5;
//! * [`bounds`] — the analytical iteration upper bounds PREDIcT is compared
//!   against (section 5.1).
//!
//! # Example
//!
//! ```
//! use predict_core::{Predictor, PredictorConfig, HistoryStore};
//! use predict_algorithms::PageRankWorkload;
//! use predict_bsp::{BspConfig, BspEngine};
//! use predict_graph::generators::{generate_rmat, RmatConfig};
//! use predict_sampling::BiasedRandomJump;
//!
//! let graph = generate_rmat(&RmatConfig::new(10, 8).with_seed(7));
//! let engine = BspEngine::new(BspConfig::default());
//! let sampler = BiasedRandomJump::default();
//! let workload = PageRankWorkload::with_epsilon(0.01, graph.num_vertices());
//!
//! let predictor = Predictor::new(&engine, &sampler, PredictorConfig::single_ratio(0.1));
//! let prediction = predictor
//!     .predict(&workload, &graph, &HistoryStore::new(), "quickstart")
//!     .unwrap();
//! assert!(prediction.predicted_iterations > 0);
//! assert!(prediction.predicted_superstep_ms > 0.0);
//! ```

pub mod bounds;
pub mod cost_model;
pub mod critical_path;
pub mod extrapolator;
pub mod feature_selection;
pub mod features;
pub mod history;
pub mod metrics;
pub mod pipeline;
pub mod regression;
pub mod transform;

pub use cost_model::{CostModel, CostModelConfig};
pub use critical_path::{
    critical_path_worker_by_edges, observations_from_profile, WorkerSelection,
};
pub use extrapolator::{ExtrapolationRule, Extrapolator};
pub use feature_selection::{forward_select, SelectionConfig, SelectionResult};
pub use features::{ExtrapolationKind, FeatureSet, IterationObservation, KeyFeature};
pub use history::{HistoricalRun, HistoryStore};
pub use metrics::{
    absolute_relative_error, r_squared, signed_relative_error, ErrorSample, ErrorSummary,
};
pub use pipeline::{Evaluation, PredictError, Prediction, Predictor, PredictorConfig};
pub use regression::{LinearModel, RegressionError};
pub use transform::{ThresholdRule, TransformFunction};
