//! PREDIcT: sample-run based runtime prediction for large-scale iterative
//! analytics.
//!
//! This crate is the paper's primary contribution — an experimental
//! methodology that predicts both the number of iterations and the runtime of
//! network-intensive iterative graph algorithms executing on a BSP engine:
//!
//! * [`transform`] — the transform function that rescales convergence
//!   thresholds so a sample run converges in the same number of iterations as
//!   the actual run (section 3.2.2);
//! * [`features`] / [`critical_path`] — the Table 1 key input features and
//!   the critical-path worker selection used to extract them from run
//!   profiles (sections 3.3 and 3.4);
//! * [`extrapolator`] — per-iteration scaling of sample-run features to the
//!   full dataset by vertex/edge ratios (section 3.4);
//! * [`regression`], [`feature_selection`], [`cost_model`] — the customizable
//!   cost model: multivariate linear regression over forward-selected
//!   features (section 3.4);
//! * [`history`] — the historical-run store that improves cost models when
//!   prior actual runs exist (section 5.2);
//! * [`metrics`] — the signed-relative-error and R² metrics of section 5;
//! * [`bounds`] — the analytical iteration upper bounds PREDIcT is compared
//!   against (section 5.1).
//!
//! # Architecture: artifacts → sessions → service
//!
//! The paper motivates prediction as a *service* for schedulers doing SLA
//! feasibility and capacity planning, so the pipeline is decomposed into
//! reusable stages layered for that deployment shape:
//!
//! * [`artifacts`] — the first-class stage products: [`SampleArtifact`]
//!   (sampled graph + achieved ratio + seed provenance), [`SampleRunArtifact`]
//!   (profile of the transformed sample run) and [`TrainedModel`] (cost model
//!   plus [`TrainingProvenance`]), each independently constructible and
//!   serializable;
//! * [`session`] — [`PredictionSession`] binds one dataset to an engine and a
//!   sampler and caches artifacts across predictions, so predicting many
//!   workloads or sweep points on one dataset performs each `(ratio, seed)`
//!   sample run exactly once. Sessions are built fluently via
//!   [`Predictor::builder`];
//! * [`service`] — [`PredictService`], a `Sync` front-end holding sessions in
//!   a sharded LRU cache and answering [`PredictRequest`]s, one at a time or
//!   in deterministic scoped-thread batches;
//! * [`pipeline`] — the legacy one-shot [`Predictor`] facade, a thin wrapper
//!   over the same stage functions (kept for single-prediction callers);
//! * [`error`] — the unified [`PredictError`] spanning sampling, engine and
//!   model failures.
//!
//! # Example
//!
//! ```
//! use predict_core::{Predictor, PredictorConfig};
//! use predict_algorithms::PageRankWorkload;
//! use predict_bsp::{BspConfig, BspEngine};
//! use predict_graph::generators::{generate_rmat, RmatConfig};
//! use predict_sampling::BiasedRandomJump;
//!
//! let graph = generate_rmat(&RmatConfig::new(10, 8).with_seed(7));
//! let workload = PageRankWorkload::with_epsilon(0.01, graph.num_vertices());
//!
//! // Bind the dataset once; every prediction after the first reuses the
//! // cached sample runs and trained models.
//! let session = Predictor::builder()
//!     .engine(BspEngine::new(BspConfig::default()))
//!     .sampler(BiasedRandomJump::default())
//!     .config(PredictorConfig::single_ratio(0.1))
//!     .bind(graph, "quickstart");
//! let prediction = session.predict(&workload).unwrap();
//! assert!(prediction.predicted_iterations > 0);
//! assert!(prediction.predicted_superstep_ms > 0.0);
//! ```

pub mod artifacts;
pub mod bounds;
pub mod cost_model;
pub mod critical_path;
pub mod error;
pub mod exec;
pub mod extrapolator;
pub mod feature_selection;
pub mod features;
pub mod history;
pub mod metrics;
pub mod pipeline;
pub mod regression;
pub mod service;
pub mod session;
pub mod transform;

pub use artifacts::{
    ModelKey, RunKey, SampleArtifact, SampleKey, SampleRunArtifact, TrainedModel,
    TrainingProvenance, TrainingSource,
};
pub use cost_model::{CostModel, CostModelConfig};
pub use critical_path::{
    critical_path_worker_by_edges, observations_from_profile, WorkerSelection,
};
pub use error::PredictError;
pub use extrapolator::{ExtrapolationRule, Extrapolator};
pub use feature_selection::{forward_select, SelectionConfig, SelectionResult};
pub use features::{ExtrapolationKind, FeatureSet, IterationObservation, KeyFeature};
pub use history::{HistoricalRun, HistoryStore};
pub use metrics::{
    absolute_relative_error, r_squared, signed_relative_error, ErrorSample, ErrorSummary,
};
pub use pipeline::Predictor;
pub use predict_store::{ArtifactKind, ArtifactStore};
pub use regression::{LinearModel, RegressionError};
pub use service::{PredictRequest, PredictService, PredictServiceConfig};
pub use session::{
    Evaluation, Prediction, PredictionSession, PredictorBuilder, PredictorConfig, SessionStats,
};
pub use transform::{ThresholdRule, TransformFunction};
