//! Critical-path worker selection.
//!
//! In the BSP model the runtime of a superstep is determined by the slowest
//! worker (section 3.3 / 3.4 of the paper). PREDIcT therefore bases both cost
//! model training and prediction on the features of the worker on the
//! critical path. The paper identifies that worker *before execution* by the
//! number of outbound edges owned by each worker (piggybacked on the read
//! phase); after a run has executed, the profile also reveals which worker was
//! actually slowest. Both selections are provided, plus a mean-worker
//! alternative used as an ablation baseline.

use crate::features::{FeatureSet, IterationObservation};
use predict_bsp::{sum_counters, Partitioning, RunProfile, SuperstepProfile, WorkerCounters};
use serde::{Deserialize, Serialize};

/// Which worker's counters represent an iteration when extracting features
/// from a run profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum WorkerSelection {
    /// The worker with the largest simulated processing time in that
    /// iteration — the measured critical path (default, matches how the paper
    /// instruments per-worker counters and models the slowest worker).
    #[default]
    SlowestWorker,
    /// The fixed worker owning the most outbound edges, the paper's
    /// before-execution heuristic (requires the partitioning, see
    /// [`critical_path_worker_by_edges`]).
    FixedWorker(usize),
    /// The average over all workers — an ablation that ignores skew.
    MeanWorker,
}

/// The paper's pre-execution critical-path heuristic: the worker with the
/// largest total number of outbound edges for the given partitioning. The
/// counts are cached inside [`Partitioning`] at construction, so this query
/// never rescans the CSR.
pub fn critical_path_worker_by_edges(partitioning: &Partitioning) -> usize {
    partitioning.critical_path_worker()
}

fn mean_counters(workers: &[WorkerCounters]) -> WorkerCounters {
    if workers.is_empty() {
        return WorkerCounters::default();
    }
    let total = sum_counters(workers);
    let n = workers.len() as u64;
    WorkerCounters {
        active_vertices: total.active_vertices / n,
        total_vertices: total.total_vertices / n,
        local_messages: total.local_messages / n,
        remote_messages: total.remote_messages / n,
        local_message_bytes: total.local_message_bytes / n,
        remote_message_bytes: total.remote_message_bytes / n,
    }
}

/// Counters representing one superstep under the given selection.
pub fn select_counters(superstep: &SuperstepProfile, selection: WorkerSelection) -> WorkerCounters {
    match selection {
        WorkerSelection::SlowestWorker => superstep.critical_path_counters(),
        WorkerSelection::FixedWorker(w) => superstep.workers.get(w).copied().unwrap_or_default(),
        WorkerSelection::MeanWorker => mean_counters(&superstep.workers),
    }
}

/// Extracts one [`IterationObservation`] per superstep of `profile`, using
/// `selection` to decide which worker's counters represent the iteration and
/// pairing them with the superstep's wall time. These observations are both
/// the training rows of the cost model and the per-iteration inputs of the
/// extrapolator.
pub fn observations_from_profile(
    profile: &RunProfile,
    selection: WorkerSelection,
) -> Vec<IterationObservation> {
    profile
        .supersteps
        .iter()
        .map(|s| IterationObservation {
            superstep: s.superstep,
            features: FeatureSet::from_counters(&select_counters(s, selection)),
            wall_time_ms: s.wall_time_ms,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::KeyFeature;
    use predict_bsp::Aggregates;
    use predict_bsp::PartitionStrategy;
    use predict_graph::generators::star;

    fn superstep() -> SuperstepProfile {
        let worker = |active: u64, remote_bytes: u64| WorkerCounters {
            active_vertices: active,
            total_vertices: active * 2,
            local_messages: 1,
            remote_messages: 4,
            local_message_bytes: 8,
            remote_message_bytes: remote_bytes,
        };
        SuperstepProfile {
            superstep: 3,
            workers: vec![worker(10, 100), worker(30, 900), worker(20, 500)],
            worker_times_ms: vec![1.0, 9.0, 5.0],
            wall_time_ms: 12.0,
            aggregates: Aggregates::new(),
        }
    }

    #[test]
    fn slowest_worker_selection_picks_the_heaviest_counters() {
        let s = superstep();
        let c = select_counters(&s, WorkerSelection::SlowestWorker);
        assert_eq!(c.active_vertices, 30);
        assert_eq!(c.remote_message_bytes, 900);
    }

    #[test]
    fn fixed_worker_selection_uses_the_requested_index() {
        let s = superstep();
        let c = select_counters(&s, WorkerSelection::FixedWorker(2));
        assert_eq!(c.active_vertices, 20);
        // Out-of-range index degrades to empty counters instead of panicking.
        let missing = select_counters(&s, WorkerSelection::FixedWorker(9));
        assert_eq!(missing.active_vertices, 0);
    }

    #[test]
    fn mean_worker_selection_averages_counters() {
        let s = superstep();
        let c = select_counters(&s, WorkerSelection::MeanWorker);
        assert_eq!(c.active_vertices, 20);
        assert_eq!(c.remote_message_bytes, 500);
    }

    #[test]
    fn observations_pair_features_with_wall_times() {
        let profile = RunProfile {
            algorithm: "x".into(),
            num_vertices: 10,
            num_edges: 20,
            num_workers: 3,
            setup_ms: 0.0,
            read_ms: 0.0,
            write_ms: 0.0,
            supersteps: vec![superstep()],
            measured: None,
        };
        let obs = observations_from_profile(&profile, WorkerSelection::SlowestWorker);
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].superstep, 3);
        assert_eq!(obs[0].wall_time_ms, 12.0);
        assert_eq!(obs[0].features.get(KeyFeature::ActiveVertices), 30.0);
    }

    #[test]
    fn edge_heuristic_picks_the_hub_owner_on_a_star() {
        let g = star(64);
        let p = Partitioning::new(&g, 4, PartitionStrategy::Modulo);
        let w = critical_path_worker_by_edges(&p);
        assert_eq!(w, p.worker_of(0));
    }
}
