//! First-class artifacts of the decomposed prediction pipeline.
//!
//! A prediction is assembled from three expensive intermediate products, each
//! of which is independently constructible, serializable and reusable across
//! predictions:
//!
//! 1. [`SampleArtifact`] — the sampled graph with its achieved ratio and full
//!    seed provenance (stage 1, keyed by [`SampleKey`]);
//! 2. [`SampleRunArtifact`] — the profile of the transformed workload
//!    executed on a sample graph (stage 2, keyed by [`RunKey`]);
//! 3. [`TrainedModel`] — a cost model plus the [`TrainingProvenance`]
//!    describing what it was trained on (stage 3, keyed by [`ModelKey`]).
//!
//! [`crate::PredictionSession`] caches all three so repeated predictions on
//! one dataset — the scheduler pattern the paper targets — amortize the
//! sample runs, which dominate prediction cost. The keys capture exactly the
//! inputs that influence each stage: sampling is deterministic in
//! `(sampler, ratio, seed)`, a sample run additionally depends on the
//! workload configuration and the transform rule, and a trained model
//! depends on the whole predictor configuration plus the history version.

use crate::cost_model::CostModel;
use crate::critical_path::{observations_from_profile, WorkerSelection};
use crate::error::PredictError;
use crate::extrapolator::Extrapolator;
use crate::features::IterationObservation;
use crate::transform::TransformFunction;
use predict_algorithms::Workload;
use predict_bsp::{BspEngine, GraphStorage, HaltReason, PartitionStrategy, RunProfile};
use predict_graph::CsrGraph;
use predict_sampling::{GraphSample, Sampler};
use serde::{Deserialize, Serialize};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Per-graph cache of sharded [`GraphStorage`], keyed by `(num_workers,
/// partition strategy)` exactly like the engine's `LayoutCache` keys shard
/// layouts. A sharded engine pays an O(V + E) shard construction on every
/// [`BspEngine::run`]; artifacts that replay one immutable graph many times
/// (a cached sample across training ratios and repeated requests, the full
/// graph across actual runs) hold one of these so the construction happens
/// once per engine configuration instead.
///
/// Entries live in a small vector — a prediction session sees one or two
/// `(workers, strategy)` pairs in practice, so a linear scan beats hashing.
/// The cache is deliberately *not* part of the artifact's serialized form or
/// its clones (clones start empty): storage is a pure acceleration of the
/// graph it was built from, byte-identical results guaranteed by the
/// engine's storage contract.
#[derive(Debug, Default)]
pub struct StorageCache {
    entries: Mutex<Vec<(StorageKey, Arc<GraphStorage>)>>,
    builds: AtomicU64,
}

/// Cache key of one built storage: `(num_workers, partition strategy)`.
type StorageKey = (usize, PartitionStrategy);

impl Clone for StorageCache {
    /// Clones start empty: cached storage belongs to the instance that built
    /// it, and rebuilding on first use is always correct.
    fn clone(&self) -> Self {
        Self::default()
    }
}

impl StorageCache {
    /// Returns sharded storage of `graph` for `engine`'s worker count and
    /// partition strategy, building it on first use — or `None` when the
    /// engine resolves to unified storage, which needs no preparation.
    pub fn get_or_shard(&self, engine: &BspEngine, graph: &CsrGraph) -> Option<Arc<GraphStorage>> {
        if !engine.config().storage.resolve_sharded() {
            return None;
        }
        let key = (
            engine.config().num_workers.max(1),
            engine.config().partition_strategy,
        );
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, storage)) = entries.iter().find(|(k, _)| *k == key) {
            return Some(Arc::clone(storage));
        }
        // Built under the lock so concurrent requests for the same key wait
        // for one construction instead of racing to duplicate it.
        self.builds.fetch_add(1, Ordering::SeqCst);
        let storage = Arc::new(GraphStorage::shard_graph(graph, key.0, key.1));
        entries.push((key, Arc::clone(&storage)));
        Some(storage)
    }

    /// Number of shard constructions this cache has performed — flat once
    /// warm, which the warm-service tests assert.
    pub fn builds(&self) -> u64 {
        self.builds.load(Ordering::SeqCst)
    }
}

/// Cache key of a sampling-stage artifact: sampling is deterministic in the
/// `(technique, ratio, seed)` triple, so two draws with equal keys produce
/// identical samples. The ratio is stored by its bit pattern so the key is
/// hashable and exact (no epsilon comparisons).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SampleKey {
    sampler: String,
    ratio_bits: u64,
    seed: u64,
}

impl SampleKey {
    /// Builds the key for a draw of `sampler` at `ratio` with `seed`.
    pub fn new(sampler: &str, ratio: f64, seed: u64) -> Self {
        Self {
            sampler: sampler.to_string(),
            ratio_bits: ratio.to_bits(),
            seed,
        }
    }

    /// Name of the sampling technique.
    pub fn sampler(&self) -> &str {
        &self.sampler
    }

    /// The requested sampling ratio.
    pub fn ratio(&self) -> f64 {
        f64::from_bits(self.ratio_bits)
    }

    /// The seed that drove the sampler.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Stable textual rendering of this key for the persistent artifact
    /// store: exact (ratio by bit pattern) and process-independent.
    pub fn store_key(&self) -> String {
        format!(
            "{}:{:016x}:{:016x}",
            self.sampler, self.ratio_bits, self.seed
        )
    }
}

/// Stage-1 artifact: a drawn sample of the bound dataset, with enough
/// provenance to rebuild the extrapolation factors without the full graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SampleArtifact {
    /// The `(sampler, ratio, seed)` triple that produced this artifact.
    pub key: SampleKey,
    /// The sample itself: induced subgraph, id mapping and achieved ratio.
    pub sample: GraphSample,
    /// Vertex count of the full graph the sample was drawn from.
    pub full_vertices: usize,
    /// Edge count of the full graph the sample was drawn from.
    pub full_edges: usize,
    /// Cached sharded storage of the sample graph, built lazily per engine
    /// configuration so repeated sharded runs over this sample pay shard
    /// construction once. Not serialized; clones start empty.
    #[serde(skip)]
    storage: StorageCache,
}

impl SampleArtifact {
    /// Draws a sample of `graph`, failing with [`PredictError::EmptySample`]
    /// when the induced subgraph has no vertices or edges.
    pub fn draw(
        sampler: &dyn Sampler,
        graph: &CsrGraph,
        ratio: f64,
        seed: u64,
    ) -> Result<Self, PredictError> {
        Self::draw_with(
            sampler,
            graph,
            ratio,
            seed,
            &mut predict_sampling::SampleScratch::new(),
        )
    }

    /// [`SampleArtifact::draw`] reusing `scratch` for the sampler walk, so a
    /// session drawing many samples amortizes the visited-set and buffer
    /// allocations (the scratch never changes the drawn sample).
    pub fn draw_with(
        sampler: &dyn Sampler,
        graph: &CsrGraph,
        ratio: f64,
        seed: u64,
        scratch: &mut predict_sampling::SampleScratch,
    ) -> Result<Self, PredictError> {
        let sample = sampler.sample_with(graph, ratio, seed, scratch);
        if sample.graph.num_vertices() == 0 || sample.graph.num_edges() == 0 {
            return Err(PredictError::EmptySample {
                technique: sampler.name().to_string(),
                ratio,
                seed,
            });
        }
        Ok(Self {
            key: SampleKey::new(sampler.name(), ratio, seed),
            full_vertices: graph.num_vertices(),
            full_edges: graph.num_edges(),
            sample,
            storage: StorageCache::default(),
        })
    }

    /// Sharded storage of the sample graph for `engine`, cached per
    /// `(workers, strategy)`; `None` when the engine uses unified storage.
    pub fn storage_for(&self, engine: &BspEngine) -> Option<Arc<GraphStorage>> {
        self.storage.get_or_shard(engine, &self.sample.graph)
    }

    /// Shard constructions this artifact's storage cache has performed.
    pub fn storage_builds(&self) -> u64 {
        self.storage.builds()
    }

    /// The ratio the sampler actually achieved.
    pub fn achieved_ratio(&self) -> f64 {
        self.sample.achieved_ratio
    }

    /// The achieved ratio clamped into `(0, 1]`, the domain the transform
    /// function accepts.
    pub fn clamped_ratio(&self) -> f64 {
        self.sample.achieved_ratio.clamp(f64::MIN_POSITIVE, 1.0)
    }

    /// The extrapolation factors from this sample to the full graph.
    pub fn extrapolator(&self) -> Extrapolator {
        Extrapolator::from_counts(
            self.full_vertices,
            self.full_edges,
            self.sample.graph.num_vertices(),
            self.sample.graph.num_edges(),
        )
    }
}

/// Cache key of a sample-run artifact: the sample it ran on, the workload
/// configuration (via [`Workload::cache_token`]) and the transform rule that
/// rescaled the convergence threshold.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RunKey {
    /// Key of the sample graph the run executed on.
    pub sample: SampleKey,
    /// The workload's [`Workload::cache_token`].
    pub workload: String,
    /// Debug rendering of the transform function (exact: rules are plain
    /// enums over f64 parameters).
    pub transform: String,
}

impl RunKey {
    /// Builds the key for `workload` run on the sample identified by
    /// `sample` under `transform`.
    pub fn new(sample: &SampleKey, workload: &dyn Workload, transform: TransformFunction) -> Self {
        Self {
            sample: sample.clone(),
            workload: workload.cache_token(),
            transform: format!("{transform:?}"),
        }
    }

    /// Stable textual rendering of this key for the persistent artifact
    /// store.
    pub fn store_key(&self) -> String {
        format!(
            "{}|{}|{}",
            self.sample.store_key(),
            self.workload,
            self.transform
        )
    }
}

/// Stage-2 artifact: the profile of one transformed workload execution on a
/// sample graph — the "sample run" the paper's methodology revolves around.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SampleRunArtifact {
    /// Key of the sample the run executed on.
    pub sample_key: SampleKey,
    /// The workload's cache token.
    pub workload: String,
    /// The transformed convergence threshold the sample run used.
    pub transformed_threshold: f64,
    /// Full profile of the run.
    pub profile: RunProfile,
    /// Why the run terminated.
    pub halt_reason: HaltReason,
}

impl SampleRunArtifact {
    /// Executes `workload` on the sample graph with its threshold rescaled by
    /// `transform` at the sample's achieved ratio, profiling the run.
    pub fn execute(
        engine: &BspEngine,
        workload: &dyn Workload,
        transform: TransformFunction,
        sample: &SampleArtifact,
    ) -> Self {
        let ratio = sample.clamped_ratio();
        let sample_workload = transform.apply(workload, ratio);
        // Under sharded storage, run against the sample's cached shards so
        // repeated runs (training ratios, warm service batches) skip the
        // per-run shard construction. Byte-identical either way — and
        // byte-identical again under a cluster transport (the dispatch in
        // [`crate::exec`]).
        let storage = sample.storage_for(engine);
        let run = crate::exec::execute_workload(
            engine,
            sample_workload.as_ref(),
            &sample.sample.graph,
            storage.as_deref(),
        );
        Self {
            sample_key: sample.key.clone(),
            workload: workload.cache_token(),
            transformed_threshold: sample_workload.threshold(),
            profile: run.profile,
            halt_reason: run.halt_reason,
        }
    }

    /// Number of iterations (supersteps) the run executed.
    pub fn iterations(&self) -> usize {
        self.profile.num_iterations()
    }

    /// Per-iteration observations under the given worker selection. Derived
    /// on demand so one cached profile serves every selection strategy.
    pub fn observations(&self, selection: WorkerSelection) -> Vec<IterationObservation> {
        observations_from_profile(&self.profile, selection)
    }
}

/// What a [`TrainedModel`] was trained on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrainingSource {
    /// Sample runs at the configured training ratios only.
    SampleRuns,
    /// Sample runs plus historical actual runs on other datasets.
    SampleRunsWithHistory,
    /// Every training ratio yielded an empty sample and no history was
    /// available, so the model fell back to the extrapolation sample run
    /// itself. Predictions from such a model extrapolate from the very data
    /// the model was fit on; [`crate::PredictorConfig::strict_training`]
    /// turns this case into [`PredictError::InsufficientTraining`] instead.
    ExtrapolationSampleOnly,
}

/// Provenance of a trained cost model: where its training rows came from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingProvenance {
    /// Which data sources contributed training rows.
    pub source: TrainingSource,
    /// Rows contributed by sample runs (including the fallback case).
    pub sample_observations: usize,
    /// Rows contributed by historical actual runs.
    pub history_observations: usize,
    /// Version of the history store the model was trained against.
    pub history_version: u64,
    /// The training ratios that were configured (not all necessarily yielded
    /// a non-empty sample).
    pub training_ratios: Vec<f64>,
}

/// Stage-3 artifact: a trained cost model plus its training provenance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainedModel {
    /// The fitted cost model.
    pub cost_model: CostModel,
    /// What the model was trained on.
    pub provenance: TrainingProvenance,
}

impl TrainedModel {
    /// True when the model saw no training data beyond the extrapolation
    /// sample run (the silent-fallback case surfaced by provenance).
    pub fn is_sample_only(&self) -> bool {
        self.provenance.source == TrainingSource::ExtrapolationSampleOnly
    }
}

/// Cache key of a trained model: workload configuration, the fingerprint of
/// the full predictor configuration, and the history version the training
/// set was assembled against.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModelKey {
    /// The workload's [`Workload::cache_token`].
    pub workload: String,
    /// Fingerprint of the predictor configuration (see
    /// [`crate::PredictorConfig::fingerprint`]).
    pub config_fingerprint: u64,
    /// Version of the session's history store.
    pub history_version: u64,
}

impl ModelKey {
    /// Stable textual rendering of this key for the persistent artifact
    /// store. History replay is deterministic, so equal versions identify
    /// equal training sets across restarts.
    pub fn store_key(&self) -> String {
        format!(
            "{}|{:016x}|{:016x}",
            self.workload, self.config_fingerprint, self.history_version
        )
    }
}

/// Stable FNV-1a hash used for configuration fingerprints — deterministic
/// across processes, unlike `DefaultHasher`'s unspecified algorithm.
pub(crate) struct Fnv1a(u64);

impl Fnv1a {
    pub(crate) fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// Fingerprints any hashable value with the crate's stable hasher.
pub(crate) fn stable_fingerprint<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = Fnv1a::new();
    value.hash(&mut hasher);
    Hasher::finish(&hasher)
}

#[cfg(test)]
mod tests {
    use super::*;
    use predict_algorithms::PageRankWorkload;
    use predict_bsp::BspConfig;
    use predict_graph::generators::{generate_rmat, RmatConfig};
    use predict_sampling::BiasedRandomJump;

    fn graph() -> CsrGraph {
        generate_rmat(&RmatConfig::new(9, 6).with_seed(3))
    }

    #[test]
    fn sample_keys_are_exact_in_ratio_and_seed() {
        let a = SampleKey::new("BRJ", 0.1, 7);
        let b = SampleKey::new("BRJ", 0.1, 7);
        assert_eq!(a, b);
        assert_ne!(a, SampleKey::new("RJ", 0.1, 7));
        assert_ne!(a, SampleKey::new("BRJ", 0.2, 7));
        assert_ne!(a, SampleKey::new("BRJ", 0.1, 8));
        assert_eq!(a.ratio(), 0.1);
        assert_eq!(a.seed(), 7);
        assert_eq!(a.sampler(), "BRJ");
    }

    #[test]
    fn draw_produces_reusable_artifacts() {
        let g = graph();
        let sampler = BiasedRandomJump::default();
        let a = SampleArtifact::draw(&sampler, &g, 0.2, 11).unwrap();
        assert!(a.sample.graph.num_vertices() > 0);
        assert!(a.achieved_ratio() > 0.0 && a.achieved_ratio() <= 1.0);
        assert_eq!(a.full_vertices, g.num_vertices());
        let e = a.extrapolator();
        assert!(e.vertex_factor > 1.0 && e.edge_factor >= 1.0);
        // Identical draw parameters produce an identical artifact.
        let b = SampleArtifact::draw(&sampler, &g, 0.2, 11).unwrap();
        assert_eq!(a.key, b.key);
        assert_eq!(a.achieved_ratio(), b.achieved_ratio());
    }

    #[test]
    fn empty_draw_is_an_error_with_provenance() {
        let g = CsrGraph::from_edges(0, &[]);
        let sampler = BiasedRandomJump::default();
        let err = SampleArtifact::draw(&sampler, &g, 0.5, 3).unwrap_err();
        match err {
            PredictError::EmptySample {
                technique,
                ratio,
                seed,
            } => {
                assert_eq!(technique, "BRJ");
                assert_eq!(ratio, 0.5);
                assert_eq!(seed, 3);
            }
            other => panic!("expected EmptySample, got {other:?}"),
        }
    }

    #[test]
    fn sample_storage_is_built_once_per_engine_configuration() {
        let g = graph();
        let sampler = BiasedRandomJump::default();
        let sample = SampleArtifact::draw(&sampler, &g, 0.3, 11).unwrap();
        let unified = BspEngine::new(BspConfig::with_workers(4));
        assert!(
            sample.storage_for(&unified).is_none(),
            "unified storage needs no shard construction"
        );
        assert_eq!(sample.storage_builds(), 0);

        let sharded = unified.with_storage(predict_bsp::StorageMode::Sharded);
        let first = sample.storage_for(&sharded).expect("sharded storage");
        let second = sample.storage_for(&sharded).expect("sharded storage");
        assert!(Arc::ptr_eq(&first, &second), "storage must be cached");
        assert_eq!(sample.storage_builds(), 1, "one build per configuration");

        // Sharded sample runs are byte-identical to unified ones.
        let workload = PageRankWorkload::with_epsilon(0.01, g.num_vertices());
        let transform = TransformFunction::default_for(workload.convergence());
        let a = SampleRunArtifact::execute(&unified, &workload, transform, &sample);
        let b = SampleRunArtifact::execute(&sharded, &workload, transform, &sample);
        let c = SampleRunArtifact::execute(&sharded, &workload, transform, &sample);
        assert_eq!(a.profile, b.profile);
        assert_eq!(b.profile, c.profile);
        assert_eq!(sample.storage_builds(), 1, "repeat runs reuse the shards");

        // Clones (and thus serialization round-trips) start cold.
        let clone = sample.clone();
        assert_eq!(clone.storage_builds(), 0);
    }

    #[test]
    fn sample_run_artifact_profiles_the_transformed_workload() {
        let g = graph();
        let sampler = BiasedRandomJump::default();
        let engine = BspEngine::new(BspConfig::with_workers(4));
        let workload = PageRankWorkload::with_epsilon(0.01, g.num_vertices());
        let sample = SampleArtifact::draw(&sampler, &g, 0.2, 5).unwrap();
        let transform = TransformFunction::default_for(workload.convergence());
        let run = SampleRunArtifact::execute(&engine, &workload, transform, &sample);
        assert!(run.iterations() >= 2);
        assert!(run.transformed_threshold > workload.threshold());
        assert_eq!(run.sample_key, sample.key);
        assert!(!run.observations(WorkerSelection::SlowestWorker).is_empty());
    }

    #[test]
    fn run_keys_distinguish_workload_configurations() {
        let g = graph();
        let sampler = BiasedRandomJump::default();
        let sample = SampleArtifact::draw(&sampler, &g, 0.2, 5).unwrap();
        let pr_a = PageRankWorkload::with_epsilon(0.01, g.num_vertices());
        let pr_b = PageRankWorkload::with_epsilon(0.001, g.num_vertices());
        let t = TransformFunction::default_for(pr_a.convergence());
        assert_ne!(
            RunKey::new(&sample.key, &pr_a, t),
            RunKey::new(&sample.key, &pr_b, t)
        );
        assert_eq!(
            RunKey::new(&sample.key, &pr_a, t),
            RunKey::new(&sample.key, &pr_a, t)
        );
        assert_ne!(
            RunKey::new(&sample.key, &pr_a, t),
            RunKey::new(&sample.key, &pr_a, TransformFunction::identity())
        );
    }

    #[test]
    fn stable_fingerprint_is_deterministic_and_sensitive() {
        let a = stable_fingerprint("hello");
        assert_eq!(a, stable_fingerprint("hello"));
        assert_ne!(a, stable_fingerprint("hellp"));
    }
}
