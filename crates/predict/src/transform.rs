//! The transform function (section 3.2.2 of the paper).
//!
//! Running an algorithm on a sample with its original parameters does *not*
//! preserve the number of iterations: convergence thresholds that are tuned to
//! the dataset size (PageRank's average-delta threshold) must be rescaled so
//! that the sample run converges after the same number of iterations as the
//! actual run. The transform function `T = (Conf_S => Conf_G, Conv_S =>
//! Conv_G)` captures this: configuration parameters are carried over unchanged
//! (the identity mapping), and the convergence threshold is either scaled by
//! the inverse sampling ratio or kept, depending on the algorithm's
//! convergence kind. Users with domain knowledge can plug in a custom scaling
//! exponent instead of the default rule.

use predict_algorithms::{ConvergenceKind, Workload};
use serde::{Deserialize, Serialize};

/// How the convergence threshold of the sample run relates to the threshold
/// of the actual run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ThresholdRule {
    /// `τ_S = τ_G`: keep the threshold (ratio-based convergence, e.g.
    /// semi-clustering, top-k ranking).
    Identity,
    /// `τ_S = τ_G / sr`: scale by the inverse sampling ratio (absolute
    /// aggregates tuned to the dataset size, e.g. PageRank).
    InverseSamplingRatio,
    /// `τ_S = τ_G / sr^exponent`: custom power of the sampling ratio for
    /// algorithms whose aggregates scale non-linearly with the sample size.
    Power(f64),
    /// `τ_S = τ_G * factor`: fixed custom factor supplied by the user.
    Fixed(f64),
}

/// A transform function: the identity over the configuration space plus a
/// threshold rule over the convergence space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransformFunction {
    /// The threshold mapping `Conv_S => Conv_G`.
    pub rule: ThresholdRule,
}

impl TransformFunction {
    /// Creates a transform with an explicit rule.
    pub fn new(rule: ThresholdRule) -> Self {
        Self { rule }
    }

    /// The paper's default rule (section 3.2.2): scale the threshold by the
    /// inverse sampling ratio when convergence is an absolute aggregate tuned
    /// to the dataset size, keep it otherwise.
    pub fn default_for(kind: ConvergenceKind) -> Self {
        match kind {
            ConvergenceKind::AbsoluteAggregate => Self::new(ThresholdRule::InverseSamplingRatio),
            ConvergenceKind::RelativeRatio | ConvergenceKind::FixedPoint => {
                Self::new(ThresholdRule::Identity)
            }
        }
    }

    /// A transform that deliberately applies no scaling regardless of the
    /// convergence kind — the ablation of the paper's Figure 2 motivation.
    pub fn identity() -> Self {
        Self::new(ThresholdRule::Identity)
    }

    /// Threshold the sample run should use, given the actual run's threshold
    /// and the sampling ratio.
    ///
    /// # Panics
    ///
    /// Panics if `sampling_ratio` is not in `(0, 1]`.
    pub fn sample_threshold(&self, full_threshold: f64, sampling_ratio: f64) -> f64 {
        assert!(
            sampling_ratio > 0.0 && sampling_ratio <= 1.0,
            "sampling ratio must be in (0, 1], got {sampling_ratio}"
        );
        match self.rule {
            ThresholdRule::Identity => full_threshold,
            ThresholdRule::InverseSamplingRatio => full_threshold / sampling_ratio,
            ThresholdRule::Power(exp) => full_threshold / sampling_ratio.powf(exp),
            ThresholdRule::Fixed(factor) => full_threshold * factor,
        }
    }

    /// Builds the sample-run workload: same configuration, transformed
    /// convergence threshold.
    pub fn apply(&self, workload: &dyn Workload, sampling_ratio: f64) -> Box<dyn Workload> {
        workload.with_threshold(self.sample_threshold(workload.threshold(), sampling_ratio))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predict_algorithms::{PageRankWorkload, SemiClusteringWorkload};

    #[test]
    fn default_rules_follow_the_paper() {
        assert_eq!(
            TransformFunction::default_for(ConvergenceKind::AbsoluteAggregate).rule,
            ThresholdRule::InverseSamplingRatio
        );
        assert_eq!(
            TransformFunction::default_for(ConvergenceKind::RelativeRatio).rule,
            ThresholdRule::Identity
        );
        assert_eq!(
            TransformFunction::default_for(ConvergenceKind::FixedPoint).rule,
            ThresholdRule::Identity
        );
    }

    #[test]
    fn inverse_ratio_scales_threshold() {
        let t = TransformFunction::new(ThresholdRule::InverseSamplingRatio);
        // The paper's Figure 2 example: a 50% sample doubles the threshold.
        assert!((t.sample_threshold(0.1, 0.5) - 0.2).abs() < 1e-12);
        assert!((t.sample_threshold(1e-6, 0.1) - 1e-5).abs() < 1e-18);
    }

    #[test]
    fn identity_and_fixed_and_power_rules() {
        assert_eq!(
            TransformFunction::identity().sample_threshold(0.01, 0.1),
            0.01
        );
        let fixed = TransformFunction::new(ThresholdRule::Fixed(3.0));
        assert!((fixed.sample_threshold(0.01, 0.1) - 0.03).abs() < 1e-12);
        let power = TransformFunction::new(ThresholdRule::Power(0.5));
        assert!((power.sample_threshold(0.01, 0.25) - 0.02).abs() < 1e-12);
    }

    #[test]
    fn apply_rebuilds_the_workload_with_scaled_threshold() {
        let pr = PageRankWorkload::with_epsilon(0.01, 10_000);
        let transform = TransformFunction::default_for(pr.convergence());
        let sample_pr = transform.apply(&pr, 0.1);
        assert!((sample_pr.threshold() - pr.threshold() * 10.0).abs() < 1e-15);

        let sc = SemiClusteringWorkload::default();
        let transform = TransformFunction::default_for(sc.convergence());
        let sample_sc = transform.apply(&sc, 0.1);
        assert_eq!(sample_sc.threshold(), sc.threshold());
    }

    #[test]
    #[should_panic(expected = "sampling ratio")]
    fn zero_ratio_panics() {
        let _ = TransformFunction::identity().sample_threshold(0.1, 0.0);
    }
}
