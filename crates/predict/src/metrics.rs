//! Error metrics used in the paper's evaluation (section 5, "Metrics of
//! Interest").
//!
//! The paper reports the *signed relative error* (negative = under-prediction,
//! positive = over-prediction) for iterations, key input features and runtime,
//! plus the coefficient of determination R² of the fitted cost models. Helper
//! summaries over multiple measurements (mean absolute relative error, worst
//! case) are provided for the experiment harness.

use serde::{Deserialize, Serialize};

/// Signed relative error `(predicted - actual) / actual`.
///
/// Follows the paper's sign convention: negative values are
/// under-predictions, positive values over-predictions. When the actual value
/// is zero the error is 0 if the prediction is also zero and infinite
/// otherwise.
pub fn signed_relative_error(predicted: f64, actual: f64) -> f64 {
    if actual == 0.0 {
        if predicted == 0.0 {
            0.0
        } else {
            f64::INFINITY * predicted.signum()
        }
    } else {
        (predicted - actual) / actual
    }
}

/// Absolute relative error `|predicted - actual| / actual`.
pub fn absolute_relative_error(predicted: f64, actual: f64) -> f64 {
    signed_relative_error(predicted, actual).abs()
}

/// A single predicted-versus-actual comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorSample {
    /// Predicted value.
    pub predicted: f64,
    /// Actual (measured) value.
    pub actual: f64,
}

impl ErrorSample {
    /// Creates a comparison.
    pub fn new(predicted: f64, actual: f64) -> Self {
        Self { predicted, actual }
    }

    /// Signed relative error of this sample.
    pub fn signed_error(&self) -> f64 {
        signed_relative_error(self.predicted, self.actual)
    }
}

/// Summary statistics over a set of predicted-versus-actual comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorSummary {
    /// Number of samples.
    pub count: usize,
    /// Mean of the signed relative errors.
    pub mean_signed_error: f64,
    /// Mean of the absolute relative errors.
    pub mean_absolute_error: f64,
    /// Largest absolute relative error.
    pub max_absolute_error: f64,
}

impl ErrorSummary {
    /// Summarizes a set of samples. Returns a zeroed summary for an empty
    /// input.
    pub fn from_samples(samples: &[ErrorSample]) -> Self {
        if samples.is_empty() {
            return Self {
                count: 0,
                mean_signed_error: 0.0,
                mean_absolute_error: 0.0,
                max_absolute_error: 0.0,
            };
        }
        let signed: Vec<f64> = samples.iter().map(|s| s.signed_error()).collect();
        let count = samples.len();
        let mean_signed_error = signed.iter().sum::<f64>() / count as f64;
        let mean_absolute_error = signed.iter().map(|e| e.abs()).sum::<f64>() / count as f64;
        let max_absolute_error = signed.iter().map(|e| e.abs()).fold(0.0, f64::max);
        Self {
            count,
            mean_signed_error,
            mean_absolute_error,
            max_absolute_error,
        }
    }
}

/// Coefficient of determination between predictions and actuals (the R² the
/// paper reports for its cost models).
pub fn r_squared(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(
        predicted.len(),
        actual.len(),
        "prediction and actual lengths differ"
    );
    if actual.is_empty() {
        return 0.0;
    }
    let mean = actual.iter().sum::<f64>() / actual.len() as f64;
    let ss_tot: f64 = actual.iter().map(|a| (a - mean).powi(2)).sum();
    let ss_res: f64 = predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (a - p).powi(2))
        .sum();
    if ss_tot <= f64::EPSILON {
        return if ss_res <= 1e-9 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_error_follows_paper_convention() {
        assert!((signed_relative_error(8.0, 10.0) + 0.2).abs() < 1e-12);
        assert!((signed_relative_error(12.0, 10.0) - 0.2).abs() < 1e-12);
        assert_eq!(signed_relative_error(0.0, 0.0), 0.0);
        assert!(signed_relative_error(1.0, 0.0).is_infinite());
    }

    #[test]
    fn absolute_error_is_magnitude_of_signed() {
        assert!((absolute_relative_error(8.0, 10.0) - 0.2).abs() < 1e-12);
        assert!((absolute_relative_error(12.0, 10.0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn summary_aggregates_samples() {
        let samples = vec![
            ErrorSample::new(9.0, 10.0),  // -0.1
            ErrorSample::new(11.0, 10.0), // +0.1
            ErrorSample::new(15.0, 10.0), // +0.5
        ];
        let s = ErrorSummary::from_samples(&samples);
        assert_eq!(s.count, 3);
        assert!((s.mean_signed_error - 0.5 / 3.0).abs() < 1e-12);
        assert!((s.mean_absolute_error - 0.7 / 3.0).abs() < 1e-12);
        assert!((s.max_absolute_error - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = ErrorSummary::from_samples(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_absolute_error, 0.0);
    }

    #[test]
    fn r_squared_is_one_for_perfect_predictions() {
        let actual = vec![1.0, 2.0, 3.0, 4.0];
        assert!((r_squared(&actual, &actual) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn r_squared_penalizes_bad_predictions() {
        let actual = vec![1.0, 2.0, 3.0, 4.0];
        let bad = vec![4.0, 3.0, 2.0, 1.0];
        assert!(r_squared(&bad, &actual) < 0.0);
        let mean_only = vec![2.5; 4];
        assert!(r_squared(&mean_only, &actual).abs() < 1e-12);
    }
}
