//! The unified error type of the prediction stack.
//!
//! Every stage of the pipeline — sampling, sample-run execution, training-set
//! assembly, cost-model fitting — reports failures through [`PredictError`],
//! so sessions, the concurrent [`crate::PredictService`] and the legacy
//! [`crate::Predictor`] facade all share one error surface. Conditions that
//! used to panic inside stage code (non-finite or non-positive ratios
//! reaching the transform function's assertions) are validated up front and
//! surfaced as [`PredictError::InvalidConfig`] instead.

use crate::regression::RegressionError;
use serde::Serialize;

/// Errors produced by the prediction pipeline, sessions and the service.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum PredictError {
    /// The predictor configuration is unusable: the sampling ratio or a
    /// training ratio is non-finite or non-positive. (An *empty*
    /// `training_ratios` list is valid — it means history-only or, failing
    /// that, sample-only training, which provenance marks as
    /// [`crate::TrainingSource::ExtrapolationSampleOnly`].) Validated before
    /// any stage runs so malformed configs fail fast instead of panicking
    /// deep inside the transform or extrapolation code.
    InvalidConfig(String),
    /// The sampling stage produced a graph with no vertices or edges (ratio
    /// too small, or an empty input graph).
    EmptySample {
        /// Name of the sampling technique that produced the empty sample.
        technique: String,
        /// The sampling ratio that was requested.
        ratio: f64,
        /// The seed the sampler was driven by.
        seed: u64,
    },
    /// Strict training was requested but every training ratio yielded an
    /// empty sample and no historical runs were available, so the cost model
    /// could only have been trained on the extrapolation sample run itself.
    InsufficientTraining {
        /// Workload whose cost model could not be trained.
        workload: String,
        /// Dataset label the prediction was bound to.
        dataset: String,
    },
    /// The cost model could not be trained on the assembled training set.
    CostModel(RegressionError),
    /// A service worker panicked while evaluating this request. The panic is
    /// caught at the request boundary so one poisoned request cannot take
    /// down its batch (or the service): the other requests in the batch
    /// complete normally and this one reports the payload here.
    WorkerPanicked {
        /// The panic payload rendered as text, or `"non-string panic
        /// payload"` when the payload was not a string.
        message: String,
    },
}

impl std::fmt::Display for PredictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredictError::InvalidConfig(reason) => {
                write!(f, "invalid predictor configuration: {reason}")
            }
            PredictError::EmptySample {
                technique,
                ratio,
                seed,
            } => write!(
                f,
                "sample graph has no vertices or edges ({technique} at ratio {ratio}, seed {seed})"
            ),
            PredictError::InsufficientTraining { workload, dataset } => write!(
                f,
                "no training data beyond the extrapolation sample run for {workload} on {dataset}"
            ),
            PredictError::CostModel(e) => write!(f, "cost model training failed: {e}"),
            PredictError::WorkerPanicked { message } => {
                write!(f, "prediction worker panicked: {message}")
            }
        }
    }
}

impl std::error::Error for PredictError {}

impl PredictError {
    /// True when this error is the sampling stage's empty-sample condition,
    /// regardless of which technique/ratio/seed produced it.
    pub fn is_empty_sample(&self) -> bool {
        matches!(self, PredictError::EmptySample { .. })
    }

    /// Converts a caught panic payload (from `std::panic::catch_unwind`)
    /// into [`PredictError::WorkerPanicked`], preserving `panic!` message
    /// strings.
    pub fn from_panic(payload: Box<dyn std::any::Any + Send>) -> Self {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        PredictError::WorkerPanicked { message }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PredictError::EmptySample {
            technique: "BRJ".to_string(),
            ratio: 0.001,
            seed: 7,
        };
        let msg = e.to_string();
        assert!(msg.contains("BRJ") && msg.contains("0.001"));
        assert!(e.is_empty_sample());

        let e = PredictError::InsufficientTraining {
            workload: "PR".to_string(),
            dataset: "Wiki".to_string(),
        };
        assert!(e.to_string().contains("PR"));
        assert!(!e.is_empty_sample());

        let e = PredictError::InvalidConfig("sampling ratio must be positive".to_string());
        assert!(e.to_string().contains("positive"));
    }

    #[test]
    fn panic_payloads_convert_to_worker_panicked() {
        let static_str = std::panic::catch_unwind(|| panic!("boom")).unwrap_err();
        assert_eq!(
            PredictError::from_panic(static_str),
            PredictError::WorkerPanicked {
                message: "boom".to_string()
            }
        );
        let formatted = std::panic::catch_unwind(|| panic!("bad ratio {}", 0.5)).unwrap_err();
        let e = PredictError::from_panic(formatted);
        assert!(e.to_string().contains("bad ratio 0.5"), "{e}");
        let opaque = std::panic::catch_unwind(|| std::panic::panic_any(17u32)).unwrap_err();
        let e = PredictError::from_panic(opaque);
        assert!(e.to_string().contains("non-string"), "{e}");
    }

    #[test]
    fn cost_model_errors_wrap_regression_errors() {
        let e = PredictError::CostModel(RegressionError::EmptyTrainingSet);
        assert_eq!(
            e,
            PredictError::CostModel(RegressionError::EmptyTrainingSet)
        );
        assert!(e.to_string().contains("training"));
    }
}
