//! Workload execution dispatch for the prediction pipeline.
//!
//! Every workload execution in this crate — sample runs, actual runs —
//! funnels through [`execute_workload`], which routes to whichever executor
//! the engine's transport mode selects: the in-memory runtime (the default)
//! or a `predict_cluster` worker group (in-process threads or worker OS
//! processes, via `PREDICT_TRANSPORT` or
//! [`PredictorBuilder::transport`](crate::session::PredictorBuilder::transport)).
//!
//! The pipeline's interfaces are infallible (a prediction either completes
//! or panics, and the service layer catches panics into structured
//! failures), so a cluster-transport failure — worker died, hung, spoke the
//! protocol wrong — panics here with the full structured report (worker,
//! superstep, stderr tail) as the message.

use predict_algorithms::{Workload, WorkloadRun};
use predict_bsp::{BspEngine, GraphStorage};
use predict_graph::CsrGraph;

/// Runs `workload` on `graph` under the engine's resolved transport,
/// forwarding pre-built `storage` to the in-memory path when given.
///
/// # Panics
///
/// Panics when the engine selects a cluster transport and the drive fails;
/// the message carries the structured `predict_cluster::ClusterError`
/// report (worker, superstep, stderr tail).
pub fn execute_workload(
    engine: &BspEngine,
    workload: &dyn Workload,
    graph: &CsrGraph,
    storage: Option<&GraphStorage>,
) -> WorkloadRun {
    match predict_cluster::run_workload(engine, workload, graph, storage) {
        Ok(run) => run,
        Err(e) => panic!("cluster transport failed: {e}"),
    }
}
