//! A thread-safe prediction service with session caching.
//!
//! [`PredictService`] is the deployment shape the paper motivates: a
//! scheduler-facing front-end that answers many prediction queries over a
//! changing population of datasets. It keeps [`crate::PredictionSession`]s in
//! a sharded, LRU-bounded cache keyed by dataset label, so requests against
//! the same dataset share sampled graphs, sample runs and trained models,
//! while requests against different datasets proceed without contending on a
//! single lock.
//!
//! Batches run on the engine's persistent [`predict_bsp::WorkerPool`]:
//! [`PredictService::submit_batch`] schedules independent requests as pool
//! tasks and returns results in request order, so a warm service evaluates
//! batch after batch without spawning a single OS thread (when the pool is
//! disabled via [`predict_bsp::PoolMode::Off`] or `PREDICT_POOL=off`, it
//! falls back to scoped threads per batch). Because every pipeline stage is
//! deterministic and cache values are immutable artifacts, the output is
//! identical regardless of thread count, scheduling substrate or
//! interleaving — a 1-thread batch and an N-thread batch produce the same
//! bytes.
//!
//! Robustness: a panic inside one request is caught at the request boundary
//! and surfaced as [`PredictError::WorkerPanicked`] for that request alone —
//! the rest of the batch completes, and the session-cache shard locks
//! recover from poisoning so the service keeps serving afterwards.

use crate::artifacts::stable_fingerprint;
use crate::error::PredictError;
use crate::session::{Evaluation, Prediction, PredictionSession, PredictorConfig};
use crate::Predictor;
use predict_algorithms::Workload;
use predict_bsp::{BspEngine, ExecutionMode, StorageMode, TransportMode};
use predict_graph::CsrGraph;
use predict_obs::diag;
use predict_sampling::Sampler;
use predict_store::ArtifactStore;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// One prediction query: a dataset (label + graph), a workload, and an
/// optional configuration override.
#[derive(Clone)]
pub struct PredictRequest {
    /// Dataset label; it identifies the session (and thus the artifact
    /// cache) the request is routed to.
    pub dataset: String,
    /// The full graph of the dataset. Requests with the same label should
    /// clone the same `Arc`: session reuse is keyed on pointer identity, so
    /// a label re-used with a different `Arc` replaces the cached session
    /// (and its amortized artifacts) rather than risk serving predictions
    /// computed from a stale graph.
    pub graph: Arc<CsrGraph>,
    /// The workload to predict.
    pub workload: Arc<dyn Workload>,
    /// Configuration override; `None` uses the service's default.
    pub config: Option<PredictorConfig>,
}

impl PredictRequest {
    /// Creates a request with the service's default configuration.
    pub fn new(
        dataset: &str,
        graph: impl Into<Arc<CsrGraph>>,
        workload: Arc<dyn Workload>,
    ) -> Self {
        Self {
            dataset: dataset.to_string(),
            graph: graph.into(),
            workload,
            config: None,
        }
    }

    /// Overrides the predictor configuration for this request.
    pub fn with_config(mut self, config: PredictorConfig) -> Self {
        self.config = Some(config);
        self
    }
}

/// Configuration of the service's session cache.
#[derive(Debug, Clone)]
pub struct PredictServiceConfig {
    /// Number of lock shards the session cache is split over. More shards
    /// mean less contention between requests for different datasets.
    pub shards: usize,
    /// Maximum sessions kept per shard; the least-recently-used session is
    /// evicted beyond this bound (dropping its cached artifacts).
    pub sessions_per_shard: usize,
    /// Default pipeline configuration for requests without an override.
    pub predictor: PredictorConfig,
    /// Engine execution override applied at construction: `Some(mode)`
    /// replaces the execution mode of the engine the service was given
    /// (sharing its run counter and layout cache), so every session's sample
    /// and actual runs execute under `mode`. With it, `submit_batch`
    /// parallelizes at both levels — requests across scoped threads *and*
    /// each run's superstep phases across the engine's threads. `None` keeps
    /// the engine as passed. Never changes results (see
    /// `predict_bsp::runtime`).
    pub execution: Option<ExecutionMode>,
    /// Engine graph-storage override applied at construction: `Some(mode)`
    /// makes every session's sample and actual runs execute against the
    /// chosen layout (unified CSR or one `ShardedCsr` per worker — see
    /// `predict_bsp::storage`). `None` keeps the engine as passed. Never
    /// changes results.
    pub storage: Option<StorageMode>,
    /// Engine transport override applied at construction: `Some(mode)`
    /// makes every session's sample and actual runs execute on the chosen
    /// executor — the in-memory runtime or a `predict_cluster` worker group
    /// (see `predict_bsp::remote`). `None` keeps the engine as passed
    /// (which itself defaults to honoring `PREDICT_TRANSPORT`). Never
    /// changes results; transported runs additionally carry measured
    /// per-superstep timings in their profiles.
    pub transport: Option<TransportMode>,
    /// Root directory of the persistent artifact store. `Some(path)` opens
    /// (creating on first use) a [`predict_store::ArtifactStore`] there and
    /// attaches it to every session the service binds: artifacts missing
    /// from a session's in-memory cache are read from disk before being
    /// recomputed, and freshly computed artifacts are written through. A
    /// warm-restarted service therefore answers with byte-identical
    /// predictions without re-executing stored sample runs. `None` falls
    /// back to the `PREDICT_STORE` environment variable
    /// ([`predict_bsp::knobs::STORE_VAR`]); when that is unset too, the
    /// service is memory-only. Opening failures degrade to memory-only with
    /// a diagnostic — they never fail construction.
    pub store: Option<PathBuf>,
}

impl Default for PredictServiceConfig {
    fn default() -> Self {
        Self {
            shards: 8,
            sessions_per_shard: 4,
            predictor: PredictorConfig::default(),
            execution: None,
            storage: None,
            transport: None,
            store: None,
        }
    }
}

impl PredictServiceConfig {
    /// Sets the persistent artifact-store directory (see the
    /// [`store`](Self::store) field).
    pub fn store(mut self, path: impl Into<PathBuf>) -> Self {
        self.store = Some(path.into());
        self
    }
}

struct ShardEntry {
    dataset: String,
    session: Arc<PredictionSession>,
    last_used: AtomicU64,
}

#[derive(Default)]
struct Shard {
    entries: Vec<ShardEntry>,
}

/// Locks a shard for reading, recovering from poisoning. Shard state is a
/// plain entry list that is never left half-edited across an unwind (each
/// mutation completes before stage code — the only thing that can panic —
/// runs), so a poisoned lock only means *some* request died mid-hold; the
/// data is still consistent and refusing to serve forever would turn one bad
/// request into a permanent outage.
fn shard_read(shard: &RwLock<Shard>) -> std::sync::RwLockReadGuard<'_, Shard> {
    shard.read().unwrap_or_else(|e| e.into_inner())
}

/// Write-lock counterpart of [`shard_read`]; same poisoning rationale.
fn shard_write(shard: &RwLock<Shard>) -> std::sync::RwLockWriteGuard<'_, Shard> {
    shard.write().unwrap_or_else(|e| e.into_inner())
}

/// A `Sync` prediction front-end holding per-dataset sessions behind a
/// sharded, LRU-bounded cache. See the [module documentation](self).
pub struct PredictService {
    engine: Arc<BspEngine>,
    sampler: Arc<dyn Sampler>,
    config: PredictServiceConfig,
    store: Option<Arc<ArtifactStore>>,
    shards: Vec<RwLock<Shard>>,
    clock: AtomicU64,
}

impl PredictService {
    /// Creates a service with the default cache configuration.
    pub fn new(engine: impl Into<Arc<BspEngine>>, sampler: Arc<dyn Sampler>) -> Self {
        Self::with_config(engine, sampler, PredictServiceConfig::default())
    }

    /// Creates a service with an explicit cache configuration.
    pub fn with_config(
        engine: impl Into<Arc<BspEngine>>,
        sampler: Arc<dyn Sampler>,
        config: PredictServiceConfig,
    ) -> Self {
        let shards = config.shards.max(1);
        let engine = engine.into();
        let engine = match config.execution {
            Some(mode) => Arc::new(engine.with_execution(mode)),
            None => engine,
        };
        let engine = match config.storage {
            Some(mode) => Arc::new(engine.with_storage(mode)),
            None => engine,
        };
        let engine = match config.transport {
            Some(mode) => Arc::new(engine.with_transport(mode)),
            None => engine,
        };
        // Resolve the store directory (explicit config wins over the
        // `PREDICT_STORE` environment knob) and open it once; every session
        // the service binds shares this handle. An unopenable store is a
        // degradation, not an outage: warn and serve memory-only.
        let store = config
            .store
            .clone()
            .or_else(predict_bsp::knobs::env_store_path)
            .and_then(|path| match ArtifactStore::open(&path) {
                Ok(store) => Some(Arc::new(store)),
                Err(err) => {
                    diag!(
                        Warn,
                        "service: failed to open artifact store at `{}` ({err}); \
                         continuing memory-only",
                        path.display()
                    );
                    None
                }
            });
        Self {
            engine,
            sampler,
            store,
            shards: (0..shards).map(|_| RwLock::new(Shard::default())).collect(),
            config,
            clock: AtomicU64::new(0),
        }
    }

    /// The engine shared by every session of this service.
    pub fn engine(&self) -> &Arc<BspEngine> {
        &self.engine
    }

    /// The persistent artifact store shared by every session of this
    /// service, when one was configured and opened successfully.
    pub fn artifact_store(&self) -> Option<&Arc<ArtifactStore>> {
        self.store.as_ref()
    }

    /// Stable shard assignment of a dataset label.
    fn shard_index(&self, dataset: &str) -> usize {
        (stable_fingerprint(dataset) % self.shards.len() as u64) as usize
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// True when `entry` can serve requests for `graph`: same label and the
    /// *same* graph by pointer identity. Structural comparison (vertex/edge
    /// counts) is deliberately not accepted: a regenerated graph can rewire
    /// edges while keeping its counts, and serving it cached predictions
    /// from the old graph would be silently wrong. Callers that want session
    /// reuse must ship the same `Arc` for the same dataset (which
    /// [`PredictRequest`] clones do naturally).
    fn entry_matches(entry: &ShardEntry, dataset: &str, graph: &Arc<CsrGraph>) -> bool {
        entry.dataset == dataset && Arc::ptr_eq(entry.session.graph(), graph)
    }

    /// Returns the session for `dataset`, creating (or replacing, when the
    /// label was re-bound to a different graph) and caching it on demand.
    pub fn session_for(&self, dataset: &str, graph: &Arc<CsrGraph>) -> Arc<PredictionSession> {
        let shard = &self.shards[self.shard_index(dataset)];
        {
            let guard = shard_read(shard);
            if let Some(entry) = guard
                .entries
                .iter()
                .find(|e| Self::entry_matches(e, dataset, graph))
            {
                entry.last_used.store(self.tick(), Ordering::Relaxed);
                return Arc::clone(&entry.session);
            }
        }

        // Build the session before taking the write lock: construction is
        // cheap (binding is lazy), and keeping panic-prone code outside the
        // critical section means the lock is never poisoned mid-mutation.
        let mut builder = Predictor::builder()
            .engine(Arc::clone(&self.engine))
            .sampler_arc(Arc::clone(&self.sampler))
            .config(self.config.predictor.clone());
        if let Some(store) = &self.store {
            builder = builder.store_arc(Arc::clone(store));
        }
        let session = Arc::new(builder.bind(Arc::clone(graph), dataset));

        let mut guard = shard_write(shard);
        // Double-checked: another writer may have created the session while
        // we waited for the write lock.
        if let Some(entry) = guard
            .entries
            .iter()
            .find(|e| Self::entry_matches(e, dataset, graph))
        {
            entry.last_used.store(self.tick(), Ordering::Relaxed);
            return Arc::clone(&entry.session);
        }
        // A label re-bound to a different graph drops the stale session.
        guard.entries.retain(|e| e.dataset != dataset);
        guard.entries.push(ShardEntry {
            dataset: dataset.to_string(),
            session: Arc::clone(&session),
            last_used: AtomicU64::new(self.tick()),
        });
        // LRU bound: evict the stalest session beyond the configured cap.
        let cap = self.config.sessions_per_shard.max(1);
        while guard.entries.len() > cap {
            let stalest = guard
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(i, _)| i)
                .expect("entries is non-empty");
            guard.entries.remove(stalest);
        }
        session
    }

    /// Opens the `service.request` span with a process-unique request id,
    /// and counts the request. Ids are generated even when tracing is off so
    /// a trace started mid-process still shows where its requests sit in the
    /// service's lifetime order.
    fn request_span(&self, op: &'static str, dataset: &str) -> predict_obs::SpanGuard {
        static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);
        let id = NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed);
        predict_obs::registry().counter("service.requests").incr();
        predict_obs::trace::span("service.request")
            .arg("request_id", id)
            .arg("op", op)
            .arg("dataset", dataset)
    }

    /// Evaluates one prediction request.
    pub fn submit(&self, request: &PredictRequest) -> Result<Prediction, PredictError> {
        let _span = self.request_span("predict", &request.dataset);
        let _timer = predict_obs::metrics::time_scope("service.request_ns");
        let session = self.session_for(&request.dataset, &request.graph);
        match &request.config {
            Some(config) => session.predict_with(request.workload.as_ref(), config),
            None => session.predict(request.workload.as_ref()),
        }
    }

    /// Evaluates one request against the measured actual run (cached in the
    /// session after the first evaluation).
    pub fn evaluate(&self, request: &PredictRequest) -> Result<Evaluation, PredictError> {
        let _span = self.request_span("evaluate", &request.dataset);
        let _timer = predict_obs::metrics::time_scope("service.request_ns");
        let session = self.session_for(&request.dataset, &request.graph);
        match &request.config {
            Some(config) => session.evaluate_with(request.workload.as_ref(), config),
            None => session.evaluate(request.workload.as_ref()),
        }
    }

    /// Freezes the process-wide metrics registry: request counts, per-stage
    /// latency histograms (`predict.stage.*_ns`), BSP/pool/cluster counters —
    /// deterministically ordered and serializable. p50/p90/p99 derive from
    /// the histogram buckets
    /// ([`HistogramSnapshot::quantile`](predict_obs::metrics::HistogramSnapshot::quantile)).
    ///
    /// The registry is process-global (instruments are cheap atomics shared
    /// by every layer), so the snapshot also covers activity outside this
    /// service instance; within one service process it is the service's
    /// telemetry view.
    pub fn metrics_snapshot(&self) -> predict_obs::MetricsSnapshot {
        predict_obs::registry().snapshot()
    }

    /// Evaluates one request with panics contained to the request boundary:
    /// an unwinding stage becomes [`PredictError::WorkerPanicked`] for this
    /// request instead of propagating into (and killing) a batch.
    fn submit_caught(&self, request: &PredictRequest) -> Result<Prediction, PredictError> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.submit(request)))
            .unwrap_or_else(|payload| Err(PredictError::from_panic(payload)))
    }

    /// Evaluates independent requests concurrently (up to `threads` wide)
    /// and returns the results in request order.
    ///
    /// Requests are scheduled onto the engine's persistent
    /// [`predict_bsp::WorkerPool`], so a warm service spawns **zero** OS
    /// threads per batch and successive batches pipeline through the same
    /// workers as each run's superstep phases. When the pool is disabled
    /// ([`predict_bsp::PoolMode::Off`] or `PREDICT_POOL=off`) the batch
    /// falls back to scoped threads, one stride per thread.
    ///
    /// A panicking request yields `Err(`[`PredictError::WorkerPanicked`]`)`
    /// in its slot; the other requests still complete.
    ///
    /// The output is deterministic: result `i` depends only on request `i`
    /// (every stage is deterministic and cached artifacts are immutable), so
    /// thread count, scheduling substrate and interleaving change wall-clock
    /// time, never results.
    ///
    /// # Examples
    ///
    /// A scheduler asking for the same dataset under two workloads: both
    /// requests route to one cached session, so the expensive sampling stage
    /// runs once, and a 1-thread batch returns the same bytes as an N-thread
    /// batch:
    ///
    /// ```
    /// use predict_algorithms::{PageRankWorkload, TopKWorkload, Workload};
    /// use predict_bsp::{BspConfig, BspEngine};
    /// use predict_core::{PredictRequest, PredictService};
    /// use predict_graph::generators::{generate_rmat, RmatConfig};
    /// use predict_sampling::BiasedRandomJump;
    /// use std::sync::Arc;
    ///
    /// let graph = Arc::new(generate_rmat(&RmatConfig::new(10, 8).with_seed(7)));
    /// let service = PredictService::new(
    ///     BspEngine::new(BspConfig::with_workers(8)),
    ///     Arc::new(BiasedRandomJump::default()),
    /// );
    /// let requests: Vec<PredictRequest> = [
    ///     Arc::new(PageRankWorkload::with_epsilon(0.01, graph.num_vertices()))
    ///         as Arc<dyn Workload>,
    ///     Arc::new(TopKWorkload::default()),
    /// ]
    /// .into_iter()
    /// .map(|w| PredictRequest::new("web-analog", Arc::clone(&graph), w))
    /// .collect();
    ///
    /// let parallel = service.submit_batch(&requests, 2);
    /// assert!(parallel.iter().all(Result::is_ok));
    /// // Warm re-submission on one thread: identical results, same session.
    /// let sequential = service.submit_batch(&requests, 1);
    /// assert_eq!(service.sessions_cached(), 1);
    /// for (p, s) in parallel.iter().zip(&sequential) {
    ///     let (p, s) = (p.as_ref().unwrap(), s.as_ref().unwrap());
    ///     assert_eq!(p.predicted_superstep_ms, s.predicted_superstep_ms);
    /// }
    /// ```
    pub fn submit_batch(
        &self,
        requests: &[PredictRequest],
        threads: usize,
    ) -> Vec<Result<Prediction, PredictError>> {
        let threads = threads.clamp(1, requests.len().max(1));
        if threads == 1 {
            return requests.iter().map(|r| self.submit_caught(r)).collect();
        }
        let mut results: Vec<Option<Result<Prediction, PredictError>>> =
            (0..requests.len()).map(|_| None).collect();
        if let Some(pool) = self.engine.worker_pool() {
            // One pool task per request: the pool's work-stealing deques
            // balance uneven request costs, and `run_scoped`'s caller
            // participation keeps this deadlock-free even when a request's
            // own superstep phases fan out onto the same pool.
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = results
                .iter_mut()
                .zip(requests)
                .map(|(slot, request)| {
                    let task: Box<dyn FnOnce() + Send + '_> =
                        Box::new(move || *slot = Some(self.submit_caught(request)));
                    task
                })
                .collect();
            pool.run_scoped(threads, tasks);
        } else {
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(threads);
                for t in 0..threads {
                    predict_bsp::record_external_spawn();
                    handles.push(scope.spawn(move || {
                        // Stride partitioning: thread t takes requests t, t+T, ...
                        requests
                            .iter()
                            .enumerate()
                            .skip(t)
                            .step_by(threads)
                            .map(|(i, r)| (i, self.submit_caught(r)))
                            .collect::<Vec<_>>()
                    }));
                }
                for handle in handles {
                    let worker_results = match handle.join() {
                        Ok(worker_results) => worker_results,
                        // submit_caught contains request panics, so an
                        // unwound worker can only be a harness-level bug;
                        // still, degrade to per-request errors rather than
                        // killing the whole batch.
                        Err(_) => continue,
                    };
                    for (i, result) in worker_results {
                        results[i] = Some(result);
                    }
                }
            });
        }
        results
            .into_iter()
            .map(|r| {
                r.unwrap_or_else(|| {
                    Err(PredictError::WorkerPanicked {
                        message: "batch worker died before filling this slot".to_string(),
                    })
                })
            })
            .collect()
    }

    /// Number of sessions currently cached across all shards.
    pub fn sessions_cached(&self) -> usize {
        self.shards
            .iter()
            .map(|s| shard_read(s).entries.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predict_algorithms::{ConnectedComponentsWorkload, PageRankWorkload, TopKWorkload};
    use predict_bsp::BspConfig;
    use predict_graph::generators::{generate_rmat, RmatConfig};
    use predict_sampling::BiasedRandomJump;

    fn service() -> PredictService {
        PredictService::with_config(
            BspEngine::new(BspConfig::with_workers(4)),
            Arc::new(BiasedRandomJump::default()),
            PredictServiceConfig {
                predictor: PredictorConfig::single_ratio(0.1),
                ..PredictServiceConfig::default()
            },
        )
    }

    fn graph(seed: u64) -> Arc<CsrGraph> {
        Arc::new(generate_rmat(&RmatConfig::new(10, 6).with_seed(seed)))
    }

    #[test]
    fn submit_routes_requests_through_cached_sessions() {
        let svc = service();
        let g = graph(1);
        let workload: Arc<dyn Workload> =
            Arc::new(PageRankWorkload::with_epsilon(0.01, g.num_vertices()));
        let req = PredictRequest::new("Wiki", Arc::clone(&g), workload);
        let a = svc.submit(&req).unwrap();
        let runs = svc.engine().runs_executed();
        let b = svc.submit(&req).unwrap();
        assert_eq!(
            svc.engine().runs_executed(),
            runs,
            "second submit re-ran the engine"
        );
        assert_eq!(a.predicted_superstep_ms, b.predicted_superstep_ms);
        assert_eq!(svc.sessions_cached(), 1);
    }

    #[test]
    fn batch_results_keep_request_order() {
        let svc = service();
        let g = graph(2);
        let n = g.num_vertices();
        let requests: Vec<PredictRequest> = vec![
            PredictRequest::new(
                "A",
                Arc::clone(&g),
                Arc::new(PageRankWorkload::with_epsilon(0.01, n)),
            ),
            PredictRequest::new("A", Arc::clone(&g), Arc::new(TopKWorkload::default())),
            PredictRequest::new("A", Arc::clone(&g), Arc::new(ConnectedComponentsWorkload)),
        ];
        let results = svc.submit_batch(&requests, 3);
        assert_eq!(results.len(), 3);
        let names: Vec<String> = results
            .iter()
            .map(|r| r.as_ref().unwrap().workload.clone())
            .collect();
        assert_eq!(names, vec!["PR", "TOP-K", "CC"]);
    }

    #[test]
    fn metrics_snapshot_covers_every_request_in_a_warm_batch() {
        let svc = service();
        let g = graph(9);
        let n = g.num_vertices();
        let requests: Vec<PredictRequest> = vec![
            PredictRequest::new(
                "Metrics",
                Arc::clone(&g),
                Arc::new(PageRankWorkload::with_epsilon(0.01, n)),
            ),
            PredictRequest::new("Metrics", Arc::clone(&g), Arc::new(TopKWorkload::default())),
            PredictRequest::new(
                "Metrics",
                Arc::clone(&g),
                Arc::new(ConnectedComponentsWorkload),
            ),
        ];
        // Warm the session cache, then snapshot deltas around a warm batch.
        // The registry is process-global, so assertions compare before/after
        // rather than absolute values (other tests run concurrently).
        let _ = svc.submit_batch(&requests, 2);
        let before = svc.metrics_snapshot();
        let results = svc.submit_batch(&requests, 2);
        assert!(results.iter().all(Result::is_ok));
        let after = svc.metrics_snapshot();
        let delta =
            |name: &str| after.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0);
        assert!(delta("service.requests") >= requests.len() as u64);
        let hist_count = |snap: &predict_obs::MetricsSnapshot, name: &str| {
            snap.histogram(name).map_or(0, |h| h.count)
        };
        // Every request in the batch landed in the request-latency histogram
        // and in the per-stage histograms (warm hits included — the stage
        // timers wrap cache lookups too).
        for name in [
            "service.request_ns",
            "session.predict_ns",
            "predict.stage.sample_ns",
            "predict.stage.sample_run_ns",
            "predict.stage.train_ns",
        ] {
            assert!(
                hist_count(&after, name) >= hist_count(&before, name) + requests.len() as u64,
                "histogram {name} did not cover the warm batch"
            );
        }
        // Quantiles are derivable from the snapshot buckets.
        let request_ns = after.histogram("service.request_ns").unwrap();
        assert!(request_ns.p50().is_some());
        assert!(request_ns.p99().unwrap() >= request_ns.p50().unwrap());
    }

    #[test]
    fn lru_bound_evicts_the_stalest_session() {
        let svc = PredictService::with_config(
            BspEngine::new(BspConfig::with_workers(2)),
            Arc::new(BiasedRandomJump::default()),
            PredictServiceConfig {
                shards: 1,
                sessions_per_shard: 2,
                predictor: PredictorConfig::single_ratio(0.2),
                ..PredictServiceConfig::default()
            },
        );
        let graphs: Vec<Arc<CsrGraph>> = (0..3).map(|i| graph(10 + i)).collect();
        for (i, g) in graphs.iter().enumerate() {
            svc.session_for(&format!("ds{i}"), g);
        }
        assert_eq!(svc.sessions_cached(), 2, "LRU bound not enforced");
        // ds0 was the stalest; ds1 and ds2 survive.
        svc.session_for("ds1", &graphs[1]);
        assert_eq!(svc.sessions_cached(), 2);
    }

    #[test]
    fn rebinding_a_label_to_a_different_graph_replaces_the_session() {
        let svc = service();
        let g1 = graph(5);
        let s1 = svc.session_for("X", &g1);
        let g2 = Arc::new(generate_rmat(&RmatConfig::new(9, 4).with_seed(6)));
        let s2 = svc.session_for("X", &g2);
        assert!(!Arc::ptr_eq(&s1, &s2), "stale session served for new graph");
        assert_eq!(svc.sessions_cached(), 1);
    }

    #[test]
    fn execution_override_changes_no_bytes() {
        use predict_bsp::ExecutionMode;
        let g = graph(9);
        let workload: Arc<dyn Workload> =
            Arc::new(PageRankWorkload::with_epsilon(0.01, g.num_vertices()));
        let mut predictions = Vec::new();
        for mode in [
            ExecutionMode::Sequential,
            ExecutionMode::Parallel { threads: 2 },
            ExecutionMode::Parallel { threads: 4 },
        ] {
            let svc = PredictService::with_config(
                BspEngine::new(BspConfig::with_workers(4)),
                Arc::new(BiasedRandomJump::default()),
                PredictServiceConfig {
                    predictor: PredictorConfig::single_ratio(0.1),
                    execution: Some(mode),
                    ..PredictServiceConfig::default()
                },
            );
            let req = PredictRequest::new("Z", Arc::clone(&g), Arc::clone(&workload));
            let p = svc.submit(&req).unwrap();
            predictions.push(serde_json::to_string(&p).unwrap());
        }
        assert_eq!(predictions[0], predictions[1]);
        assert_eq!(predictions[0], predictions[2]);
    }

    /// A workload whose run stage always panics — the in-process stand-in
    /// for a stage bug, used to pin the batch-isolation contract.
    #[derive(Debug, Clone, Copy)]
    struct PanickingWorkload;

    impl Workload for PanickingWorkload {
        fn name(&self) -> &'static str {
            "PANIC"
        }
        fn convergence(&self) -> predict_algorithms::ConvergenceKind {
            predict_algorithms::ConvergenceKind::FixedPoint
        }
        fn threshold(&self) -> f64 {
            0.0
        }
        fn with_threshold(&self, _threshold: f64) -> Box<dyn Workload> {
            Box::new(*self)
        }
        fn run(
            &self,
            _engine: &BspEngine,
            _graph: &predict_graph::CsrGraph,
        ) -> predict_algorithms::WorkloadRun {
            panic!("injected workload failure")
        }
    }

    #[test]
    fn a_panicking_request_fails_alone_and_the_batch_survives() {
        let svc = service();
        let g = graph(21);
        let n = g.num_vertices();
        let requests: Vec<PredictRequest> = vec![
            PredictRequest::new(
                "A",
                Arc::clone(&g),
                Arc::new(PageRankWorkload::with_epsilon(0.01, n)),
            ),
            PredictRequest::new("A", Arc::clone(&g), Arc::new(PanickingWorkload)),
            PredictRequest::new("A", Arc::clone(&g), Arc::new(TopKWorkload::default())),
        ];
        for threads in [1, 3] {
            let results = svc.submit_batch(&requests, threads);
            assert!(results[0].is_ok(), "{:?}", results[0]);
            assert!(results[2].is_ok(), "{:?}", results[2]);
            match &results[1] {
                Err(PredictError::WorkerPanicked { message }) => {
                    assert!(message.contains("injected workload failure"), "{message}");
                }
                other => panic!("expected WorkerPanicked, got {other:?}"),
            }
        }
        // The service keeps serving after the panic.
        assert!(svc.submit(&requests[0]).is_ok());
    }

    #[test]
    fn the_service_keeps_serving_after_a_shard_lock_is_poisoned() {
        let svc = service();
        let g = graph(22);
        let dataset = "poisoned";
        let shard = &svc.shards[svc.shard_index(dataset)];
        // Panic while holding the write lock: without recovery, every later
        // lock() on this shard would return Err(Poisoned) forever.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = shard.write().unwrap();
            panic!("poison the shard lock");
        }));
        assert!(shard.is_poisoned(), "test setup failed to poison the lock");
        let req = PredictRequest::new(
            dataset,
            Arc::clone(&g),
            Arc::new(PageRankWorkload::with_epsilon(0.01, g.num_vertices())),
        );
        let prediction = svc
            .submit(&req)
            .expect("poisoned shard stopped the service");
        assert!(prediction.predicted_superstep_ms.is_finite());
        assert_eq!(svc.sessions_cached(), 1);
    }

    #[test]
    fn pooled_batches_match_scoped_thread_batches() {
        use predict_bsp::PoolMode;
        let g = graph(23);
        let n = g.num_vertices();
        let mut rendered = Vec::new();
        for pool in [PoolMode::On, PoolMode::Off] {
            let svc = PredictService::with_config(
                BspEngine::new(BspConfig::with_workers(4).with_pool(pool)),
                Arc::new(BiasedRandomJump::default()),
                PredictServiceConfig {
                    predictor: PredictorConfig::single_ratio(0.1),
                    ..PredictServiceConfig::default()
                },
            );
            let requests: Vec<PredictRequest> = vec![
                PredictRequest::new(
                    "A",
                    Arc::clone(&g),
                    Arc::new(PageRankWorkload::with_epsilon(0.01, n)),
                ),
                PredictRequest::new("A", Arc::clone(&g), Arc::new(TopKWorkload::default())),
                PredictRequest::new("A", Arc::clone(&g), Arc::new(ConnectedComponentsWorkload)),
            ];
            let results: Vec<String> = svc
                .submit_batch(&requests, 3)
                .into_iter()
                .map(|r| match r {
                    Ok(p) => serde_json::to_string(&p).unwrap(),
                    Err(e) => e.to_string(),
                })
                .collect();
            rendered.push(results);
        }
        assert_eq!(rendered[0], rendered[1], "PoolMode changed batch results");
    }

    #[test]
    fn config_override_is_honored() {
        let svc = service();
        let g = graph(7);
        let workload: Arc<dyn Workload> =
            Arc::new(PageRankWorkload::with_epsilon(0.01, g.num_vertices()));
        let default = svc
            .submit(&PredictRequest::new(
                "Y",
                Arc::clone(&g),
                Arc::clone(&workload),
            ))
            .unwrap();
        let coarse = svc
            .submit(
                &PredictRequest::new("Y", Arc::clone(&g), workload)
                    .with_config(PredictorConfig::single_ratio(0.3)),
            )
            .unwrap();
        assert!((default.achieved_sampling_ratio - 0.1).abs() < 0.05);
        assert!((coarse.achieved_sampling_ratio - 0.3).abs() < 0.05);
    }

    /// Fresh per-test store directory; best-effort cleanup on drop.
    struct TempStoreDir(std::path::PathBuf);

    impl TempStoreDir {
        fn new() -> Self {
            static DIR_SEQ: AtomicU64 = AtomicU64::new(0);
            let path = std::env::temp_dir().join(format!(
                "predict_service_store_{}_{}",
                std::process::id(),
                DIR_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&path).unwrap();
            TempStoreDir(path)
        }
    }

    impl Drop for TempStoreDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn service_with_store(dir: &std::path::Path) -> PredictService {
        PredictService::with_config(
            BspEngine::new(BspConfig::with_workers(4)),
            Arc::new(BiasedRandomJump::default()),
            PredictServiceConfig {
                predictor: PredictorConfig::single_ratio(0.1),
                ..PredictServiceConfig::default()
            }
            .store(dir),
        )
    }

    #[test]
    fn warm_restart_is_byte_identical_and_executes_zero_runs() {
        let dir = TempStoreDir::new();
        let g = graph(31);
        let n = g.num_vertices();
        let requests: Vec<PredictRequest> = vec![
            PredictRequest::new(
                "Warm",
                Arc::clone(&g),
                Arc::new(PageRankWorkload::with_epsilon(0.01, n)),
            ),
            PredictRequest::new("Warm", Arc::clone(&g), Arc::new(TopKWorkload::default())),
        ];

        // Cold service: computes everything and writes it through to disk.
        let cold = service_with_store(&dir.0);
        assert!(cold.artifact_store().is_some(), "store failed to open");
        let cold_predictions: Vec<String> = requests
            .iter()
            .map(|r| serde_json::to_string(&cold.submit(r).unwrap()).unwrap())
            .collect();
        let cold_eval = serde_json::to_string(&cold.evaluate(&requests[0]).unwrap()).unwrap();
        assert!(cold.engine().runs_executed() > 0);
        drop(cold);

        // Warm restart: new service, new engine, same directory. Every
        // artifact — samples, sample runs, models, the actual run — must
        // come from disk: byte-identical output, zero engine executions.
        let warm = service_with_store(&dir.0);
        let warm_predictions: Vec<String> = requests
            .iter()
            .map(|r| serde_json::to_string(&warm.submit(r).unwrap()).unwrap())
            .collect();
        let warm_eval = serde_json::to_string(&warm.evaluate(&requests[0]).unwrap()).unwrap();
        assert_eq!(cold_predictions, warm_predictions, "warm restart diverged");
        assert_eq!(cold_eval, warm_eval, "warm evaluation diverged");
        assert_eq!(
            warm.engine().runs_executed(),
            0,
            "warm restart re-executed a stored run"
        );
    }

    #[test]
    fn store_hits_are_counted_separately_from_memory_hits() {
        let dir = TempStoreDir::new();
        let g = graph(32);
        let workload: Arc<dyn Workload> =
            Arc::new(PageRankWorkload::with_epsilon(0.01, g.num_vertices()));
        let req = PredictRequest::new("Hits", Arc::clone(&g), Arc::clone(&workload));

        // Cold pass: everything is computed, so no store hits.
        let cold = service_with_store(&dir.0);
        cold.submit(&req).unwrap();
        let cold_session = cold.session_for("Hits", &g);
        assert_eq!(cold_session.stats().store_hits, 0);
        drop(cold);

        // Warm pass: disk answers, and the counter says so.
        let warm = service_with_store(&dir.0);
        warm.submit(&req).unwrap();
        let warm_session = warm.session_for("Hits", &g);
        let after_first = warm_session.stats().store_hits;
        assert!(after_first > 0, "warm pass reported zero store hits");
        // A repeat of the same request is a pure in-memory hit: the store
        // counter must not move.
        warm.submit(&req).unwrap();
        assert_eq!(warm_session.stats().store_hits, after_first);
    }

    #[test]
    fn corrupted_store_degrades_to_recompute() {
        let dir = TempStoreDir::new();
        let g = graph(33);
        let workload: Arc<dyn Workload> =
            Arc::new(PageRankWorkload::with_epsilon(0.01, g.num_vertices()));
        let req = PredictRequest::new("Corrupt", Arc::clone(&g), Arc::clone(&workload));

        let cold = service_with_store(&dir.0);
        let expected = serde_json::to_string(&cold.submit(&req).unwrap()).unwrap();
        drop(cold);

        // Flip one byte in every stored artifact.
        let mut flipped = 0;
        for kind_dir in std::fs::read_dir(&dir.0).unwrap() {
            let kind_dir = kind_dir.unwrap().path();
            if !kind_dir.is_dir() {
                continue;
            }
            for file in std::fs::read_dir(&kind_dir).unwrap() {
                let file = file.unwrap().path();
                if file.extension().is_some_and(|e| e == "art") {
                    let mut bytes = std::fs::read(&file).unwrap();
                    let mid = bytes.len() / 2;
                    bytes[mid] ^= 0xFF;
                    std::fs::write(&file, bytes).unwrap();
                    flipped += 1;
                }
            }
        }
        assert!(flipped > 0, "cold pass stored no artifacts");

        // The service must answer identically by recomputing, and the store
        // must have quarantined the damaged files rather than panic.
        let recovered = service_with_store(&dir.0);
        let actual = serde_json::to_string(&recovered.submit(&req).unwrap()).unwrap();
        assert_eq!(expected, actual, "recovery changed the prediction");
        assert!(
            recovered.engine().runs_executed() > 0,
            "corrupt store should force recomputation"
        );
        let store = recovered.artifact_store().unwrap();
        assert!(
            store.quarantined_files() > 0,
            "corrupt artifacts were not quarantined"
        );
    }
}
