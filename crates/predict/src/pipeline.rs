//! The end-to-end PREDIcT pipeline (Figure 1 of the paper).
//!
//! [`Predictor::predict`] wires the whole methodology together:
//!
//! 1. draw a sample of the input graph with the configured sampling technique;
//! 2. apply the transform function to the workload's convergence threshold and
//!    execute the **sample run** on the sample graph, profiling per-iteration
//!    key input features;
//! 3. train the **cost model** (multivariate regression + forward feature
//!    selection) on the sample-run observations at several sampling ratios
//!    and, when available, on historical actual runs of the same workload on
//!    other datasets;
//! 4. **extrapolate** the per-iteration features of the sample run to the
//!    scale of the full graph and push them through the cost model, summing
//!    the per-iteration estimates into the predicted runtime of the superstep
//!    phase (the number of iterations is used implicitly: one prediction per
//!    sample-run iteration).
//!
//! [`Predictor::evaluate`] additionally executes the actual run and reports
//! the signed relative errors the paper plots in Figures 4–8.

use crate::cost_model::{CostModel, CostModelConfig};
use crate::critical_path::{observations_from_profile, WorkerSelection};
use crate::extrapolator::{ExtrapolationRule, Extrapolator};
use crate::features::{FeatureSet, IterationObservation};
use crate::history::HistoryStore;
use crate::metrics::signed_relative_error;
use crate::regression::RegressionError;
use crate::transform::TransformFunction;
use predict_algorithms::Workload;
use predict_bsp::{BspEngine, RunProfile};
use predict_graph::CsrGraph;
use predict_sampling::Sampler;

/// Configuration of the prediction pipeline.
#[derive(Debug, Clone)]
pub struct PredictorConfig {
    /// Sampling ratio of the sample run whose per-iteration features are
    /// extrapolated (the paper's headline setting is 0.1).
    pub sampling_ratio: f64,
    /// Sampling ratios of the additional sample runs used to train the cost
    /// model (section 5.2 trains on 0.05, 0.1, 0.15 and 0.2).
    pub training_ratios: Vec<f64>,
    /// Seed driving the sampler and any other randomized choice.
    pub seed: u64,
    /// Which worker represents an iteration when extracting features.
    pub worker_selection: WorkerSelection,
    /// Cost model training configuration.
    pub cost_model: CostModelConfig,
    /// Transform function override; `None` uses the paper's default rule for
    /// the workload's convergence kind.
    pub transform: Option<TransformFunction>,
    /// Extrapolation rule (the paper's per-feature rule by default; the other
    /// variants exist for the ablation benchmarks).
    pub extrapolation_rule: ExtrapolationRule,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        Self {
            sampling_ratio: 0.1,
            training_ratios: vec![0.05, 0.1, 0.15, 0.2],
            seed: 0x9d1c,
            worker_selection: WorkerSelection::SlowestWorker,
            cost_model: CostModelConfig::default(),
            transform: None,
            extrapolation_rule: ExtrapolationRule::PerFeature,
        }
    }
}

impl PredictorConfig {
    /// Convenience constructor: predict from a sample run at `ratio`, train
    /// the cost model only on that same run (no extra training ratios).
    pub fn single_ratio(ratio: f64) -> Self {
        Self {
            sampling_ratio: ratio,
            training_ratios: vec![ratio],
            ..Self::default()
        }
    }

    /// Replaces the sampling ratio used for extrapolation, keeping the
    /// training ratios.
    pub fn with_sampling_ratio(mut self, ratio: f64) -> Self {
        self.sampling_ratio = ratio;
        self
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Errors produced by the prediction pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum PredictError {
    /// The sample graph was empty (ratio too small or empty input graph).
    EmptySample,
    /// The cost model could not be trained.
    CostModel(RegressionError),
}

impl std::fmt::Display for PredictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredictError::EmptySample => write!(f, "sample graph has no vertices or edges"),
            PredictError::CostModel(e) => write!(f, "cost model training failed: {e}"),
        }
    }
}

impl std::error::Error for PredictError {}

/// The output of the prediction pipeline for one workload on one dataset.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// Workload name.
    pub workload: String,
    /// Predicted number of iterations (= iterations of the sample run, which
    /// the transform function strives to preserve).
    pub predicted_iterations: usize,
    /// Predicted runtime of the superstep phase in simulated milliseconds.
    pub predicted_superstep_ms: f64,
    /// Per-iteration runtime predictions, aligned with the sample run's
    /// iterations.
    pub per_iteration_ms: Vec<f64>,
    /// Extrapolated per-iteration features that were fed to the cost model.
    pub extrapolated_features: Vec<FeatureSet>,
    /// Predicted graph-level total of remote message bytes over the whole run
    /// (the key input feature evaluated in Figure 6, bottom).
    pub predicted_remote_message_bytes: f64,
    /// The trained cost model.
    pub cost_model: CostModel,
    /// The extrapolation factors that were applied.
    pub extrapolator: Extrapolator,
    /// Profile of the sample run the prediction extrapolates from.
    pub sample_profile: RunProfile,
    /// Ratio that the sampler actually achieved.
    pub achieved_sampling_ratio: f64,
    /// Simulated end-to-end runtime of the sample run (used for the Table 3
    /// overhead analysis).
    pub sample_run_total_ms: f64,
}

/// A prediction compared against the measured actual run.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The prediction under evaluation.
    pub prediction: Prediction,
    /// Iterations of the actual run.
    pub actual_iterations: usize,
    /// Measured superstep-phase runtime of the actual run.
    pub actual_superstep_ms: f64,
    /// Measured end-to-end runtime of the actual run.
    pub actual_total_ms: f64,
    /// Measured graph-level total of remote message bytes of the actual run.
    pub actual_remote_message_bytes: f64,
    /// Profile of the actual run.
    pub actual_profile: RunProfile,
}

impl Evaluation {
    /// Signed relative error of the iteration prediction (Figures 4–6).
    pub fn iteration_error(&self) -> f64 {
        signed_relative_error(
            self.prediction.predicted_iterations as f64,
            self.actual_iterations as f64,
        )
    }

    /// Signed relative error of the runtime prediction (Figures 7–8).
    pub fn runtime_error(&self) -> f64 {
        signed_relative_error(
            self.prediction.predicted_superstep_ms,
            self.actual_superstep_ms,
        )
    }

    /// Signed relative error of the remote-message-bytes prediction
    /// (Figure 6, bottom).
    pub fn remote_bytes_error(&self) -> f64 {
        signed_relative_error(
            self.prediction.predicted_remote_message_bytes,
            self.actual_remote_message_bytes,
        )
    }

    /// Ratio of the sample run's end-to-end runtime to the actual run's
    /// (Table 3's overhead analysis).
    pub fn sample_overhead_ratio(&self) -> f64 {
        if self.actual_total_ms == 0.0 {
            0.0
        } else {
            self.prediction.sample_run_total_ms / self.actual_total_ms
        }
    }
}

/// The PREDIcT predictor: a BSP engine, a sampling technique and a pipeline
/// configuration.
pub struct Predictor<'a> {
    engine: &'a BspEngine,
    sampler: &'a dyn Sampler,
    config: PredictorConfig,
}

impl<'a> Predictor<'a> {
    /// Creates a predictor.
    pub fn new(engine: &'a BspEngine, sampler: &'a dyn Sampler, config: PredictorConfig) -> Self {
        Self {
            engine,
            sampler,
            config,
        }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PredictorConfig {
        &self.config
    }

    /// Predicts the runtime of `workload` on `graph` without executing the
    /// actual run. `history` supplies profiles of prior actual runs;
    /// `dataset_label` identifies the current dataset so its own historical
    /// runs are excluded from training (the paper's leave-one-out protocol).
    pub fn predict(
        &self,
        workload: &dyn Workload,
        graph: &CsrGraph,
        history: &HistoryStore,
        dataset_label: &str,
    ) -> Result<Prediction, PredictError> {
        let transform = self
            .config
            .transform
            .unwrap_or_else(|| TransformFunction::default_for(workload.convergence()));

        // --- Sample run used for extrapolation -------------------------------
        let sample = self
            .sampler
            .sample(graph, self.config.sampling_ratio, self.config.seed);
        if sample.graph.num_vertices() == 0 || sample.graph.num_edges() == 0 {
            return Err(PredictError::EmptySample);
        }
        let ratio = sample.achieved_ratio.clamp(f64::MIN_POSITIVE, 1.0);
        let sample_workload = transform.apply(workload, ratio);
        let sample_run = sample_workload.run(self.engine, &sample.graph);
        let sample_observations =
            observations_from_profile(&sample_run.profile, self.config.worker_selection);

        // --- Training observations -------------------------------------------
        let mut training: Vec<IterationObservation> = Vec::new();
        for (i, &train_ratio) in self.config.training_ratios.iter().enumerate() {
            if (train_ratio - self.config.sampling_ratio).abs() < 1e-12 {
                training.extend(sample_observations.iter().copied());
                continue;
            }
            let train_sample = self.sampler.sample(
                graph,
                train_ratio,
                self.config.seed.wrapping_add(1 + i as u64),
            );
            if train_sample.graph.num_vertices() == 0 || train_sample.graph.num_edges() == 0 {
                continue;
            }
            let train_workload =
                transform.apply(workload, train_sample.achieved_ratio.max(f64::MIN_POSITIVE));
            let run = train_workload.run(self.engine, &train_sample.graph);
            training.extend(observations_from_profile(
                &run.profile,
                self.config.worker_selection,
            ));
        }
        // Historical actual runs of the same workload on *other* datasets.
        training.extend(history.observations_for(
            workload.name(),
            Some(dataset_label),
            self.config.worker_selection,
        ));
        if training.is_empty() {
            training = sample_observations.clone();
        }

        let cost_model = CostModel::train(&training, &self.config.cost_model)
            .map_err(PredictError::CostModel)?;

        // --- Extrapolation and per-iteration prediction ----------------------
        let extrapolator = Extrapolator::from_graphs(graph, &sample.graph);
        let extrapolated_features: Vec<FeatureSet> = sample_observations
            .iter()
            .map(|o| {
                extrapolator.extrapolate_with_rule(&o.features, self.config.extrapolation_rule)
            })
            .collect();
        let per_iteration_ms: Vec<f64> = extrapolated_features
            .iter()
            .map(|f| cost_model.predict_iteration_ms(f).max(0.0))
            .collect();
        let predicted_superstep_ms = per_iteration_ms.iter().sum();

        // Graph-level remote message bytes, extrapolated by the edge factor.
        let predicted_remote_message_bytes: f64 = sample_run
            .profile
            .per_superstep_totals()
            .iter()
            .map(|t| t.remote_message_bytes as f64)
            .sum::<f64>()
            * extrapolator.edge_factor;

        Ok(Prediction {
            workload: workload.name().to_string(),
            predicted_iterations: sample_run.iterations(),
            predicted_superstep_ms,
            per_iteration_ms,
            extrapolated_features,
            predicted_remote_message_bytes,
            cost_model,
            extrapolator,
            sample_run_total_ms: sample_run.profile.total_ms(),
            sample_profile: sample_run.profile,
            achieved_sampling_ratio: ratio,
        })
    }

    /// Predicts and then executes the actual run, returning both so the
    /// prediction error can be measured (the protocol behind Figures 4–8 and
    /// Table 3).
    pub fn evaluate(
        &self,
        workload: &dyn Workload,
        graph: &CsrGraph,
        history: &HistoryStore,
        dataset_label: &str,
    ) -> Result<Evaluation, PredictError> {
        let prediction = self.predict(workload, graph, history, dataset_label)?;
        let actual = workload.run(self.engine, graph);
        let actual_remote_message_bytes: f64 = actual
            .profile
            .per_superstep_totals()
            .iter()
            .map(|t| t.remote_message_bytes as f64)
            .sum();
        Ok(Evaluation {
            prediction,
            actual_iterations: actual.iterations(),
            actual_superstep_ms: actual.profile.superstep_phase_ms(),
            actual_total_ms: actual.profile.total_ms(),
            actual_remote_message_bytes,
            actual_profile: actual.profile,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predict_algorithms::{PageRankWorkload, TopKWorkload};
    use predict_bsp::{BspConfig, ClusterCostConfig};
    use predict_graph::generators::{generate_rmat, RmatConfig};
    use predict_sampling::BiasedRandomJump;

    fn engine() -> BspEngine {
        BspEngine::new(BspConfig::with_workers(4).with_cost(ClusterCostConfig::default()))
    }

    fn graph() -> CsrGraph {
        generate_rmat(&RmatConfig::new(11, 8).with_seed(21))
    }

    #[test]
    fn pagerank_prediction_is_reasonably_accurate() {
        let engine = engine();
        let sampler = BiasedRandomJump::default();
        let g = graph();
        let workload = PageRankWorkload::with_epsilon(0.001, g.num_vertices());
        let predictor = Predictor::new(&engine, &sampler, PredictorConfig::default());
        let eval = predictor
            .evaluate(&workload, &g, &HistoryStore::new(), "test")
            .unwrap();

        assert!(eval.prediction.predicted_iterations > 3);
        assert!(
            eval.iteration_error().abs() <= 0.5,
            "iteration error {} too large ({} vs {})",
            eval.iteration_error(),
            eval.prediction.predicted_iterations,
            eval.actual_iterations
        );
        assert!(
            eval.runtime_error().abs() <= 0.6,
            "runtime error {} too large ({} vs {})",
            eval.runtime_error(),
            eval.prediction.predicted_superstep_ms,
            eval.actual_superstep_ms
        );
        assert!(eval.prediction.cost_model.r_squared() > 0.5);
    }

    #[test]
    fn sample_run_is_much_cheaper_than_actual_run() {
        let engine = engine();
        let sampler = BiasedRandomJump::default();
        let g = graph();
        let workload = PageRankWorkload::with_epsilon(0.001, g.num_vertices());
        let predictor = Predictor::new(&engine, &sampler, PredictorConfig::single_ratio(0.1));
        let eval = predictor
            .evaluate(&workload, &g, &HistoryStore::new(), "test")
            .unwrap();
        assert!(
            eval.sample_overhead_ratio() < 0.5,
            "sample run overhead ratio {} should be well below 1",
            eval.sample_overhead_ratio()
        );
    }

    #[test]
    fn history_improves_or_matches_cost_model_fit_on_actual_runs() {
        let engine = engine();
        let sampler = BiasedRandomJump::default();
        let g = graph();
        let workload = TopKWorkload::default();

        // Record an actual run on a *different* dataset in the history store.
        let other = generate_rmat(&RmatConfig::new(10, 6).with_seed(5));
        let other_run = workload.run(&engine, &other);
        let mut history = HistoryStore::new();
        history.record(workload.name(), "other", other_run.profile);

        let predictor = Predictor::new(&engine, &sampler, PredictorConfig::single_ratio(0.1));
        let without = predictor
            .evaluate(&workload, &g, &HistoryStore::new(), "this")
            .unwrap();
        let with = predictor.evaluate(&workload, &g, &history, "this").unwrap();

        // Fit quality on the actual run's own observations: history-trained
        // models have seen full-scale iterations and should not fit worse.
        let actual_obs =
            observations_from_profile(&with.actual_profile, WorkerSelection::SlowestWorker);
        let r2_without = without.prediction.cost_model.r_squared_on(&actual_obs);
        let r2_with = with.prediction.cost_model.r_squared_on(&actual_obs);
        assert!(
            r2_with >= r2_without - 0.05,
            "history should not hurt the fit: {r2_with} vs {r2_without}"
        );
    }

    #[test]
    fn leave_one_out_excludes_the_predicted_dataset() {
        let engine = engine();
        let sampler = BiasedRandomJump::default();
        let g = graph();
        let workload = PageRankWorkload::with_epsilon(0.01, g.num_vertices());
        // History contains only runs on the dataset being predicted: they
        // must be excluded, so predictions match the no-history case exactly.
        let actual = workload.run(&engine, &g);
        let mut history = HistoryStore::new();
        history.record(workload.name(), "this", actual.profile);

        let predictor = Predictor::new(&engine, &sampler, PredictorConfig::single_ratio(0.1));
        let a = predictor
            .predict(&workload, &g, &HistoryStore::new(), "this")
            .unwrap();
        let b = predictor.predict(&workload, &g, &history, "this").unwrap();
        assert_eq!(a.predicted_iterations, b.predicted_iterations);
        assert!((a.predicted_superstep_ms - b.predicted_superstep_ms).abs() < 1e-9);
    }

    #[test]
    fn per_iteration_predictions_align_with_sample_iterations() {
        let engine = engine();
        let sampler = BiasedRandomJump::default();
        let g = graph();
        let workload = PageRankWorkload::with_epsilon(0.01, g.num_vertices());
        let predictor = Predictor::new(&engine, &sampler, PredictorConfig::single_ratio(0.1));
        let p = predictor
            .predict(&workload, &g, &HistoryStore::new(), "x")
            .unwrap();
        assert_eq!(p.per_iteration_ms.len(), p.predicted_iterations);
        assert_eq!(p.extrapolated_features.len(), p.predicted_iterations);
        assert!((p.per_iteration_ms.iter().sum::<f64>() - p.predicted_superstep_ms).abs() < 1e-9);
        assert!(p.extrapolator.vertex_factor > 5.0 && p.extrapolator.vertex_factor < 20.0);
    }

    #[test]
    fn empty_graph_is_rejected() {
        let engine = engine();
        let sampler = BiasedRandomJump::default();
        let g = CsrGraph::from_edges(0, &[]);
        let workload = PageRankWorkload::with_epsilon(0.01, 1);
        let predictor = Predictor::new(&engine, &sampler, PredictorConfig::default());
        let err = predictor
            .predict(&workload, &g, &HistoryStore::new(), "x")
            .unwrap_err();
        assert_eq!(err, PredictError::EmptySample);
    }
}
