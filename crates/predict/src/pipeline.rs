//! Compatibility facade over the stage-decomposed pipeline.
//!
//! The end-to-end PREDIcT methodology (Figure 1 of the paper) now lives in
//! the stage-decomposed [`crate::session`] module: sampling, sample-run
//! execution, cost-model training and extrapolation are first-class cached
//! artifacts of a [`crate::PredictionSession`], and the concurrent
//! [`crate::PredictService`] serves prediction requests on top of them.
//!
//! [`Predictor`] is the legacy one-shot surface kept for callers that
//! predict once and throw everything away. It is deprecated in spirit —
//! prefer [`Predictor::builder`], which produces a session — and is a thin
//! wrapper: it drives the *same* stage functions as a session with a cold
//! cache, so the two paths produce byte-identical predictions for identical
//! inputs (a property the crate's proptest suite pins down).

use crate::error::PredictError;
use crate::history::HistoryStore;
use crate::session::{
    evaluate_stages, predict_stages, Evaluation, Prediction, PredictorBuilder, PredictorConfig,
    StageCtx,
};
use predict_algorithms::Workload;
use predict_bsp::BspEngine;
use predict_graph::CsrGraph;
use predict_sampling::Sampler;

/// The PREDIcT predictor: a BSP engine, a sampling technique and a pipeline
/// configuration, evaluated one prediction at a time without artifact
/// caching.
///
/// This is the legacy facade; new code should build a
/// [`crate::PredictionSession`] via [`Predictor::builder`] so repeated
/// predictions amortize the sample runs.
pub struct Predictor<'a> {
    engine: &'a BspEngine,
    sampler: &'a dyn Sampler,
    config: PredictorConfig,
}

impl<'a> Predictor<'a> {
    /// Creates a one-shot predictor borrowing an engine and a sampler.
    pub fn new(engine: &'a BspEngine, sampler: &'a dyn Sampler, config: PredictorConfig) -> Self {
        Self {
            engine,
            sampler,
            config,
        }
    }

    /// Starts a fluent [`PredictorBuilder`] for the session-based API: bind
    /// a dataset once, then predict many workloads/configurations against it
    /// with sample runs and trained models cached across calls.
    ///
    /// # Examples
    ///
    /// Bind a dataset and predict two workloads; both share the same cached
    /// sampling artifact, and repeating a prediction re-runs nothing:
    ///
    /// ```
    /// use predict_algorithms::{PageRankWorkload, TopKWorkload};
    /// use predict_bsp::{BspConfig, BspEngine, ExecutionMode, StorageMode};
    /// use predict_core::{Predictor, PredictorConfig};
    /// use predict_graph::generators::{generate_rmat, RmatConfig};
    /// use predict_sampling::BiasedRandomJump;
    ///
    /// let graph = generate_rmat(&RmatConfig::new(10, 8).with_seed(7));
    /// let pagerank = PageRankWorkload::with_epsilon(0.01, graph.num_vertices());
    ///
    /// let session = Predictor::builder()
    ///     .engine(BspEngine::new(BspConfig::with_workers(8)))
    ///     .sampler(BiasedRandomJump::default())
    ///     .config(PredictorConfig::single_ratio(0.1))
    ///     // Performance knobs, never result knobs: superstep phases on OS
    ///     // threads, graph stored as one `ShardedCsr` per worker.
    ///     .execution(ExecutionMode::Auto)
    ///     .storage(StorageMode::Sharded)
    ///     .bind(graph, "my-dataset");
    ///
    /// let first = session.predict(&pagerank).unwrap();
    /// session.predict(&TopKWorkload::default()).unwrap();
    /// let runs_after_two_workloads = session.engine().runs_executed();
    ///
    /// // Re-predicting hits the artifact caches: no new engine runs.
    /// let again = session.predict(&pagerank).unwrap();
    /// assert_eq!(first.predicted_superstep_ms, again.predicted_superstep_ms);
    /// assert_eq!(session.engine().runs_executed(), runs_after_two_workloads);
    /// ```
    pub fn builder() -> PredictorBuilder {
        PredictorBuilder::new()
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PredictorConfig {
        &self.config
    }

    /// Predicts the runtime of `workload` on `graph` without executing the
    /// actual run. `history` supplies profiles of prior actual runs;
    /// `dataset_label` identifies the current dataset so its own historical
    /// runs are excluded from training (the paper's leave-one-out protocol).
    ///
    /// Every call re-runs every stage; use a [`crate::PredictionSession`]
    /// when predicting more than once against the same dataset.
    pub fn predict(
        &self,
        workload: &dyn Workload,
        graph: &CsrGraph,
        history: &HistoryStore,
        dataset_label: &str,
    ) -> Result<Prediction, PredictError> {
        let ctx = StageCtx {
            engine: self.engine,
            sampler: self.sampler,
            graph,
            dataset: dataset_label,
            caches: None,
            store: None,
        };
        predict_stages(&ctx, workload, &self.config, history, 0)
    }

    /// Predicts and then executes the actual run, returning both so the
    /// prediction error can be measured (the protocol behind Figures 4–8 and
    /// Table 3).
    pub fn evaluate(
        &self,
        workload: &dyn Workload,
        graph: &CsrGraph,
        history: &HistoryStore,
        dataset_label: &str,
    ) -> Result<Evaluation, PredictError> {
        let ctx = StageCtx {
            engine: self.engine,
            sampler: self.sampler,
            graph,
            dataset: dataset_label,
            caches: None,
            store: None,
        };
        evaluate_stages(&ctx, workload, &self.config, history, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::critical_path::{observations_from_profile, WorkerSelection};
    use predict_algorithms::{PageRankWorkload, TopKWorkload};
    use predict_bsp::{BspConfig, ClusterCostConfig};
    use predict_graph::generators::{generate_rmat, RmatConfig};
    use predict_sampling::BiasedRandomJump;

    fn engine() -> BspEngine {
        BspEngine::new(BspConfig::with_workers(4).with_cost(ClusterCostConfig::default()))
    }

    fn graph() -> CsrGraph {
        generate_rmat(&RmatConfig::new(11, 8).with_seed(21))
    }

    #[test]
    fn pagerank_prediction_is_reasonably_accurate() {
        let engine = engine();
        let sampler = BiasedRandomJump::default();
        let g = graph();
        let workload = PageRankWorkload::with_epsilon(0.001, g.num_vertices());
        let predictor = Predictor::new(&engine, &sampler, PredictorConfig::default());
        let eval = predictor
            .evaluate(&workload, &g, &HistoryStore::new(), "test")
            .unwrap();

        assert!(eval.prediction.predicted_iterations > 3);
        assert!(
            eval.iteration_error().abs() <= 0.5,
            "iteration error {} too large ({} vs {})",
            eval.iteration_error(),
            eval.prediction.predicted_iterations,
            eval.actual_iterations
        );
        assert!(
            eval.runtime_error().abs() <= 0.6,
            "runtime error {} too large ({} vs {})",
            eval.runtime_error(),
            eval.prediction.predicted_superstep_ms,
            eval.actual_superstep_ms
        );
        assert!(eval.prediction.cost_model.r_squared() > 0.5);
    }

    #[test]
    fn sample_run_is_much_cheaper_than_actual_run() {
        let engine = engine();
        let sampler = BiasedRandomJump::default();
        let g = graph();
        let workload = PageRankWorkload::with_epsilon(0.001, g.num_vertices());
        let predictor = Predictor::new(&engine, &sampler, PredictorConfig::single_ratio(0.1));
        let eval = predictor
            .evaluate(&workload, &g, &HistoryStore::new(), "test")
            .unwrap();
        assert!(
            eval.sample_overhead_ratio() < 0.5,
            "sample run overhead ratio {} should be well below 1",
            eval.sample_overhead_ratio()
        );
    }

    #[test]
    fn history_improves_or_matches_cost_model_fit_on_actual_runs() {
        let engine = engine();
        let sampler = BiasedRandomJump::default();
        let g = graph();
        let workload = TopKWorkload::default();

        // Record an actual run on a *different* dataset in the history store.
        let other = generate_rmat(&RmatConfig::new(10, 6).with_seed(5));
        let other_run = workload.run(&engine, &other);
        let mut history = HistoryStore::new();
        history.record(workload.name(), "other", other_run.profile);

        let predictor = Predictor::new(&engine, &sampler, PredictorConfig::single_ratio(0.1));
        let without = predictor
            .evaluate(&workload, &g, &HistoryStore::new(), "this")
            .unwrap();
        let with = predictor.evaluate(&workload, &g, &history, "this").unwrap();

        // Fit quality on the actual run's own observations: history-trained
        // models have seen full-scale iterations and should not fit worse.
        let actual_obs =
            observations_from_profile(&with.actual_profile, WorkerSelection::SlowestWorker);
        let r2_without = without.prediction.cost_model.r_squared_on(&actual_obs);
        let r2_with = with.prediction.cost_model.r_squared_on(&actual_obs);
        assert!(
            r2_with >= r2_without - 0.05,
            "history should not hurt the fit: {r2_with} vs {r2_without}"
        );
    }

    #[test]
    fn leave_one_out_excludes_the_predicted_dataset() {
        let engine = engine();
        let sampler = BiasedRandomJump::default();
        let g = graph();
        let workload = PageRankWorkload::with_epsilon(0.01, g.num_vertices());
        // History contains only runs on the dataset being predicted: they
        // must be excluded, so predictions match the no-history case exactly.
        let actual = workload.run(&engine, &g);
        let mut history = HistoryStore::new();
        history.record(workload.name(), "this", actual.profile);

        let predictor = Predictor::new(&engine, &sampler, PredictorConfig::single_ratio(0.1));
        let a = predictor
            .predict(&workload, &g, &HistoryStore::new(), "this")
            .unwrap();
        let b = predictor.predict(&workload, &g, &history, "this").unwrap();
        assert_eq!(a.predicted_iterations, b.predicted_iterations);
        assert!((a.predicted_superstep_ms - b.predicted_superstep_ms).abs() < 1e-9);
    }

    #[test]
    fn per_iteration_predictions_align_with_sample_iterations() {
        let engine = engine();
        let sampler = BiasedRandomJump::default();
        let g = graph();
        let workload = PageRankWorkload::with_epsilon(0.01, g.num_vertices());
        let predictor = Predictor::new(&engine, &sampler, PredictorConfig::single_ratio(0.1));
        let p = predictor
            .predict(&workload, &g, &HistoryStore::new(), "x")
            .unwrap();
        assert_eq!(p.per_iteration_ms.len(), p.predicted_iterations);
        assert_eq!(p.extrapolated_features.len(), p.predicted_iterations);
        assert!((p.per_iteration_ms.iter().sum::<f64>() - p.predicted_superstep_ms).abs() < 1e-9);
        assert!(p.extrapolator.vertex_factor > 5.0 && p.extrapolator.vertex_factor < 20.0);
    }

    #[test]
    fn empty_graph_is_rejected() {
        let engine = engine();
        let sampler = BiasedRandomJump::default();
        let g = CsrGraph::from_edges(0, &[]);
        let workload = PageRankWorkload::with_epsilon(0.01, 1);
        let predictor = Predictor::new(&engine, &sampler, PredictorConfig::default());
        let err = predictor
            .predict(&workload, &g, &HistoryStore::new(), "x")
            .unwrap_err();
        assert!(err.is_empty_sample(), "unexpected error: {err:?}");
    }
}
