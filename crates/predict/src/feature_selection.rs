//! Sequential forward feature selection.
//!
//! The paper customizes the cost model per algorithm by selecting the key
//! input features that "have a high impact on the response variable and yield
//! a good fitting coefficient", using a sequential forward selection mechanism
//! (section 3.4, citing Hastie et al.). Starting from the empty set, the
//! feature that most improves the fit is added greedily until no remaining
//! feature improves it meaningfully.

use crate::features::{FeatureSet, KeyFeature};
use crate::regression::LinearModel;

/// Configuration of the forward-selection procedure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectionConfig {
    /// Minimum relative reduction of the sum of squared errors a candidate
    /// feature must deliver to be added (guards against adding noise
    /// features).
    pub min_relative_improvement: f64,
    /// Maximum number of features to select (the pool has 7, so this mainly
    /// matters for ablations).
    pub max_features: usize,
    /// Ridge regularization used while evaluating candidate subsets; keeps
    /// the greedy search well-defined when candidate features are collinear
    /// (common for short sample runs where e.g. local and remote byte counts
    /// are proportional).
    pub ridge_lambda: f64,
}

impl Default for SelectionConfig {
    fn default() -> Self {
        Self {
            min_relative_improvement: 0.01,
            max_features: KeyFeature::ALL.len(),
            ridge_lambda: 1e-6,
        }
    }
}

/// Result of the forward-selection procedure.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionResult {
    /// Selected features in the order they were added.
    pub features: Vec<KeyFeature>,
    /// Sum of squared errors of the final subset.
    pub sse: f64,
}

fn rows_for(observations: &[FeatureSet], features: &[KeyFeature]) -> Vec<Vec<f64>> {
    observations.iter().map(|o| o.select(features)).collect()
}

fn sse_for(
    observations: &[FeatureSet],
    targets: &[f64],
    features: &[KeyFeature],
    lambda: f64,
) -> Option<f64> {
    let rows = rows_for(observations, features);
    LinearModel::fit_ridge(&rows, targets, lambda)
        .ok()
        .map(|m| m.sse_on(&rows, targets))
}

/// Greedily selects the feature subset that best explains `targets`.
///
/// `candidates` is the pool to choose from (typically [`KeyFeature::ALL`]).
/// Returns at least one feature whenever the inputs are non-empty and some
/// candidate produces a fittable model.
pub fn forward_select(
    observations: &[FeatureSet],
    targets: &[f64],
    candidates: &[KeyFeature],
    config: &SelectionConfig,
) -> SelectionResult {
    let mut selected: Vec<KeyFeature> = Vec::new();
    if observations.is_empty() || targets.is_empty() {
        return SelectionResult {
            features: selected,
            sse: 0.0,
        };
    }

    // Baseline: intercept-only model (predict the mean).
    let mean = targets.iter().sum::<f64>() / targets.len() as f64;
    let mut current_sse: f64 = targets.iter().map(|t| (t - mean).powi(2)).sum();

    let mut remaining: Vec<KeyFeature> = candidates.to_vec();
    while selected.len() < config.max_features && !remaining.is_empty() {
        let mut best: Option<(usize, f64)> = None;
        for (idx, &candidate) in remaining.iter().enumerate() {
            let mut trial = selected.clone();
            trial.push(candidate);
            if let Some(sse) = sse_for(observations, targets, &trial, config.ridge_lambda) {
                if best.map(|(_, b)| sse < b).unwrap_or(true) {
                    best = Some((idx, sse));
                }
            }
        }
        let Some((idx, sse)) = best else { break };
        let improvement = if current_sse <= f64::EPSILON {
            0.0
        } else {
            (current_sse - sse) / current_sse
        };
        // Always accept the first feature (a model with no features cannot
        // predict anything useful); afterwards require a real improvement.
        if !selected.is_empty() && improvement < config.min_relative_improvement {
            break;
        }
        selected.push(remaining.remove(idx));
        current_sse = sse;
    }

    SelectionResult {
        features: selected,
        sse: current_sse,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predict_bsp::WorkerCounters;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Builds observations whose runtime depends only on remote message bytes
    /// (plus noise), with other features either constant or uncorrelated.
    fn byte_dominated_observations(n: usize, seed: u64) -> (Vec<FeatureSet>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut observations = Vec::new();
        let mut targets = Vec::new();
        for _ in 0..n {
            let remote_bytes = rng.gen_range(1_000u64..100_000);
            let active = rng.gen_range(10u64..1000);
            let counters = WorkerCounters {
                active_vertices: active,
                total_vertices: 1000,
                local_messages: rng.gen_range(1..50),
                remote_messages: remote_bytes / 100,
                local_message_bytes: rng.gen_range(100..1000),
                remote_message_bytes: remote_bytes,
            };
            observations.push(FeatureSet::from_counters(&counters));
            let noise: f64 = rng.gen_range(-2.0..2.0);
            targets.push(20.0 + 0.002 * remote_bytes as f64 + noise);
        }
        (observations, targets)
    }

    #[test]
    fn selects_the_dominant_feature_first() {
        let (obs, targets) = byte_dominated_observations(200, 3);
        let result = forward_select(
            &obs,
            &targets,
            &KeyFeature::ALL,
            &SelectionConfig::default(),
        );
        assert!(!result.features.is_empty());
        // RemoteMessageBytes or the perfectly-correlated RemoteMessages must
        // be the first pick; anything else would mean the selection missed
        // the dominant cost driver.
        assert!(
            matches!(
                result.features[0],
                KeyFeature::RemoteMessageBytes | KeyFeature::RemoteMessages
            ),
            "first selected feature was {:?}",
            result.features[0]
        );
    }

    #[test]
    fn does_not_select_every_feature_when_one_suffices() {
        let (obs, targets) = byte_dominated_observations(200, 5);
        let result = forward_select(
            &obs,
            &targets,
            &KeyFeature::ALL,
            &SelectionConfig::default(),
        );
        assert!(
            result.features.len() < KeyFeature::ALL.len(),
            "selected all {} features",
            result.features.len()
        );
    }

    #[test]
    fn respects_the_feature_cap() {
        let (obs, targets) = byte_dominated_observations(100, 7);
        let config = SelectionConfig {
            max_features: 1,
            ..Default::default()
        };
        let result = forward_select(&obs, &targets, &KeyFeature::ALL, &config);
        assert_eq!(result.features.len(), 1);
    }

    #[test]
    fn empty_inputs_select_nothing() {
        let result = forward_select(&[], &[], &KeyFeature::ALL, &SelectionConfig::default());
        assert!(result.features.is_empty());
    }

    #[test]
    fn restricted_candidate_pool_is_honoured() {
        let (obs, targets) = byte_dominated_observations(100, 9);
        let pool = [KeyFeature::ActiveVertices, KeyFeature::LocalMessages];
        let result = forward_select(&obs, &targets, &pool, &SelectionConfig::default());
        for f in &result.features {
            assert!(pool.contains(f));
        }
    }
}
