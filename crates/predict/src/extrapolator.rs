//! Feature extrapolation (section 3.4 of the paper).
//!
//! Key input features profiled during the sample run are scaled up to the
//! complete dataset using two factors: the vertex ratio
//! `e_V = |V_G| / |V_S|` for features that depend primarily on the number of
//! vertices (active/total vertices) and the edge ratio `e_E = |E_G| / |E_S|`
//! for features that depend on the number of edges (message counts and byte
//! counts). The average message size and the number of iterations are not
//! extrapolated. Extrapolation is performed at the granularity of iterations:
//! iteration `i` of the sample run predicts iteration `i` of the actual run.

use crate::features::{ExtrapolationKind, FeatureSet, IterationObservation, KeyFeature};
use predict_graph::CsrGraph;
use serde::{Deserialize, Serialize};

/// The two scaling factors of the paper's extrapolator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Extrapolator {
    /// Vertex scaling factor `e_V = |V_G| / |V_S|`.
    pub vertex_factor: f64,
    /// Edge scaling factor `e_E = |E_G| / |E_S|`.
    pub edge_factor: f64,
}

/// Ablation variants of the extrapolation rule: the paper's per-feature
/// choice versus scaling everything by one factor (compared by the
/// `ablation_extrapolation` experiment binary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExtrapolationRule {
    /// Table 1's per-feature rule: vertices by `e_V`, messages by `e_E`
    /// (the paper's design).
    PerFeature,
    /// Scale every extrapolated feature by the vertex factor only.
    VerticesOnly,
    /// Scale every extrapolated feature by the edge factor only.
    EdgesOnly,
}

impl Extrapolator {
    /// Creates an extrapolator from explicit factors.
    ///
    /// # Panics
    ///
    /// Panics if either factor is not strictly positive.
    pub fn new(vertex_factor: f64, edge_factor: f64) -> Self {
        assert!(
            vertex_factor > 0.0 && edge_factor > 0.0,
            "extrapolation factors must be positive: e_V={vertex_factor}, e_E={edge_factor}"
        );
        Self {
            vertex_factor,
            edge_factor,
        }
    }

    /// Computes the factors from the full graph and the sample graph.
    ///
    /// # Panics
    ///
    /// Panics if the sample graph is empty.
    pub fn from_graphs(full: &CsrGraph, sample: &CsrGraph) -> Self {
        assert!(
            sample.num_vertices() > 0 && sample.num_edges() > 0,
            "sample graph must have vertices and edges"
        );
        Self::new(
            full.num_vertices() as f64 / sample.num_vertices() as f64,
            full.num_edges() as f64 / sample.num_edges() as f64,
        )
    }

    /// Computes the factors from raw counts.
    pub fn from_counts(
        full_vertices: usize,
        full_edges: usize,
        sample_vertices: usize,
        sample_edges: usize,
    ) -> Self {
        assert!(
            sample_vertices > 0 && sample_edges > 0,
            "sample counts must be positive"
        );
        Self::new(
            full_vertices as f64 / sample_vertices as f64,
            full_edges as f64 / sample_edges as f64,
        )
    }

    /// Scaling factor applied to one feature under the given rule.
    pub fn factor_for(&self, feature: KeyFeature, rule: ExtrapolationRule) -> f64 {
        match feature.extrapolation() {
            ExtrapolationKind::None => 1.0,
            ExtrapolationKind::Vertices | ExtrapolationKind::Edges => match rule {
                ExtrapolationRule::PerFeature => match feature.extrapolation() {
                    ExtrapolationKind::Vertices => self.vertex_factor,
                    ExtrapolationKind::Edges => self.edge_factor,
                    ExtrapolationKind::None => 1.0,
                },
                ExtrapolationRule::VerticesOnly => self.vertex_factor,
                ExtrapolationRule::EdgesOnly => self.edge_factor,
            },
        }
    }

    /// Extrapolates one iteration's features with the paper's per-feature
    /// rule.
    pub fn extrapolate(&self, features: &FeatureSet) -> FeatureSet {
        self.extrapolate_with_rule(features, ExtrapolationRule::PerFeature)
    }

    /// Extrapolates one iteration's features with an explicit rule (used by
    /// the ablation benchmark).
    pub fn extrapolate_with_rule(
        &self,
        features: &FeatureSet,
        rule: ExtrapolationRule,
    ) -> FeatureSet {
        let mut out = *features;
        for f in KeyFeature::ALL {
            out.set(f, features.get(f) * self.factor_for(f, rule));
        }
        out
    }

    /// Extrapolates a whole sample run, iteration by iteration.
    pub fn extrapolate_observations(
        &self,
        observations: &[IterationObservation],
    ) -> Vec<FeatureSet> {
        observations
            .iter()
            .map(|o| self.extrapolate(&o.features))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predict_bsp::WorkerCounters;
    use predict_graph::generators::{generate_rmat, RmatConfig};
    use predict_graph::induced_subgraph;

    fn features() -> FeatureSet {
        FeatureSet::from_counters(&WorkerCounters {
            active_vertices: 100,
            total_vertices: 200,
            local_messages: 50,
            remote_messages: 150,
            local_message_bytes: 400,
            remote_message_bytes: 1200,
        })
    }

    #[test]
    fn per_feature_rule_scales_vertices_and_edges_differently() {
        let e = Extrapolator::new(10.0, 20.0);
        let out = e.extrapolate(&features());
        assert_eq!(out.get(KeyFeature::ActiveVertices), 1_000.0);
        assert_eq!(out.get(KeyFeature::TotalVertices), 2_000.0);
        assert_eq!(out.get(KeyFeature::LocalMessages), 1_000.0);
        assert_eq!(out.get(KeyFeature::RemoteMessages), 3_000.0);
        assert_eq!(out.get(KeyFeature::LocalMessageBytes), 8_000.0);
        assert_eq!(out.get(KeyFeature::RemoteMessageBytes), 24_000.0);
        // AvgMsgSize is not extrapolated.
        assert_eq!(
            out.get(KeyFeature::AvgMessageSize),
            features().get(KeyFeature::AvgMessageSize)
        );
    }

    #[test]
    fn ablation_rules_use_a_single_factor() {
        let e = Extrapolator::new(10.0, 20.0);
        let v_only = e.extrapolate_with_rule(&features(), ExtrapolationRule::VerticesOnly);
        assert_eq!(v_only.get(KeyFeature::RemoteMessages), 1_500.0);
        let e_only = e.extrapolate_with_rule(&features(), ExtrapolationRule::EdgesOnly);
        assert_eq!(e_only.get(KeyFeature::ActiveVertices), 2_000.0);
        // AvgMsgSize still untouched under both rules.
        assert_eq!(
            v_only.get(KeyFeature::AvgMessageSize),
            features().get(KeyFeature::AvgMessageSize)
        );
        assert_eq!(
            e_only.get(KeyFeature::AvgMessageSize),
            features().get(KeyFeature::AvgMessageSize)
        );
    }

    #[test]
    fn identity_factors_leave_features_unchanged() {
        let e = Extrapolator::new(1.0, 1.0);
        assert_eq!(e.extrapolate(&features()), features());
    }

    #[test]
    fn factors_from_graphs_match_counts() {
        let g = generate_rmat(&RmatConfig::new(9, 6).with_seed(3));
        let selected: Vec<_> = g.vertices().filter(|v| v % 4 == 0).collect();
        let (sample, _) = induced_subgraph(&g, &selected);
        let e = Extrapolator::from_graphs(&g, &sample);
        assert!(
            (e.vertex_factor - g.num_vertices() as f64 / sample.num_vertices() as f64).abs()
                < 1e-12
        );
        assert!((e.edge_factor - g.num_edges() as f64 / sample.num_edges() as f64).abs() < 1e-12);
        assert!((e.vertex_factor - 4.0).abs() < 0.01);
    }

    #[test]
    fn extrapolation_is_exact_for_a_perfectly_proportional_sample() {
        // If the sample's per-iteration features are exactly 1/k of the full
        // run's, extrapolation by k recovers the full run's features. This is
        // the idealized invariant behind the paper's section 4.1 example.
        let full = features();
        let k = 8.0;
        let mut sample = FeatureSet::default();
        for f in KeyFeature::ALL {
            let scaled = match f.extrapolation() {
                ExtrapolationKind::None => full.get(f),
                _ => full.get(f) / k,
            };
            sample.set(f, scaled);
        }
        let e = Extrapolator::new(k, k);
        let recovered = e.extrapolate(&sample);
        for f in KeyFeature::ALL {
            assert!((recovered.get(f) - full.get(f)).abs() < 1e-9, "{:?}", f);
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_factor_panics() {
        let _ = Extrapolator::new(0.0, 1.0);
    }
}
