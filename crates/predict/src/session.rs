//! Stage-decomposed prediction sessions.
//!
//! The paper's deployment scenario is a *service*: schedulers doing SLA
//! feasibility and capacity planning ask for many predictions against the
//! same dataset — different workloads, thresholds and sweep configurations.
//! A [`PredictionSession`] binds one dataset (graph + label) to an engine and
//! a sampling technique once, then answers any number of predictions while
//! caching the expensive stage artifacts:
//!
//! * sampling-stage [`SampleArtifact`]s keyed by `(sampler, ratio, seed)` —
//!   shared by *every* workload predicted through the session;
//! * sample-run [`SampleRunArtifact`]s keyed by `(sample, workload,
//!   transform)` — each `(ratio, seed)` sample run of a workload executes
//!   exactly once, no matter how many predictions reuse it;
//! * [`TrainedModel`]s keyed by `(workload, config fingerprint, history
//!   version)`;
//! * actual-run profiles keyed by workload, for [`PredictionSession::evaluate`].
//!
//! Sessions are `Sync`: all caches sit behind locks, the engine and sampler
//! are shared via [`Arc`], and every stage is deterministic, so concurrent
//! predictions return byte-identical results to sequential ones. Sessions
//! are built fluently via [`crate::Predictor::builder`]:
//!
//! ```
//! use predict_core::{Predictor, PredictorConfig};
//! use predict_algorithms::PageRankWorkload;
//! use predict_graph::generators::{generate_rmat, RmatConfig};
//! use predict_sampling::BiasedRandomJump;
//!
//! let graph = generate_rmat(&RmatConfig::new(10, 8).with_seed(7));
//! let workload = PageRankWorkload::with_epsilon(0.01, graph.num_vertices());
//! let session = Predictor::builder()
//!     .sampler(BiasedRandomJump::default())
//!     .config(PredictorConfig::single_ratio(0.1))
//!     .bind(graph, "quickstart");
//! let prediction = session.predict(&workload).unwrap();
//! assert!(prediction.predicted_iterations > 0);
//! // A second prediction reuses the cached sample run and model.
//! let again = session.predict(&workload).unwrap();
//! assert_eq!(prediction.predicted_superstep_ms, again.predicted_superstep_ms);
//! ```

use crate::artifacts::{
    stable_fingerprint, ModelKey, RunKey, SampleArtifact, SampleKey, SampleRunArtifact,
    StorageCache, TrainedModel, TrainingProvenance, TrainingSource,
};
use crate::cost_model::{CostModel, CostModelConfig};
use crate::critical_path::WorkerSelection;
use crate::error::PredictError;
use crate::extrapolator::{ExtrapolationRule, Extrapolator};
use crate::features::{FeatureSet, IterationObservation};
use crate::history::HistoryStore;
use crate::metrics::signed_relative_error;
use crate::transform::TransformFunction;
use predict_algorithms::{Workload, WorkloadRun};
use predict_bsp::{BspEngine, ExecutionMode, RunProfile, StorageMode, TransportMode};
use predict_graph::CsrGraph;
use predict_obs::diag;
use predict_sampling::{BiasedRandomJump, Sampler, ScratchPool};
use predict_store::{ArtifactKind, ArtifactStore};
use serde::Serialize;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Configuration of the prediction pipeline.
#[derive(Debug, Clone)]
pub struct PredictorConfig {
    /// Sampling ratio of the sample run whose per-iteration features are
    /// extrapolated (the paper's headline setting is 0.1).
    pub sampling_ratio: f64,
    /// Sampling ratios of the additional sample runs used to train the cost
    /// model (section 5.2 trains on 0.05, 0.1, 0.15 and 0.2).
    pub training_ratios: Vec<f64>,
    /// Seed driving the sampler and any other randomized choice.
    pub seed: u64,
    /// Which worker represents an iteration when extracting features.
    pub worker_selection: WorkerSelection,
    /// Cost model training configuration.
    pub cost_model: CostModelConfig,
    /// Transform function override; `None` uses the paper's default rule for
    /// the workload's convergence kind.
    pub transform: Option<TransformFunction>,
    /// Extrapolation rule (the paper's per-feature rule by default; the other
    /// variants exist for the ablation benchmarks).
    pub extrapolation_rule: ExtrapolationRule,
    /// When `true`, training falls through to
    /// [`PredictError::InsufficientTraining`] instead of silently fitting the
    /// cost model on the extrapolation sample run alone (the case marked by
    /// [`TrainingSource::ExtrapolationSampleOnly`] in the model provenance).
    pub strict_training: bool,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        Self {
            sampling_ratio: 0.1,
            training_ratios: vec![0.05, 0.1, 0.15, 0.2],
            seed: 0x9d1c,
            worker_selection: WorkerSelection::SlowestWorker,
            cost_model: CostModelConfig::default(),
            transform: None,
            extrapolation_rule: ExtrapolationRule::PerFeature,
            strict_training: false,
        }
    }
}

impl PredictorConfig {
    /// Convenience constructor: predict from a sample run at `ratio`, train
    /// the cost model only on that same run (no extra training ratios).
    pub fn single_ratio(ratio: f64) -> Self {
        Self {
            sampling_ratio: ratio,
            training_ratios: vec![ratio],
            ..Self::default()
        }
    }

    /// Replaces the sampling ratio used for extrapolation, keeping the
    /// training ratios.
    pub fn with_sampling_ratio(mut self, ratio: f64) -> Self {
        self.sampling_ratio = ratio;
        self
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables or disables strict training (see
    /// [`PredictorConfig::strict_training`]).
    pub fn with_strict_training(mut self, strict: bool) -> Self {
        self.strict_training = strict;
        self
    }

    /// Checks the configuration for values that would previously have caused
    /// panics deep inside stage code (non-finite ratios reaching the
    /// transform function's assertions).
    pub fn validate(&self) -> Result<(), PredictError> {
        if !self.sampling_ratio.is_finite() || self.sampling_ratio <= 0.0 {
            return Err(PredictError::InvalidConfig(format!(
                "sampling ratio must be finite and positive, got {}",
                self.sampling_ratio
            )));
        }
        for &r in &self.training_ratios {
            if !r.is_finite() || r <= 0.0 {
                return Err(PredictError::InvalidConfig(format!(
                    "training ratios must be finite and positive, got {r}"
                )));
            }
        }
        Ok(())
    }

    /// A stable fingerprint of every field that influences a prediction,
    /// used (together with the workload token and history version) to key
    /// cached [`TrainedModel`]s. Two configs with equal fingerprints train
    /// identical models on identical sessions.
    pub fn fingerprint(&self) -> u64 {
        // The Debug rendering covers every field exactly (f64 Debug prints
        // the shortest round-trip representation).
        stable_fingerprint(&format!("{self:?}"))
    }
}

/// The output of the prediction pipeline for one workload on one dataset.
#[derive(Debug, Clone, Serialize)]
pub struct Prediction {
    /// Workload name.
    pub workload: String,
    /// Predicted number of iterations (= iterations of the sample run, which
    /// the transform function strives to preserve).
    pub predicted_iterations: usize,
    /// Predicted runtime of the superstep phase in simulated milliseconds.
    pub predicted_superstep_ms: f64,
    /// Per-iteration runtime predictions, aligned with the sample run's
    /// iterations.
    pub per_iteration_ms: Vec<f64>,
    /// Extrapolated per-iteration features that were fed to the cost model.
    pub extrapolated_features: Vec<FeatureSet>,
    /// Predicted graph-level total of remote message bytes over the whole run
    /// (the key input feature evaluated in Figure 6, bottom).
    pub predicted_remote_message_bytes: f64,
    /// The trained cost model.
    pub cost_model: CostModel,
    /// Provenance of the cost model's training set (which sources fed it,
    /// including the sample-only fallback marker).
    pub training: TrainingProvenance,
    /// The extrapolation factors that were applied.
    pub extrapolator: Extrapolator,
    /// Profile of the sample run the prediction extrapolates from.
    pub sample_profile: RunProfile,
    /// Ratio that the sampler actually achieved.
    pub achieved_sampling_ratio: f64,
    /// Simulated end-to-end runtime of the sample run (used for the Table 3
    /// overhead analysis).
    pub sample_run_total_ms: f64,
}

/// A prediction compared against the measured actual run.
#[derive(Debug, Clone, Serialize)]
pub struct Evaluation {
    /// The prediction under evaluation.
    pub prediction: Prediction,
    /// Iterations of the actual run.
    pub actual_iterations: usize,
    /// Measured superstep-phase runtime of the actual run.
    pub actual_superstep_ms: f64,
    /// Measured end-to-end runtime of the actual run.
    pub actual_total_ms: f64,
    /// Measured graph-level total of remote message bytes of the actual run.
    pub actual_remote_message_bytes: f64,
    /// Profile of the actual run.
    pub actual_profile: RunProfile,
}

impl Evaluation {
    /// Signed relative error of the iteration prediction (Figures 4–6).
    pub fn iteration_error(&self) -> f64 {
        signed_relative_error(
            self.prediction.predicted_iterations as f64,
            self.actual_iterations as f64,
        )
    }

    /// Signed relative error of the runtime prediction (Figures 7–8).
    pub fn runtime_error(&self) -> f64 {
        signed_relative_error(
            self.prediction.predicted_superstep_ms,
            self.actual_superstep_ms,
        )
    }

    /// Signed relative error of the remote-message-bytes prediction
    /// (Figure 6, bottom).
    pub fn remote_bytes_error(&self) -> f64 {
        signed_relative_error(
            self.prediction.predicted_remote_message_bytes,
            self.actual_remote_message_bytes,
        )
    }

    /// Ratio of the sample run's end-to-end runtime to the actual run's
    /// (Table 3's overhead analysis). Returns `f64::NAN` when the actual run
    /// measured zero milliseconds — a zero-cost actual run must not be
    /// reported as a free sample run.
    pub fn sample_overhead_ratio(&self) -> f64 {
        if self.actual_total_ms == 0.0 {
            f64::NAN
        } else {
            self.prediction.sample_run_total_ms / self.actual_total_ms
        }
    }
}

// ---------------------------------------------------------------------------
// Shared stage orchestration.
//
// Both the cached `PredictionSession` and the legacy one-shot
// `crate::Predictor` facade run predictions through these functions, so the
// two paths cannot diverge: a session with a cold cache performs exactly the
// same engine and sampler invocations, in the same order, as the facade.

/// Cached stage artifacts of one session. All maps are keyed by exact stage
/// inputs; values are `Arc`s so cache hits are O(1) clones.
#[derive(Default)]
pub(crate) struct ArtifactCaches {
    samples: Mutex<HashMap<SampleKey, Arc<SampleArtifact>>>,
    runs: Mutex<HashMap<RunKey, Arc<SampleRunArtifact>>>,
    models: Mutex<HashMap<ModelKey, Arc<TrainedModel>>>,
    actuals: Mutex<HashMap<String, Arc<WorkloadRun>>>,
    /// Reusable sampler working memory (visited bitset + walk buffers),
    /// pooled so concurrent draws each check out their own scratch instead
    /// of either serializing on one lock or silently falling back to a
    /// throwaway allocation per draw (the bug the old `try_lock` fallback
    /// hid). Scratch state never influences the drawn sample.
    scratch: ScratchPool,
    /// Cached sharded storage of the session's *full* graph, so repeated
    /// actual runs under sharded storage pay shard construction once — the
    /// full-graph counterpart of `SampleArtifact`'s per-sample cache.
    storage: StorageCache,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ArtifactCaches {
    fn record(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A session's handle on the persistent artifact store: the shared
/// [`ArtifactStore`] plus the provenance hash binding this session's
/// dataset to its stored artifacts (see [`dataset_provenance`]).
///
/// The store sits *behind* the in-memory caches: a stage consults memory
/// first, then the store, then computes — and every computed artifact is
/// written through so a restarted process finds it warm. Store I/O errors
/// degrade to recomputation with a [`diag!`] warning; they never fail a
/// prediction.
pub(crate) struct StoreBinding {
    store: Arc<ArtifactStore>,
    /// Dataset label, prefixed onto every store key. Stage keys identify an
    /// artifact only *within* one dataset (a `SampleKey` is `(sampler,
    /// ratio, seed)`, an actual run is keyed by its workload token); the
    /// sessions of different datasets would otherwise publish to the same
    /// file and invalidate each other on every pass via the provenance
    /// check.
    dataset: String,
    provenance: u64,
    /// Artifacts served from disk rather than recomputed — surfaced as
    /// [`SessionStats::store_hits`], deliberately separate from the
    /// in-memory `hits` counter so a load driver's hit-rate is honest about
    /// *which* tier answered.
    hits: AtomicU64,
}

impl StoreBinding {
    pub(crate) fn new(store: Arc<ArtifactStore>, dataset: &str, graph: &CsrGraph) -> Self {
        Self {
            provenance: dataset_provenance(dataset, graph),
            dataset: dataset.to_string(),
            store,
            hits: AtomicU64::new(0),
        }
    }

    /// The shared store this binding writes through to.
    pub(crate) fn store(&self) -> &Arc<ArtifactStore> {
        &self.store
    }

    /// Artifacts this session has served from disk.
    pub(crate) fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// The full store key of a stage key: namespaced by dataset label.
    fn full_key(&self, key: &str) -> String {
        format!("{}|{key}", self.dataset)
    }

    fn load<T: serde::Deserialize>(&self, kind: ArtifactKind, key: &str) -> Option<T> {
        let loaded = self
            .store
            .get_typed::<T>(kind, &self.full_key(key), self.provenance);
        if loaded.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        loaded
    }

    fn save<T: Serialize>(&self, kind: ArtifactKind, key: &str, artifact: &T) {
        let key = self.full_key(key);
        if let Err(err) = self.store.put(kind, &key, self.provenance, artifact) {
            diag!(
                Warn,
                "store: failed to persist {} artifact `{key}` ({err}); continuing in memory",
                kind.name()
            );
        }
    }
}

/// Provenance hash binding stored artifacts to the dataset they were
/// computed from: the label plus the full out-adjacency structure of the
/// graph. A relabeled or regenerated dataset therefore invalidates every
/// stored artifact (stale miss → recompute) instead of silently serving
/// artifacts of the wrong graph. O(V + E), computed once per store-bound
/// session.
fn dataset_provenance(dataset: &str, graph: &CsrGraph) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = crate::artifacts::Fnv1a::new();
    dataset.hash(&mut hasher);
    graph.num_vertices().hash(&mut hasher);
    graph.num_edges().hash(&mut hasher);
    graph.is_weighted().hash(&mut hasher);
    for v in graph.vertices() {
        graph.out_neighbors(v).hash(&mut hasher);
    }
    hasher.finish()
}

/// Acquires a cache mutex, recovering the guard if a previous holder
/// panicked. Cache maps stay internally consistent under panic (inserts are
/// single `entry().or_insert` calls; a torn value is never published), and a
/// worker panic is already reported per-request by the service — letting
/// the poison flag wedge every later prediction would turn one failed
/// request into a permanently dead session.
fn cache_lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Borrowed inputs of one prediction: the execution substrate plus an
/// optional artifact cache (`None` = the uncached legacy path).
pub(crate) struct StageCtx<'a> {
    pub engine: &'a BspEngine,
    pub sampler: &'a dyn Sampler,
    pub graph: &'a CsrGraph,
    pub dataset: &'a str,
    pub caches: Option<&'a ArtifactCaches>,
    /// Persistent artifact store, consulted between the in-memory cache and
    /// recomputation (`None` = memory-only, the historical behavior).
    pub store: Option<&'a StoreBinding>,
}

/// Stage 1: draw (or reuse) the sample for `(ratio, seed)`.
fn stage_sample(
    ctx: &StageCtx<'_>,
    ratio: f64,
    seed: u64,
) -> Result<Arc<SampleArtifact>, PredictError> {
    let _span = predict_obs::trace::span("predict.stage.sample").arg("ratio", ratio);
    let _timer = predict_obs::metrics::time_scope("predict.stage.sample_ns");
    let key = SampleKey::new(ctx.sampler.name(), ratio, seed);
    if let Some(caches) = ctx.caches {
        if let Some(hit) = cache_lock(&caches.samples).get(&key) {
            caches.record(true);
            return Ok(Arc::clone(hit));
        }
        caches.record(false);
        // Memory miss: a store-backed session may still have the artifact
        // on disk from a previous process.
        if let Some(store) = ctx.store {
            if let Some(artifact) =
                store.load::<SampleArtifact>(ArtifactKind::Sample, &key.store_key())
            {
                let artifact = Arc::new(artifact);
                return Ok(Arc::clone(
                    cache_lock(&caches.samples).entry(key).or_insert(artifact),
                ));
            }
        }
    }
    let artifact = match ctx.caches {
        Some(caches) => {
            // Each concurrent draw checks out its own pooled scratch; once
            // the pool is warm (peak concurrency reached) no draw allocates.
            let mut scratch = caches.scratch.acquire();
            Arc::new(SampleArtifact::draw_with(
                ctx.sampler,
                ctx.graph,
                ratio,
                seed,
                &mut scratch,
            )?)
        }
        None => Arc::new(SampleArtifact::draw(ctx.sampler, ctx.graph, ratio, seed)?),
    };
    if let Some(store) = ctx.store {
        store.save(ArtifactKind::Sample, &key.store_key(), artifact.as_ref());
    }
    if let Some(caches) = ctx.caches {
        // Concurrent misses may race here; both computed the same
        // deterministic artifact, so keeping the first insert is fine.
        return Ok(Arc::clone(
            cache_lock(&caches.samples).entry(key).or_insert(artifact),
        ));
    }
    Ok(artifact)
}

/// Stage 2: execute (or reuse) the transformed sample run of `workload` on
/// `sample`.
fn stage_run(
    ctx: &StageCtx<'_>,
    workload: &dyn Workload,
    transform: TransformFunction,
    sample: &SampleArtifact,
) -> Arc<SampleRunArtifact> {
    let _span =
        predict_obs::trace::span("predict.stage.sample_run").arg("workload", workload.name());
    let _timer = predict_obs::metrics::time_scope("predict.stage.sample_run_ns");
    let key = RunKey::new(&sample.key, workload, transform);
    if let Some(caches) = ctx.caches {
        if let Some(hit) = cache_lock(&caches.runs).get(&key) {
            caches.record(true);
            return Arc::clone(hit);
        }
        caches.record(false);
        if let Some(store) = ctx.store {
            if let Some(artifact) =
                store.load::<SampleRunArtifact>(ArtifactKind::SampleRun, &key.store_key())
            {
                let artifact = Arc::new(artifact);
                return Arc::clone(cache_lock(&caches.runs).entry(key).or_insert(artifact));
            }
        }
    }
    let artifact = Arc::new(SampleRunArtifact::execute(
        ctx.engine, workload, transform, sample,
    ));
    if let Some(store) = ctx.store {
        store.save(ArtifactKind::SampleRun, &key.store_key(), artifact.as_ref());
    }
    if let Some(caches) = ctx.caches {
        return Arc::clone(cache_lock(&caches.runs).entry(key).or_insert(artifact));
    }
    artifact
}

/// Stage 3: assemble the training set and train (or reuse) the cost model.
///
/// `sample_observations` are the per-iteration observations of the
/// `(sampling_ratio, seed)` extrapolation run under the configured worker
/// selection (the caller has them anyway for extrapolation): training ratios
/// equal to the sampling ratio reuse them instead of re-running, and they
/// are the fallback training source when every training ratio yields an
/// empty sample and no history exists.
#[allow(clippy::too_many_arguments)]
fn stage_model(
    ctx: &StageCtx<'_>,
    workload: &dyn Workload,
    config: &PredictorConfig,
    transform: TransformFunction,
    sample_observations: &[IterationObservation],
    history: &HistoryStore,
    history_version: u64,
) -> Result<Arc<TrainedModel>, PredictError> {
    let _span = predict_obs::trace::span("predict.stage.train").arg("workload", workload.name());
    let _timer = predict_obs::metrics::time_scope("predict.stage.train_ns");
    let key = ModelKey {
        workload: workload.cache_token(),
        config_fingerprint: config.fingerprint(),
        history_version,
    };
    // The persistent key additionally carries the sampler: a model is
    // trained on *this sampler's* sample runs, which `ModelKey` never had
    // to say because an in-memory cache lives inside one single-sampler
    // session, while the store is shared by every session of a process.
    let store_key = format!("{}|{}", ctx.sampler.name(), key.store_key());
    if let Some(caches) = ctx.caches {
        if let Some(hit) = cache_lock(&caches.models).get(&key) {
            caches.record(true);
            return Ok(Arc::clone(hit));
        }
        caches.record(false);
        // A store-hit model skips the whole training-set assembly below —
        // including the training-ratio sample runs — which is what lets a
        // warm restart answer with zero engine executions.
        if let Some(store) = ctx.store {
            if let Some(model) = store.load::<TrainedModel>(ArtifactKind::Model, &store_key) {
                let model = Arc::new(model);
                return Ok(Arc::clone(
                    cache_lock(&caches.models).entry(key).or_insert(model),
                ));
            }
        }
    }

    let mut training: Vec<IterationObservation> = Vec::new();
    for (i, &train_ratio) in config.training_ratios.iter().enumerate() {
        if (train_ratio - config.sampling_ratio).abs() < 1e-12 {
            training.extend(sample_observations.iter().copied());
            continue;
        }
        let seed = config.seed.wrapping_add(1 + i as u64);
        let train_sample = match stage_sample(ctx, train_ratio, seed) {
            Ok(s) => s,
            // An empty training sample is skipped, exactly as the paper's
            // protocol drops ratios too small for the dataset.
            Err(e) if e.is_empty_sample() => continue,
            Err(e) => return Err(e),
        };
        let train_run = stage_run(ctx, workload, transform, &train_sample);
        training.extend(train_run.observations(config.worker_selection));
    }
    let sample_rows = training.len();
    // Historical actual runs of the same workload on *other* datasets.
    let history_observations =
        history.observations_for(workload.name(), Some(ctx.dataset), config.worker_selection);
    let history_rows = history_observations.len();
    training.extend(history_observations);

    let source = if training.is_empty() {
        if config.strict_training {
            return Err(PredictError::InsufficientTraining {
                workload: workload.name().to_string(),
                dataset: ctx.dataset.to_string(),
            });
        }
        training = sample_observations.to_vec();
        TrainingSource::ExtrapolationSampleOnly
    } else if history_rows > 0 {
        TrainingSource::SampleRunsWithHistory
    } else {
        TrainingSource::SampleRuns
    };

    let cost_model =
        CostModel::train(&training, &config.cost_model).map_err(PredictError::CostModel)?;
    let model = Arc::new(TrainedModel {
        cost_model,
        provenance: TrainingProvenance {
            source,
            sample_observations: if source == TrainingSource::ExtrapolationSampleOnly {
                training.len()
            } else {
                sample_rows
            },
            history_observations: history_rows,
            history_version,
            training_ratios: config.training_ratios.clone(),
        },
    });
    if let Some(store) = ctx.store {
        store.save(ArtifactKind::Model, &store_key, model.as_ref());
    }
    if let Some(caches) = ctx.caches {
        return Ok(Arc::clone(
            cache_lock(&caches.models).entry(key).or_insert(model),
        ));
    }
    Ok(model)
}

/// Executes (or reuses) the actual run of `workload` on the full graph.
fn stage_actual(ctx: &StageCtx<'_>, workload: &dyn Workload) -> Arc<WorkloadRun> {
    let _span = predict_obs::trace::span("predict.stage.actual").arg("workload", workload.name());
    let _timer = predict_obs::metrics::time_scope("predict.stage.actual_ns");
    let key = workload.cache_token();
    if let Some(caches) = ctx.caches {
        if let Some(hit) = cache_lock(&caches.actuals).get(&key) {
            caches.record(true);
            return Arc::clone(hit);
        }
        caches.record(false);
        // Actual runs are the most expensive artifact of all; persisting
        // them is what makes a warm evaluation pass execute zero runs.
        if let Some(store) = ctx.store {
            if let Some(run) = store.load::<WorkloadRun>(ArtifactKind::ActualRun, &key) {
                let run = Arc::new(run);
                return Arc::clone(cache_lock(&caches.actuals).entry(key).or_insert(run));
            }
        }
    }
    // Sharded engines run against the session's cached full-graph storage,
    // so back-to-back actual runs skip the per-run shard construction. The
    // dispatch in [`crate::exec`] routes to the in-memory runtime or a
    // cluster transport per the engine's transport mode; results are
    // byte-identical either way.
    let storage = ctx
        .caches
        .and_then(|caches| caches.storage.get_or_shard(ctx.engine, ctx.graph));
    let run = Arc::new(crate::exec::execute_workload(
        ctx.engine,
        workload,
        ctx.graph,
        storage.as_deref(),
    ));
    if let Some(store) = ctx.store {
        store.save(ArtifactKind::ActualRun, &key, run.as_ref());
    }
    if let Some(caches) = ctx.caches {
        return Arc::clone(cache_lock(&caches.actuals).entry(key).or_insert(run));
    }
    run
}

/// The full prediction: stages 1–3 plus extrapolation and assembly.
pub(crate) fn predict_stages(
    ctx: &StageCtx<'_>,
    workload: &dyn Workload,
    config: &PredictorConfig,
    history: &HistoryStore,
    history_version: u64,
) -> Result<Prediction, PredictError> {
    let _span = predict_obs::trace::span("session.predict").arg("workload", workload.name());
    let _timer = predict_obs::metrics::time_scope("session.predict_ns");
    config.validate()?;
    let transform = config
        .transform
        .unwrap_or_else(|| TransformFunction::default_for(workload.convergence()));

    let sample = stage_sample(ctx, config.sampling_ratio, config.seed)?;
    let run = stage_run(ctx, workload, transform, &sample);
    // Extracted once: stage 3 trains on these observations (when a training
    // ratio equals the sampling ratio) and the extrapolation below scales
    // them to the full graph.
    let sample_observations = run.observations(config.worker_selection);
    let model = stage_model(
        ctx,
        workload,
        config,
        transform,
        &sample_observations,
        history,
        history_version,
    )?;

    // Extrapolation and per-iteration prediction (cheap; never cached).
    let extrapolator = sample.extrapolator();
    let extrapolated_features: Vec<FeatureSet> = sample_observations
        .iter()
        .map(|o| extrapolator.extrapolate_with_rule(&o.features, config.extrapolation_rule))
        .collect();
    let per_iteration_ms: Vec<f64> = extrapolated_features
        .iter()
        .map(|f| model.cost_model.predict_iteration_ms(f).max(0.0))
        .collect();
    let predicted_superstep_ms = per_iteration_ms.iter().sum();

    // Graph-level remote message bytes, extrapolated by the edge factor.
    let predicted_remote_message_bytes: f64 = run
        .profile
        .per_superstep_totals()
        .iter()
        .map(|t| t.remote_message_bytes as f64)
        .sum::<f64>()
        * extrapolator.edge_factor;

    Ok(Prediction {
        workload: workload.name().to_string(),
        predicted_iterations: run.iterations(),
        predicted_superstep_ms,
        per_iteration_ms,
        extrapolated_features,
        predicted_remote_message_bytes,
        cost_model: model.cost_model.clone(),
        training: model.provenance.clone(),
        extrapolator,
        sample_run_total_ms: run.profile.total_ms(),
        sample_profile: run.profile.clone(),
        achieved_sampling_ratio: sample.clamped_ratio(),
    })
}

/// Prediction plus the measured actual run.
pub(crate) fn evaluate_stages(
    ctx: &StageCtx<'_>,
    workload: &dyn Workload,
    config: &PredictorConfig,
    history: &HistoryStore,
    history_version: u64,
) -> Result<Evaluation, PredictError> {
    let _span = predict_obs::trace::span("session.evaluate").arg("workload", workload.name());
    let _timer = predict_obs::metrics::time_scope("session.evaluate_ns");
    let prediction = predict_stages(ctx, workload, config, history, history_version)?;
    let actual = stage_actual(ctx, workload);
    let actual_remote_message_bytes: f64 = actual
        .profile
        .per_superstep_totals()
        .iter()
        .map(|t| t.remote_message_bytes as f64)
        .sum();
    Ok(Evaluation {
        prediction,
        actual_iterations: actual.iterations(),
        actual_superstep_ms: actual.profile.superstep_phase_ms(),
        actual_total_ms: actual.profile.total_ms(),
        actual_remote_message_bytes,
        actual_profile: actual.profile.clone(),
    })
}

// ---------------------------------------------------------------------------
// Builder and session.

/// Fluent builder for [`PredictionSession`]s, obtained from
/// [`crate::Predictor::builder`].
///
/// Defaults: a [`BspEngine`] with the default configuration, the paper's
/// [`BiasedRandomJump`] sampler, and [`PredictorConfig::default`].
pub struct PredictorBuilder {
    engine: Arc<BspEngine>,
    sampler: Arc<dyn Sampler>,
    config: PredictorConfig,
    execution: Option<ExecutionMode>,
    storage: Option<StorageMode>,
    transport: Option<TransportMode>,
    store: Option<Arc<ArtifactStore>>,
}

impl Default for PredictorBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl PredictorBuilder {
    /// Creates a builder with default engine, sampler and configuration.
    pub fn new() -> Self {
        Self {
            engine: Arc::new(BspEngine::default()),
            sampler: Arc::new(BiasedRandomJump::default()),
            config: PredictorConfig::default(),
            execution: None,
            storage: None,
            transport: None,
            store: None,
        }
    }

    /// Sets the BSP engine (owned or already shared).
    pub fn engine(mut self, engine: impl Into<Arc<BspEngine>>) -> Self {
        self.engine = engine.into();
        self
    }

    /// Overrides how the engine executes superstep phases (sequentially or on
    /// OS threads). Execution mode never changes prediction output — the
    /// runtime's determinism contract guarantees byte-identical profiles at
    /// every thread count — only how fast sample and actual runs execute.
    /// The derived engine shares the original's run counter and layout cache.
    pub fn execution(mut self, execution: ExecutionMode) -> Self {
        self.execution = Some(execution);
        self
    }

    /// Overrides how the engine stores graphs during sample and actual runs
    /// (one unified CSR allocation or one `ShardedCsr` per worker — see
    /// `predict_bsp::storage`). Like [`PredictorBuilder::execution`], this
    /// never changes prediction output: runs are byte-identical under either
    /// storage; only the memory layout (and shard-construction cost per run)
    /// differs. The derived engine shares the original's run counter and
    /// layout cache.
    pub fn storage(mut self, storage: StorageMode) -> Self {
        self.storage = Some(storage);
        self
    }

    /// Overrides which executor runs the session's workloads: the in-memory
    /// runtime or a `predict_cluster` worker group (in-process threads or
    /// worker OS processes). Like [`PredictorBuilder::execution`], this
    /// never changes prediction output — the cluster driver replays the
    /// in-memory executor's merge and clock order, so profiles are
    /// byte-identical under every transport (determinism contract point 8);
    /// only where the supersteps physically run differs, and transported
    /// runs additionally carry measured per-superstep timings. The derived
    /// engine shares the original's run counter and layout cache.
    pub fn transport(mut self, transport: TransportMode) -> Self {
        self.transport = Some(transport);
        self
    }

    /// Attaches a persistent artifact store (shared; typically one store
    /// serves every session of a service). Store-backed sessions consult the
    /// store after an in-memory cache miss and write every computed artifact
    /// through, so a session bound to the same dataset in a later process
    /// answers warm — byte-identically, without re-executing stored sample
    /// runs.
    pub fn store_arc(mut self, store: Arc<ArtifactStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Sets the sampling technique.
    pub fn sampler<S: Sampler + 'static>(mut self, sampler: S) -> Self {
        self.sampler = Arc::new(sampler);
        self
    }

    /// Sets an already-shared sampling technique.
    pub fn sampler_arc(mut self, sampler: Arc<dyn Sampler>) -> Self {
        self.sampler = sampler;
        self
    }

    /// Sets the default pipeline configuration of the session (individual
    /// predictions may still override it via
    /// [`PredictionSession::predict_with`]).
    pub fn config(mut self, config: PredictorConfig) -> Self {
        self.config = config;
        self
    }

    /// Binds the builder to a dataset, producing a session with empty caches
    /// and an empty history store.
    pub fn bind(self, graph: impl Into<Arc<CsrGraph>>, dataset: &str) -> PredictionSession {
        self.bind_with_history(graph, dataset, HistoryStore::new())
    }

    /// Binds the builder to a dataset with a pre-loaded history store.
    /// Historical runs recorded under the session's own `dataset` label are
    /// excluded from training (the paper's leave-one-out protocol).
    pub fn bind_with_history(
        self,
        graph: impl Into<Arc<CsrGraph>>,
        dataset: &str,
        history: HistoryStore,
    ) -> PredictionSession {
        let engine = match self.execution {
            Some(mode) => Arc::new(self.engine.with_execution(mode)),
            None => self.engine,
        };
        let engine = match self.storage {
            Some(mode) => Arc::new(engine.with_storage(mode)),
            None => engine,
        };
        let engine = match self.transport {
            Some(mode) => Arc::new(engine.with_transport(mode)),
            None => engine,
        };
        let graph = graph.into();
        // Provenance (an O(V + E) graph hash) is computed here, once per
        // store-bound session, not per lookup.
        let store = self
            .store
            .map(|store| StoreBinding::new(store, dataset, &graph));
        PredictionSession {
            engine,
            sampler: self.sampler,
            config: self.config,
            graph,
            dataset: dataset.to_string(),
            caches: ArtifactCaches::default(),
            store,
            history: RwLock::new(HistoryState {
                store: Arc::new(history),
                version: 0,
            }),
        }
    }
}

/// History store behind copy-on-write: readers snapshot the `Arc` in a
/// narrow lock scope (see [`PredictionSession::history_snapshot`]), so the
/// lock is never held across engine work.
struct HistoryState {
    store: Arc<HistoryStore>,
    version: u64,
}

/// Cache occupancy and hit statistics of one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SessionStats {
    /// Cached sampling-stage artifacts.
    pub samples: usize,
    /// Cached sample-run artifacts.
    pub sample_runs: usize,
    /// Cached trained models.
    pub models: usize,
    /// Cached actual-run profiles.
    pub actual_runs: usize,
    /// Total cache hits across all stages.
    pub hits: u64,
    /// Total cache misses across all stages.
    pub misses: u64,
    /// Sampler scratch buffers ever allocated by this session's scratch
    /// pool — bounded by the peak number of concurrent draws, flat once the
    /// pool is warm (the warm-service tests assert this).
    pub scratch_allocations: u64,
    /// Shard constructions of the session's full graph (sharded storage
    /// only) — at most one per engine configuration the session has seen.
    pub full_storage_builds: u64,
    /// Artifacts served from the persistent store rather than recomputed —
    /// counted separately from the in-memory `hits` so a warm-restart
    /// hit-rate cannot be confused with same-process cache reuse (always 0
    /// for sessions without a store).
    pub store_hits: u64,
}

/// A thread-safe prediction session bound to one dataset.
///
/// See the [module documentation](self) for the caching model. All methods
/// take `&self`; the session is `Sync` and cheap to share behind an [`Arc`]
/// (which is how [`crate::PredictService`] holds it).
pub struct PredictionSession {
    engine: Arc<BspEngine>,
    sampler: Arc<dyn Sampler>,
    config: PredictorConfig,
    graph: Arc<CsrGraph>,
    dataset: String,
    caches: ArtifactCaches,
    store: Option<StoreBinding>,
    history: RwLock<HistoryState>,
}

impl PredictionSession {
    fn ctx<'a>(&'a self) -> StageCtx<'a> {
        StageCtx {
            engine: &self.engine,
            sampler: self.sampler.as_ref(),
            graph: &self.graph,
            dataset: &self.dataset,
            caches: Some(&self.caches),
            store: self.store.as_ref(),
        }
    }

    /// The dataset label this session is bound to.
    pub fn dataset(&self) -> &str {
        &self.dataset
    }

    /// The full graph this session predicts on.
    pub fn graph(&self) -> &Arc<CsrGraph> {
        &self.graph
    }

    /// The session's engine (shared; its run counter spans all users).
    pub fn engine(&self) -> &Arc<BspEngine> {
        &self.engine
    }

    /// The session's default pipeline configuration.
    pub fn config(&self) -> &PredictorConfig {
        &self.config
    }

    /// Snapshots the history store and its version in a narrow lock scope.
    /// Stages run against the snapshot `Arc`, never under the lock, so a
    /// concurrent [`PredictionSession::record_history`] is not blocked by
    /// in-flight predictions (and cannot serialize other readers behind a
    /// waiting writer).
    fn history_snapshot(&self) -> (Arc<HistoryStore>, u64) {
        let history = self.history.read().unwrap_or_else(|e| e.into_inner());
        (Arc::clone(&history.store), history.version)
    }

    /// Predicts `workload` with the session's default configuration.
    pub fn predict(&self, workload: &dyn Workload) -> Result<Prediction, PredictError> {
        self.predict_with(workload, &self.config)
    }

    /// Predicts `workload` with an explicit configuration override (e.g. one
    /// point of a sampling-ratio sweep). Artifacts shared with other
    /// configurations — equal `(ratio, seed)` draws and sample runs — are
    /// reused from the cache.
    pub fn predict_with(
        &self,
        workload: &dyn Workload,
        config: &PredictorConfig,
    ) -> Result<Prediction, PredictError> {
        let (history, version) = self.history_snapshot();
        predict_stages(&self.ctx(), workload, config, &history, version)
    }

    /// Predicts and then executes (or reuses) the actual run, returning both
    /// so the prediction error can be measured.
    pub fn evaluate(&self, workload: &dyn Workload) -> Result<Evaluation, PredictError> {
        self.evaluate_with(workload, &self.config)
    }

    /// [`PredictionSession::evaluate`] with an explicit configuration.
    pub fn evaluate_with(
        &self,
        workload: &dyn Workload,
        config: &PredictorConfig,
    ) -> Result<Evaluation, PredictError> {
        let (history, version) = self.history_snapshot();
        evaluate_stages(&self.ctx(), workload, config, &history, version)
    }

    /// Draws (or reuses) the stage-1 sampling artifact for `(ratio, seed)`.
    pub fn sample_artifact(
        &self,
        ratio: f64,
        seed: u64,
    ) -> Result<Arc<SampleArtifact>, PredictError> {
        stage_sample(&self.ctx(), ratio, seed)
    }

    /// Executes (or reuses) the stage-2 sample run of `workload` on the
    /// `(ratio, seed)` sample under `transform`.
    pub fn sample_run(
        &self,
        workload: &dyn Workload,
        ratio: f64,
        seed: u64,
        transform: TransformFunction,
    ) -> Result<Arc<SampleRunArtifact>, PredictError> {
        let sample = self.sample_artifact(ratio, seed)?;
        Ok(stage_run(&self.ctx(), workload, transform, &sample))
    }

    /// Trains (or reuses) the stage-3 cost model of `workload` under
    /// `config`.
    pub fn trained_model(
        &self,
        workload: &dyn Workload,
        config: &PredictorConfig,
    ) -> Result<Arc<TrainedModel>, PredictError> {
        config.validate()?;
        let transform = config
            .transform
            .unwrap_or_else(|| TransformFunction::default_for(workload.convergence()));
        let ctx = self.ctx();
        let sample = stage_sample(&ctx, config.sampling_ratio, config.seed)?;
        let run = stage_run(&ctx, workload, transform, &sample);
        let sample_observations = run.observations(config.worker_selection);
        let (history, version) = self.history_snapshot();
        stage_model(
            &ctx,
            workload,
            config,
            transform,
            &sample_observations,
            &history,
            version,
        )
    }

    /// Executes (or reuses) the actual run of `workload` on the full graph.
    pub fn actual_run(&self, workload: &dyn Workload) -> Arc<WorkloadRun> {
        stage_actual(&self.ctx(), workload)
    }

    /// Records a historical actual run. Bumps the history version, so models
    /// trained against the previous history are not reused for subsequent
    /// predictions (sampling and sample-run artifacts stay valid).
    ///
    /// Copy-on-write: in-flight predictions keep reading their snapshot of
    /// the previous store; only the first record after a snapshot clones the
    /// underlying data.
    pub fn record_history(&self, workload: &str, dataset: &str, profile: RunProfile) {
        let mut history = self.history.write().unwrap_or_else(|e| e.into_inner());
        Arc::make_mut(&mut history.store).record(workload, dataset, profile);
        history.version += 1;
    }

    /// The current history version (starts at 0, +1 per recorded run).
    pub fn history_version(&self) -> u64 {
        self.history
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .version
    }

    /// Number of historical runs the session currently holds.
    pub fn history_len(&self) -> usize {
        self.history
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .store
            .len()
    }

    /// Cache occupancy and hit statistics.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            samples: cache_lock(&self.caches.samples).len(),
            sample_runs: cache_lock(&self.caches.runs).len(),
            models: cache_lock(&self.caches.models).len(),
            actual_runs: cache_lock(&self.caches.actuals).len(),
            hits: self.caches.hits.load(Ordering::Relaxed),
            misses: self.caches.misses.load(Ordering::Relaxed),
            scratch_allocations: self.caches.scratch.allocations(),
            full_storage_builds: self.caches.storage.builds(),
            store_hits: self.store.as_ref().map_or(0, StoreBinding::hits),
        }
    }

    /// The persistent artifact store this session writes through, when one
    /// was attached at bind time.
    pub fn artifact_store(&self) -> Option<&Arc<ArtifactStore>> {
        self.store.as_ref().map(StoreBinding::store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Predictor;
    use predict_algorithms::{
        ConnectedComponentsWorkload, NeighborhoodWorkload, PageRankWorkload, TopKWorkload,
    };
    use predict_bsp::{BspConfig, ClusterCostConfig};
    use predict_graph::generators::{generate_rmat, RmatConfig};

    fn engine() -> BspEngine {
        BspEngine::new(BspConfig::with_workers(4).with_cost(ClusterCostConfig::default()))
    }

    fn graph() -> CsrGraph {
        generate_rmat(&RmatConfig::new(11, 8).with_seed(21))
    }

    fn session(config: PredictorConfig) -> PredictionSession {
        Predictor::builder()
            .engine(engine())
            .sampler(BiasedRandomJump::default())
            .config(config)
            .bind(graph(), "test")
    }

    #[test]
    fn session_matches_fresh_predictor_exactly() {
        let g = graph();
        let engine = engine();
        let sampler = BiasedRandomJump::default();
        let workload = PageRankWorkload::with_epsilon(0.001, g.num_vertices());
        let config = PredictorConfig::default().with_seed(13);

        let fresh = Predictor::new(&engine, &sampler, config.clone())
            .predict(&workload, &g, &HistoryStore::new(), "test")
            .unwrap();
        let s = Predictor::builder()
            .engine(engine.clone())
            .sampler(BiasedRandomJump::default())
            .config(config)
            .bind(g, "test");
        let cached_cold = s.predict(&workload).unwrap();
        let cached_warm = s.predict(&workload).unwrap();

        for p in [&cached_cold, &cached_warm] {
            assert_eq!(fresh.predicted_iterations, p.predicted_iterations);
            assert_eq!(fresh.predicted_superstep_ms, p.predicted_superstep_ms);
            assert_eq!(fresh.per_iteration_ms, p.per_iteration_ms);
            assert_eq!(fresh.achieved_sampling_ratio, p.achieved_sampling_ratio);
            assert_eq!(fresh.sample_profile, p.sample_profile);
        }
    }

    #[test]
    fn repeated_predictions_hit_the_cache() {
        let s = session(PredictorConfig::single_ratio(0.1));
        let workload = PageRankWorkload::with_epsilon(0.01, s.graph().num_vertices());
        s.predict(&workload).unwrap();
        let after_first = s.engine().runs_executed();
        assert!(after_first >= 1);
        s.predict(&workload).unwrap();
        assert_eq!(
            s.engine().runs_executed(),
            after_first,
            "second prediction must not re-run the engine"
        );
        let stats = s.stats();
        assert_eq!(stats.samples, 1);
        assert_eq!(stats.sample_runs, 1);
        assert_eq!(stats.models, 1);
        assert!(stats.hits >= 3);
    }

    #[test]
    fn one_sampling_pass_serves_many_workloads() {
        let s = session(PredictorConfig::single_ratio(0.1));
        let n = s.graph().num_vertices();
        let workloads: Vec<Box<dyn Workload>> = vec![
            Box::new(PageRankWorkload::with_epsilon(0.01, n)),
            Box::new(TopKWorkload::default()),
            Box::new(ConnectedComponentsWorkload),
            Box::new(NeighborhoodWorkload::default()),
        ];
        for w in &workloads {
            s.predict(w.as_ref()).unwrap();
        }
        let stats = s.stats();
        // One (ratio, seed) pair -> one sampling artifact for all workloads.
        assert_eq!(stats.samples, 1);
        assert_eq!(stats.sample_runs, workloads.len());
        assert_eq!(stats.models, workloads.len());
    }

    #[test]
    fn config_override_shares_compatible_artifacts() {
        let s = session(PredictorConfig::single_ratio(0.1));
        let workload = PageRankWorkload::with_epsilon(0.01, s.graph().num_vertices());
        s.predict(&workload).unwrap();
        let runs_before = s.engine().runs_executed();
        // Same (ratio, seed) and transform, different extrapolation rule:
        // sampling and the sample run are reused; only the model key differs.
        let mut other = PredictorConfig::single_ratio(0.1);
        other.extrapolation_rule = ExtrapolationRule::EdgesOnly;
        s.predict_with(&workload, &other).unwrap();
        assert_eq!(s.engine().runs_executed(), runs_before);
        assert_eq!(s.stats().sample_runs, 1);
        assert_eq!(s.stats().models, 2);
    }

    #[test]
    fn recording_history_invalidates_models_but_not_runs() {
        let s = session(PredictorConfig::single_ratio(0.1));
        let workload = TopKWorkload::default();
        s.predict(&workload).unwrap();
        let runs_before = s.engine().runs_executed();

        // An actual run on a different dataset becomes history.
        let other = generate_rmat(&RmatConfig::new(10, 6).with_seed(5));
        let other_run = workload.run(s.engine(), &other);
        let runs_after_actual = s.engine().runs_executed();
        assert!(runs_after_actual > runs_before);
        s.record_history(workload.name(), "other", other_run.profile);
        assert_eq!(s.history_version(), 1);

        let p = s.predict(&workload).unwrap();
        // The model was retrained against the new history...
        assert_eq!(p.training.history_version, 1);
        assert_eq!(p.training.source, TrainingSource::SampleRunsWithHistory);
        assert!(p.training.history_observations > 0);
        // ...but no new engine runs were needed: sample runs stayed cached.
        assert_eq!(s.engine().runs_executed(), runs_after_actual);
        assert_eq!(s.stats().models, 2);
    }

    #[test]
    fn strict_training_surfaces_insufficient_training() {
        // training_ratios empty and no history: the only data is the
        // extrapolation sample run itself.
        let mut config = PredictorConfig::single_ratio(0.1);
        config.training_ratios = Vec::new();
        let lenient = session(config.clone());
        let workload = PageRankWorkload::with_epsilon(0.01, lenient.graph().num_vertices());
        let p = lenient.predict(&workload).unwrap();
        assert_eq!(p.training.source, TrainingSource::ExtrapolationSampleOnly);
        assert!(p.training.sample_observations > 0);

        config.strict_training = true;
        let strict = session(config);
        let err = strict.predict(&workload).unwrap_err();
        assert!(matches!(err, PredictError::InsufficientTraining { .. }));
    }

    #[test]
    fn invalid_configs_error_instead_of_panicking() {
        let s = session(PredictorConfig::default());
        let workload = PageRankWorkload::with_epsilon(0.01, s.graph().num_vertices());
        for bad in [f64::NAN, f64::INFINITY, 0.0, -0.5] {
            let config = PredictorConfig::default().with_sampling_ratio(bad);
            let err = s.predict_with(&workload, &config).unwrap_err();
            assert!(matches!(err, PredictError::InvalidConfig(_)), "{bad}");
        }
        let config = PredictorConfig {
            training_ratios: vec![0.1, f64::NAN],
            ..Default::default()
        };
        assert!(matches!(
            s.predict_with(&workload, &config).unwrap_err(),
            PredictError::InvalidConfig(_)
        ));
    }

    #[test]
    fn evaluate_reuses_the_cached_actual_run() {
        let s = session(PredictorConfig::single_ratio(0.1));
        let workload = PageRankWorkload::with_epsilon(0.01, s.graph().num_vertices());
        let a = s.evaluate(&workload).unwrap();
        let runs = s.engine().runs_executed();
        let b = s.evaluate(&workload).unwrap();
        assert_eq!(s.engine().runs_executed(), runs);
        assert_eq!(a.actual_iterations, b.actual_iterations);
        assert_eq!(a.actual_superstep_ms, b.actual_superstep_ms);
        assert!(a.sample_overhead_ratio() < 1.0);
    }

    #[test]
    fn zero_cost_actual_run_reports_nan_overhead() {
        let s = session(PredictorConfig::single_ratio(0.1));
        let workload = PageRankWorkload::with_epsilon(0.01, s.graph().num_vertices());
        let mut eval = s.evaluate(&workload).unwrap();
        eval.actual_total_ms = 0.0;
        assert!(eval.sample_overhead_ratio().is_nan());
    }

    #[test]
    fn predictions_serialize_to_json() {
        let s = session(PredictorConfig::single_ratio(0.1));
        let workload = PageRankWorkload::with_epsilon(0.01, s.graph().num_vertices());
        let eval = s.evaluate(&workload).unwrap();
        let json = serde_json::to_string(&eval).unwrap();
        assert!(json.contains("predicted_superstep_ms"));
        assert!(json.contains("training"));
        // Deterministic writer: serializing twice is byte-identical.
        assert_eq!(json, serde_json::to_string(&eval).unwrap());
    }

    #[test]
    fn config_fingerprint_distinguishes_configs() {
        let a = PredictorConfig::default();
        assert_eq!(a.fingerprint(), PredictorConfig::default().fingerprint());
        assert_ne!(a.fingerprint(), a.clone().with_seed(1).fingerprint());
        assert_ne!(
            a.fingerprint(),
            a.clone().with_sampling_ratio(0.2).fingerprint()
        );
        assert_ne!(
            a.fingerprint(),
            a.clone().with_strict_training(true).fingerprint()
        );
    }
}
