//! Analytical upper bounds for iteration counts.
//!
//! The paper contrasts PREDIcT's sample-run based iteration estimates with the
//! analytical bounds available in the literature (section 5.1, "Upper Bound
//! Estimates"): for PageRank, the bound of Langville & Meyer,
//! `#iterations = log10(ε) / log10(d)`, ignores the input dataset entirely and
//! over-estimates the real iteration count by 2–3.5x. These bounds are the
//! baseline PREDIcT is compared against in the `upper_bounds` experiment.

/// Langville & Meyer's upper bound on the number of PageRank iterations
/// needed to reach a tolerance level `ε` with damping factor `d`:
/// `log10(ε) / log10(d)`, rounded up.
///
/// # Panics
///
/// Panics unless `0 < epsilon < 1` and `0 < damping < 1`.
pub fn pagerank_iteration_upper_bound(epsilon: f64, damping: f64) -> usize {
    assert!(
        epsilon > 0.0 && epsilon < 1.0,
        "epsilon must be in (0, 1), got {epsilon}"
    );
    assert!(
        damping > 0.0 && damping < 1.0,
        "damping must be in (0, 1), got {damping}"
    );
    (epsilon.log10() / damping.log10()).ceil() as usize
}

/// Generic bound for fixed-point iterations with a known contraction factor:
/// the number of iterations needed for an error that shrinks by `contraction`
/// per iteration to fall from 1 to `epsilon`. PageRank with damping `d` is the
/// special case `contraction = d`.
pub fn contraction_iteration_bound(epsilon: f64, contraction: f64) -> usize {
    assert!(
        epsilon > 0.0 && epsilon < 1.0,
        "epsilon must be in (0, 1), got {epsilon}"
    );
    assert!(
        contraction > 0.0 && contraction < 1.0,
        "contraction must be in (0, 1), got {contraction}"
    );
    (epsilon.ln() / contraction.ln()).ceil() as usize
}

/// Upper bound for propagation-style algorithms (connected components,
/// SSSP, neighborhood growth): information travels one hop per superstep, so
/// the iteration count is bounded by the graph diameter plus one. The caller
/// supplies a diameter (exact or the effective diameter estimate).
pub fn propagation_iteration_bound(diameter: f64) -> usize {
    diameter.max(0.0).ceil() as usize + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_papers_numbers() {
        // Section 5.1: ε = 0.001, d = 0.85 gives 42 iterations...
        assert_eq!(pagerank_iteration_upper_bound(0.001, 0.85), 43);
        // ...and the paper rounds the same expression down to 42; accept that
        // our ceil() lands within one iteration of the printed value.
        let exact = (0.001f64).log10() / (0.85f64).log10();
        assert!((exact - 42.5).abs() < 0.2);
    }

    #[test]
    fn looser_tolerance_needs_fewer_iterations() {
        let tight = pagerank_iteration_upper_bound(0.001, 0.85);
        let loose = pagerank_iteration_upper_bound(0.1, 0.85);
        assert!(loose < tight);
        assert_eq!(loose, (0.1f64.log10() / 0.85f64.log10()).ceil() as usize);
    }

    #[test]
    fn contraction_bound_equals_pagerank_bound_up_to_log_base() {
        // Same expression in natural log; the results agree exactly.
        assert_eq!(
            contraction_iteration_bound(0.001, 0.85),
            pagerank_iteration_upper_bound(0.001, 0.85)
        );
    }

    #[test]
    fn propagation_bound_is_diameter_plus_one() {
        assert_eq!(propagation_iteration_bound(2.0), 3);
        assert_eq!(propagation_iteration_bound(6.4), 8);
        assert_eq!(propagation_iteration_bound(0.0), 1);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn invalid_epsilon_panics() {
        let _ = pagerank_iteration_upper_bound(1.5, 0.85);
    }
}
