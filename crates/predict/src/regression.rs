//! Multivariate linear regression.
//!
//! The paper's cost model has the fixed functional form
//! `f(X_1, …, X_k) = c_1 X_1 + … + c_k X_k + r` (section 3.4): a multivariate
//! linear model whose coefficients can be interpreted as the cost values of
//! each input feature and whose residual `r` absorbs fixed per-iteration
//! overheads. The model is fit by ordinary least squares on the training
//! observations; a ridge-regularized variant is provided as a robustness
//! extension (useful when training rows are few and collinear, e.g. very
//! short sample runs).

use serde::{Deserialize, Serialize};

/// A fitted linear model `y ≈ intercept + Σ coefficients[i] * x[i]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearModel {
    /// Per-feature coefficients (the paper's cost values `c_i`).
    pub coefficients: Vec<f64>,
    /// Intercept (the paper's residual value `r`).
    pub intercept: f64,
    /// Coefficient of determination on the training data.
    pub r_squared: f64,
}

/// Errors produced when fitting a model.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub enum RegressionError {
    /// No training rows were provided.
    EmptyTrainingSet,
    /// Rows have inconsistent numbers of features.
    InconsistentRows,
    /// The normal equations are singular and could not be solved (typically
    /// perfectly collinear features with no regularization).
    SingularSystem,
}

impl std::fmt::Display for RegressionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegressionError::EmptyTrainingSet => write!(f, "no training observations"),
            RegressionError::InconsistentRows => write!(f, "rows have differing feature counts"),
            RegressionError::SingularSystem => write!(f, "normal equations are singular"),
        }
    }
}

impl std::error::Error for RegressionError {}

impl LinearModel {
    /// Fits an ordinary-least-squares model of `y` on `rows`.
    pub fn fit(rows: &[Vec<f64>], y: &[f64]) -> Result<Self, RegressionError> {
        Self::fit_ridge(rows, y, 0.0)
    }

    /// Fits a ridge-regularized model: minimizes
    /// `Σ (y - ŷ)² + lambda * Σ c_i²` (the intercept is not penalized).
    pub fn fit_ridge(rows: &[Vec<f64>], y: &[f64], lambda: f64) -> Result<Self, RegressionError> {
        if rows.is_empty() || y.is_empty() || rows.len() != y.len() {
            return Err(RegressionError::EmptyTrainingSet);
        }
        let num_features = rows[0].len();
        if rows.iter().any(|r| r.len() != num_features) {
            return Err(RegressionError::InconsistentRows);
        }

        // Design matrix with a leading column of ones for the intercept.
        let dim = num_features + 1;
        let mut xtx = vec![vec![0.0f64; dim]; dim];
        let mut xty = vec![0.0f64; dim];
        for (row, &target) in rows.iter().zip(y.iter()) {
            let mut design = Vec::with_capacity(dim);
            design.push(1.0);
            design.extend_from_slice(row);
            for i in 0..dim {
                xty[i] += design[i] * target;
                for j in 0..dim {
                    xtx[i][j] += design[i] * design[j];
                }
            }
        }
        // Ridge penalty on the non-intercept diagonal.
        for (i, row) in xtx.iter_mut().enumerate().skip(1) {
            row[i] += lambda;
        }

        let solution = solve(xtx, xty).ok_or(RegressionError::SingularSystem)?;
        let intercept = solution[0];
        let coefficients = solution[1..].to_vec();

        let mut model = Self {
            coefficients,
            intercept,
            r_squared: 0.0,
        };
        model.r_squared = model.r_squared_on(rows, y);
        Ok(model)
    }

    /// Predicted value for one feature row.
    ///
    /// # Panics
    ///
    /// Panics if `row` does not have as many entries as the model has
    /// coefficients.
    pub fn predict(&self, row: &[f64]) -> f64 {
        assert_eq!(
            row.len(),
            self.coefficients.len(),
            "expected {} features, got {}",
            self.coefficients.len(),
            row.len()
        );
        self.intercept
            + self
                .coefficients
                .iter()
                .zip(row)
                .map(|(c, x)| c * x)
                .sum::<f64>()
    }

    /// Coefficient of determination (R²) of the model on a dataset.
    pub fn r_squared_on(&self, rows: &[Vec<f64>], y: &[f64]) -> f64 {
        if rows.is_empty() {
            return 0.0;
        }
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let ss_tot: f64 = y.iter().map(|v| (v - mean).powi(2)).sum();
        let ss_res: f64 = rows
            .iter()
            .zip(y.iter())
            .map(|(row, &target)| (target - self.predict(row)).powi(2))
            .sum();
        if ss_tot <= f64::EPSILON {
            // A constant response that the model matches exactly counts as a
            // perfect fit; otherwise the notion of R² degenerates to 0.
            return if ss_res <= 1e-9 { 1.0 } else { 0.0 };
        }
        1.0 - ss_res / ss_tot
    }

    /// Sum of squared residuals on a dataset (used by feature selection).
    pub fn sse_on(&self, rows: &[Vec<f64>], y: &[f64]) -> f64 {
        rows.iter()
            .zip(y.iter())
            .map(|(row, &target)| (target - self.predict(row)).powi(2))
            .sum()
    }
}

/// Solves the dense linear system `a x = b` with Gaussian elimination and
/// partial pivoting. Returns `None` when the matrix is (numerically)
/// singular.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Partial pivoting.
        let pivot_row =
            (col..n).max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap())?;
        if a[pivot_row][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);

        let pivot = a[col][col];
        let (pivot_rows, rest) = a.split_at_mut(col + 1);
        let pivot_row = &pivot_rows[col];
        for (offset, row) in rest.iter_mut().enumerate() {
            let factor = row[col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for (target, &source) in row[col..n].iter_mut().zip(&pivot_row[col..n]) {
                *target -= factor * source;
            }
            b[col + 1 + offset] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for col in (row + 1)..n {
            acc -= a[row][col] * x[col];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn recovers_known_coefficients_exactly() {
        // y = 3 + 2 x1 - 0.5 x2, no noise.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            let x1 = i as f64;
            let x2 = (i * i % 7) as f64;
            rows.push(vec![x1, x2]);
            y.push(3.0 + 2.0 * x1 - 0.5 * x2);
        }
        let model = LinearModel::fit(&rows, &y).unwrap();
        assert!((model.intercept - 3.0).abs() < 1e-9);
        assert!((model.coefficients[0] - 2.0).abs() < 1e-9);
        assert!((model.coefficients[1] + 0.5).abs() < 1e-9);
        assert!(model.r_squared > 0.999999);
    }

    #[test]
    fn recovers_coefficients_under_noise() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..500 {
            let x1: f64 = rng.gen_range(0.0..100.0);
            let x2: f64 = rng.gen_range(0.0..10.0);
            let noise: f64 = rng.gen_range(-1.0..1.0);
            rows.push(vec![x1, x2]);
            y.push(5.0 + 0.7 * x1 + 3.0 * x2 + noise);
        }
        let model = LinearModel::fit(&rows, &y).unwrap();
        assert!((model.coefficients[0] - 0.7).abs() < 0.05);
        assert!((model.coefficients[1] - 3.0).abs() < 0.2);
        assert!(model.r_squared > 0.95);
    }

    #[test]
    fn extrapolates_outside_training_range() {
        // The property the paper relies on: a fixed functional form can be
        // used on feature ranges outside the training boundaries (train on
        // sample-run scale, predict at full-graph scale).
        let rows: Vec<Vec<f64>> = (1..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (1..20).map(|i| 10.0 + 4.0 * i as f64).collect();
        let model = LinearModel::fit(&rows, &y).unwrap();
        let prediction = model.predict(&[1_000.0]);
        assert!((prediction - 4_010.0).abs() < 1e-6);
    }

    #[test]
    fn singular_system_is_reported_and_ridge_fixes_it() {
        // Two perfectly collinear features.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| 3.0 * i as f64).collect();
        assert_eq!(
            LinearModel::fit(&rows, &y).unwrap_err(),
            RegressionError::SingularSystem
        );
        let ridge = LinearModel::fit_ridge(&rows, &y, 1e-3).unwrap();
        // The regularized solution still predicts well even though the
        // individual coefficients are not identifiable.
        assert!(ridge.r_squared_on(&rows, &y) > 0.999);
    }

    #[test]
    fn error_cases_are_reported() {
        assert_eq!(
            LinearModel::fit(&[], &[]).unwrap_err(),
            RegressionError::EmptyTrainingSet
        );
        let rows = vec![vec![1.0, 2.0], vec![1.0]];
        assert_eq!(
            LinearModel::fit(&rows, &[1.0, 2.0]).unwrap_err(),
            RegressionError::InconsistentRows
        );
    }

    #[test]
    fn r_squared_handles_constant_targets() {
        let rows: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let y = vec![4.0; 5];
        let model = LinearModel::fit(&rows, &y).unwrap();
        assert!((model.predict(&[2.0]) - 4.0).abs() < 1e-9);
        assert_eq!(model.r_squared, 1.0);
    }

    #[test]
    #[should_panic(expected = "expected 2 features")]
    fn predict_with_wrong_arity_panics() {
        let model = LinearModel {
            coefficients: vec![1.0, 2.0],
            intercept: 0.0,
            r_squared: 1.0,
        };
        let _ = model.predict(&[1.0]);
    }
}
