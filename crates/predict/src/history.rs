//! Historical-run store.
//!
//! Analytical workloads are executed repetitively over newly arriving
//! datasets, so profiles of earlier *actual* runs are usually available. The
//! paper trains its cost models on sample runs plus (when they exist) those
//! historical runs, which improves the fitted cost factors — the difference
//! between the (a) and (b) variants of Figures 7 and 8. [`HistoryStore`] keeps
//! those profiles, keyed by workload and dataset, and can persist them to a
//! JSON file so a deployment accumulates history across invocations.

use crate::critical_path::{observations_from_profile, WorkerSelection};
use crate::features::IterationObservation;
use predict_bsp::RunProfile;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::path::Path;

/// A recorded actual run of a workload on some dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistoricalRun {
    /// Workload name (e.g. "SC", "TOP-K").
    pub workload: String,
    /// Dataset label (e.g. "Wiki", "UK").
    pub dataset: String,
    /// Full run profile of the execution.
    pub profile: RunProfile,
}

/// A collection of historical runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistoryStore {
    runs: Vec<HistoricalRun>,
}

impl HistoryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// True when no runs are stored.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Records an actual run of `workload` on `dataset`.
    pub fn record(&mut self, workload: &str, dataset: &str, profile: RunProfile) {
        self.runs.push(HistoricalRun {
            workload: workload.to_string(),
            dataset: dataset.to_string(),
            profile,
        });
    }

    /// All stored runs.
    pub fn runs(&self) -> &[HistoricalRun] {
        &self.runs
    }

    /// Runs of a given workload, optionally excluding one dataset (the
    /// leave-the-predicted-dataset-out protocol of section 5.2: "prior runs on
    /// all other datasets but the predicted one").
    pub fn runs_for(&self, workload: &str, exclude_dataset: Option<&str>) -> Vec<&HistoricalRun> {
        self.runs
            .iter()
            .filter(|r| r.workload == workload)
            .filter(|r| exclude_dataset.map(|d| r.dataset != d).unwrap_or(true))
            .collect()
    }

    /// Per-iteration training observations extracted from the stored runs of
    /// `workload` (excluding `exclude_dataset` when given).
    pub fn observations_for(
        &self,
        workload: &str,
        exclude_dataset: Option<&str>,
        selection: WorkerSelection,
    ) -> Vec<IterationObservation> {
        self.runs_for(workload, exclude_dataset)
            .iter()
            .flat_map(|r| observations_from_profile(&r.profile, selection))
            .collect()
    }

    /// Serializes the store to JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Deserializes a store from JSON.
    pub fn from_json(json: &str) -> serde_json::Result<Self> {
        serde_json::from_str(json)
    }

    /// Writes the store to a JSON file.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        let json = self.to_json().map_err(std::io::Error::other)?;
        let mut file = std::fs::File::create(path)?;
        file.write_all(json.as_bytes())
    }

    /// Loads a store from a JSON file.
    pub fn load<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let mut json = String::new();
        std::fs::File::open(path)?.read_to_string(&mut json)?;
        Self::from_json(&json).map_err(std::io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predict_bsp::{Aggregates, SuperstepProfile, WorkerCounters};

    fn profile(name: &str, supersteps: usize) -> RunProfile {
        RunProfile {
            algorithm: name.to_string(),
            num_vertices: 100,
            num_edges: 500,
            num_workers: 2,
            setup_ms: 1.0,
            read_ms: 2.0,
            write_ms: 3.0,
            supersteps: (0..supersteps)
                .map(|s| SuperstepProfile {
                    superstep: s,
                    workers: vec![WorkerCounters::new(50), WorkerCounters::new(50)],
                    worker_times_ms: vec![1.0, 2.0],
                    wall_time_ms: 5.0,
                    aggregates: Aggregates::new(),
                })
                .collect(),
            measured: None,
        }
    }

    #[test]
    fn record_and_filter_by_workload_and_dataset() {
        let mut store = HistoryStore::new();
        store.record("SC", "Wiki", profile("semi-clustering", 3));
        store.record("SC", "UK", profile("semi-clustering", 4));
        store.record("PR", "Wiki", profile("pagerank", 5));
        assert_eq!(store.len(), 3);
        assert_eq!(store.runs_for("SC", None).len(), 2);
        assert_eq!(store.runs_for("SC", Some("UK")).len(), 1);
        assert_eq!(store.runs_for("SC", Some("UK"))[0].dataset, "Wiki");
        assert!(store.runs_for("NH", None).is_empty());
    }

    #[test]
    fn observations_concatenate_iterations_of_matching_runs() {
        let mut store = HistoryStore::new();
        store.record("SC", "Wiki", profile("semi-clustering", 3));
        store.record("SC", "UK", profile("semi-clustering", 4));
        let obs = store.observations_for("SC", None, WorkerSelection::SlowestWorker);
        assert_eq!(obs.len(), 7);
        let excluded = store.observations_for("SC", Some("UK"), WorkerSelection::SlowestWorker);
        assert_eq!(excluded.len(), 3);
    }

    #[test]
    fn json_roundtrip() {
        let mut store = HistoryStore::new();
        store.record("TOP-K", "LJ", profile("topk-ranking", 2));
        let json = store.to_json().unwrap();
        let back = HistoryStore::from_json(&json).unwrap();
        assert_eq!(store, back);
    }

    #[test]
    fn a_non_finite_timing_survives_the_json_roundtrip() {
        // Non-finite floats serialize as `null` (JSON has no NaN literal); a
        // store containing one must still load — it comes back as NaN rather
        // than poisoning the whole history file with a deserialization error.
        let mut store = HistoryStore::new();
        let mut p = profile("pagerank", 1);
        p.supersteps[0].wall_time_ms = f64::NAN;
        store.record("PR", "Wiki", p);
        let json = store.to_json().unwrap();
        assert!(json.contains("null"), "{json}");
        let back = HistoryStore::from_json(&json).expect("null float failed to deserialize");
        assert!(back.runs()[0].profile.supersteps[0].wall_time_ms.is_nan());
        assert_eq!(back.len(), 1);
    }

    #[test]
    fn file_roundtrip() {
        let mut store = HistoryStore::new();
        store.record("PR", "TW", profile("pagerank", 2));
        let dir = std::env::temp_dir().join("predict_history_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("history.json");
        store.save(&path).unwrap();
        let back = HistoryStore::load(&path).unwrap();
        assert_eq!(store, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_store_behaves() {
        let store = HistoryStore::new();
        assert!(store.is_empty());
        assert!(store
            .observations_for("PR", None, WorkerSelection::SlowestWorker)
            .is_empty());
    }
}
