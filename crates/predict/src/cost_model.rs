//! The customizable cost model (section 3.4 of the paper).
//!
//! The cost model translates extrapolated key input features into
//! per-iteration runtime. It is a multivariate linear regression over the
//! features chosen by sequential forward selection, trained on the
//! per-iteration observations of sample runs and, when available, of
//! historical actual runs on other datasets. Its coefficients are the "cost
//! values" of each feature; the intercept absorbs the fixed per-superstep
//! overheads of the execution engine.

use crate::feature_selection::{forward_select, SelectionConfig};
use crate::features::{FeatureSet, IterationObservation, KeyFeature};
use crate::regression::{LinearModel, RegressionError};
use serde::{Deserialize, Serialize};

/// Configuration of cost model training.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModelConfig {
    /// Candidate features offered to the selection procedure.
    pub candidate_features: Vec<KeyFeature>,
    /// Forward-selection settings.
    pub selection: SelectionConfig,
    /// Ridge regularization of the final fit (0 = ordinary least squares;
    /// the selection step always uses a tiny ridge internally).
    pub ridge_lambda: f64,
}

impl Default for CostModelConfig {
    fn default() -> Self {
        Self {
            candidate_features: KeyFeature::ALL.to_vec(),
            selection: SelectionConfig::default(),
            ridge_lambda: 0.0,
        }
    }
}

/// A trained per-iteration cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// The features the model actually uses, in selection order.
    pub features: Vec<KeyFeature>,
    /// The fitted regression over those features.
    pub model: LinearModel,
    /// Number of observations the model was trained on.
    pub training_observations: usize,
}

impl CostModel {
    /// Trains a cost model on per-iteration observations.
    ///
    /// Training fails only when no observations are provided or when even a
    /// ridge-regularized single-feature model cannot be fit.
    pub fn train(
        observations: &[IterationObservation],
        config: &CostModelConfig,
    ) -> Result<Self, RegressionError> {
        if observations.is_empty() {
            return Err(RegressionError::EmptyTrainingSet);
        }
        let features: Vec<FeatureSet> = observations.iter().map(|o| o.features).collect();
        let targets: Vec<f64> = observations.iter().map(|o| o.wall_time_ms).collect();

        let selection = forward_select(
            &features,
            &targets,
            &config.candidate_features,
            &config.selection,
        );
        let selected = if selection.features.is_empty() {
            // Degenerate training data (e.g. all-zero features): fall back to
            // the full candidate pool so the model is at least well formed.
            config.candidate_features.clone()
        } else {
            selection.features
        };

        let rows: Vec<Vec<f64>> = features.iter().map(|f| f.select(&selected)).collect();
        let model = match LinearModel::fit_ridge(&rows, &targets, config.ridge_lambda) {
            Ok(m) => m,
            // Collinear features on tiny training sets: retry with a small
            // ridge penalty, which is always solvable.
            Err(RegressionError::SingularSystem) => LinearModel::fit_ridge(&rows, &targets, 1e-6)?,
            Err(e) => return Err(e),
        };
        Ok(Self {
            features: selected,
            model,
            training_observations: observations.len(),
        })
    }

    /// Predicted runtime in milliseconds of one iteration described by
    /// `features` (typically the extrapolated features of a sample-run
    /// iteration).
    pub fn predict_iteration_ms(&self, features: &FeatureSet) -> f64 {
        self.model.predict(&features.select(&self.features))
    }

    /// Predicted total runtime of a sequence of iterations.
    pub fn predict_total_ms(&self, iterations: &[FeatureSet]) -> f64 {
        iterations
            .iter()
            .map(|f| self.predict_iteration_ms(f))
            .sum()
    }

    /// R² of the model on its training data.
    pub fn r_squared(&self) -> f64 {
        self.model.r_squared
    }

    /// R² of the model on an arbitrary set of observations (e.g. held-out
    /// actual runs).
    pub fn r_squared_on(&self, observations: &[IterationObservation]) -> f64 {
        let rows: Vec<Vec<f64>> = observations
            .iter()
            .map(|o| o.features.select(&self.features))
            .collect();
        let targets: Vec<f64> = observations.iter().map(|o| o.wall_time_ms).collect();
        self.model.r_squared_on(&rows, &targets)
    }

    /// The cost value the model assigns to `feature`, or `None` when the
    /// feature was not selected.
    pub fn cost_of(&self, feature: KeyFeature) -> Option<f64> {
        self.features
            .iter()
            .position(|f| *f == feature)
            .map(|i| self.model.coefficients[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predict_bsp::WorkerCounters;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Observations from a synthetic cluster whose true cost function is
    /// known: 15 ms fixed + 0.0002 ms/remote byte + 0.002 ms/active vertex.
    fn synthetic_observations(n: usize, scale: f64, seed: u64) -> Vec<IterationObservation> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let active = (rng.gen_range(100.0..1_000.0) * scale) as u64;
                let remote_bytes = (rng.gen_range(10_000.0..100_000.0) * scale) as u64;
                let counters = WorkerCounters {
                    active_vertices: active,
                    total_vertices: active * 2,
                    local_messages: active / 2,
                    remote_messages: remote_bytes / 50,
                    local_message_bytes: remote_bytes / 10,
                    remote_message_bytes: remote_bytes,
                };
                let noise: f64 = rng.gen_range(-0.5..0.5);
                IterationObservation {
                    superstep: i,
                    features: FeatureSet::from_counters(&counters),
                    wall_time_ms: 15.0
                        + 0.0002 * remote_bytes as f64
                        + 0.002 * active as f64
                        + noise,
                }
            })
            .collect()
    }

    #[test]
    fn trains_and_fits_well_on_synthetic_cluster_data() {
        let obs = synthetic_observations(100, 1.0, 1);
        let model = CostModel::train(&obs, &CostModelConfig::default()).unwrap();
        assert!(model.r_squared() > 0.95, "R² {}", model.r_squared());
        assert!(!model.features.is_empty());
        assert_eq!(model.training_observations, 100);
    }

    #[test]
    fn predicts_outside_the_training_range() {
        // Train at sample-run scale, predict at 10x scale (the paper's
        // "train on sample run, test on actual run" requirement).
        let train = synthetic_observations(100, 1.0, 2);
        let test = synthetic_observations(50, 10.0, 3);
        let model = CostModel::train(&train, &CostModelConfig::default()).unwrap();
        for o in &test {
            let predicted = model.predict_iteration_ms(&o.features);
            let err = (predicted - o.wall_time_ms).abs() / o.wall_time_ms;
            assert!(err < 0.25, "relative error {err} too high at 10x scale");
        }
        assert!(model.r_squared_on(&test) > 0.8);
    }

    #[test]
    fn total_prediction_sums_iterations() {
        let obs = synthetic_observations(20, 1.0, 4);
        let model = CostModel::train(&obs, &CostModelConfig::default()).unwrap();
        let features: Vec<FeatureSet> = obs.iter().map(|o| o.features).collect();
        let total = model.predict_total_ms(&features);
        let sum: f64 = features.iter().map(|f| model.predict_iteration_ms(f)).sum();
        assert!((total - sum).abs() < 1e-9);
        assert!(total > 0.0);
    }

    #[test]
    fn intercept_absorbs_fixed_overhead() {
        let obs = synthetic_observations(200, 1.0, 5);
        let model = CostModel::train(&obs, &CostModelConfig::default()).unwrap();
        // The true fixed overhead is 15 ms; the fitted intercept should land
        // in its vicinity (collinearity with TotVert can shift it a little).
        assert!(
            model.model.intercept > 5.0 && model.model.intercept < 25.0,
            "intercept {} not near the 15 ms overhead",
            model.model.intercept
        );
    }

    #[test]
    fn empty_training_set_is_an_error() {
        assert_eq!(
            CostModel::train(&[], &CostModelConfig::default()).unwrap_err(),
            RegressionError::EmptyTrainingSet
        );
    }

    #[test]
    fn cost_of_reports_selected_coefficients_only() {
        let obs = synthetic_observations(100, 1.0, 6);
        let model = CostModel::train(&obs, &CostModelConfig::default()).unwrap();
        let mut found = 0;
        for f in KeyFeature::ALL {
            if let Some(c) = model.cost_of(f) {
                assert!(c.is_finite());
                found += 1;
            }
        }
        assert_eq!(found, model.features.len());
    }

    #[test]
    fn restricted_candidate_pool_is_used() {
        let obs = synthetic_observations(100, 1.0, 7);
        let config = CostModelConfig {
            candidate_features: vec![KeyFeature::RemoteMessageBytes],
            ..Default::default()
        };
        let model = CostModel::train(&obs, &config).unwrap();
        assert_eq!(model.features, vec![KeyFeature::RemoteMessageBytes]);
    }

    #[test]
    fn degenerate_constant_observations_still_train() {
        let counters = WorkerCounters::default();
        let obs: Vec<IterationObservation> = (0..5)
            .map(|i| IterationObservation {
                superstep: i,
                features: FeatureSet::from_counters(&counters),
                wall_time_ms: 25.0,
            })
            .collect();
        let model = CostModel::train(&obs, &CostModelConfig::default()).unwrap();
        assert!((model.predict_iteration_ms(&obs[0].features) - 25.0).abs() < 1e-6);
    }
}
