//! Property-based tests of the persistent artifact store: every artifact
//! kind — samples, sample runs, trained models, actual runs — survives the
//! full write → compress → publish → read → decompress → decode path
//! byte-identically, and a crash that leaves a partial write behind is
//! recovered (swept or quarantined) without losing the store.

use predict_algorithms::{PageRankWorkload, TopKWorkload, Workload};
use predict_bsp::{BspConfig, BspEngine};
use predict_core::{ArtifactKind, ArtifactStore, Predictor, PredictorConfig};
use predict_graph::generators::{generate_rmat, RmatConfig};
use predict_sampling::BiasedRandomJump;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Fresh per-case store directory; best-effort cleanup on drop.
struct TempStoreDir(PathBuf);

impl TempStoreDir {
    fn new() -> Self {
        static DIR_SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "predict_store_prop_{}_{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).unwrap();
        TempStoreDir(path)
    }
}

impl Drop for TempStoreDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Case count bounded by `PROPTEST_CASES` (CI keeps the suites fast); same
/// convention as `proptest_prediction.rs`.
fn suite_cases(default_cases: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.trim().parse::<u32>().ok())
        .map_or(default_cases, |env| default_cases.min(env))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(suite_cases(8)))]

    /// End-to-end byte identity for all four artifact kinds at once: run a
    /// real prediction + evaluation with a store attached (populating
    /// sample, sample-run, model and actual-run artifacts on disk), then
    /// answer the same prediction from a second store-backed session with a
    /// fresh engine. Everything must come back from disk bit-exact — the
    /// serialized predictions match byte for byte and the warm engine
    /// executes zero runs.
    #[test]
    fn every_artifact_kind_roundtrips_byte_identically(
        graph_seed in 0u64..50,
        predict_seed in 0u64..1000,
        ratio in 0.1f64..0.4,
        use_topk in any::<bool>(),
    ) {
        let dir = TempStoreDir::new();
        let graph = generate_rmat(&RmatConfig::new(8, 5).with_seed(graph_seed));
        prop_assume!(graph.num_edges() > 0);
        let workload: Box<dyn Workload> = if use_topk {
            Box::new(TopKWorkload::default())
        } else {
            Box::new(PageRankWorkload::with_epsilon(0.01, graph.num_vertices()))
        };
        let config = PredictorConfig::single_ratio(ratio).with_seed(predict_seed);
        let graph = std::sync::Arc::new(graph);

        let store = std::sync::Arc::new(ArtifactStore::open(&dir.0).unwrap());
        let cold = Predictor::builder()
            .engine(BspEngine::new(BspConfig::with_workers(3)))
            .sampler(BiasedRandomJump::default())
            .config(config.clone())
            .store_arc(std::sync::Arc::clone(&store))
            .bind(std::sync::Arc::clone(&graph), "prop");
        let cold_eval = match cold.evaluate(workload.as_ref()) {
            Ok(eval) => serde_json::to_string(&eval).unwrap(),
            // Tiny ratios on sparse graphs may legitimately fail to sample;
            // nothing is stored, nothing to round-trip.
            Err(_) => return Ok(()),
        };
        // The cold pass must have published every artifact kind.
        for kind in ArtifactKind::ALL {
            prop_assert!(
                store.artifact_count(kind) > 0,
                "cold pass published no {} artifacts",
                kind.name()
            );
        }
        drop(cold);
        drop(store);

        // Restart: fresh store handle, fresh engine, same directory.
        let warm_engine = std::sync::Arc::new(BspEngine::new(BspConfig::with_workers(3)));
        let warm = Predictor::builder()
            .engine(std::sync::Arc::clone(&warm_engine))
            .sampler(BiasedRandomJump::default())
            .config(config)
            .store_arc(std::sync::Arc::new(ArtifactStore::open(&dir.0).unwrap()))
            .bind(graph, "prop");
        let warm_eval = serde_json::to_string(&warm.evaluate(workload.as_ref()).unwrap()).unwrap();
        prop_assert_eq!(cold_eval, warm_eval, "disk round-trip changed bytes");
        prop_assert_eq!(
            warm_engine.runs_executed(),
            0,
            "warm session re-executed a stored run"
        );
        prop_assert!(warm.stats().store_hits > 0);
    }

    /// A crash between payload and manifest publication can only leave a
    /// `tmp/` orphan (publication is atomic rename) or a torn published
    /// file. Simulate both from a random prefix length: reopening the store
    /// sweeps the orphan, and reading the torn file quarantines it and
    /// reports a miss — never a panic, never a wrong artifact.
    #[test]
    fn partial_writes_are_recovered_on_reopen(
        graph_seed in 0u64..50,
        cut_at in 1usize..200,
    ) {
        let dir = TempStoreDir::new();
        let graph = generate_rmat(&RmatConfig::new(8, 5).with_seed(graph_seed));
        prop_assume!(graph.num_edges() > 0);

        let store = ArtifactStore::open(&dir.0).unwrap();
        store.put(ArtifactKind::Sample, "partial", 7, &graph).unwrap();
        let published = store.artifact_path(ArtifactKind::Sample, "partial");
        let bytes = std::fs::read(&published).unwrap();
        prop_assume!(cut_at < bytes.len());

        // Torn published file: only a prefix reached the disk.
        std::fs::write(&published, &bytes[..cut_at]).unwrap();
        // Crash-orphaned temp file from a write that never published.
        let orphan = dir.0.join("tmp").join("crashed-0.tmp");
        std::fs::write(&orphan, &bytes[..cut_at]).unwrap();
        drop(store);

        let store = ArtifactStore::open(&dir.0).unwrap();
        prop_assert!(!orphan.exists(), "reopen did not sweep the tmp orphan");
        prop_assert!(
            store.get(ArtifactKind::Sample, "partial", 7).is_none(),
            "a torn file must read as a miss"
        );
        prop_assert_eq!(store.quarantined_files(), 1);
        // The slot is immediately reusable.
        store.put(ArtifactKind::Sample, "partial", 7, &graph).unwrap();
        prop_assert!(store.get(ArtifactKind::Sample, "partial", 7).is_some());
    }
}
