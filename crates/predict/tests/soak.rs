//! Socket-transport soak: 200 mixed predict/evaluate requests through a
//! socket-backed [`PredictService`] while a deterministic chaos plan crashes
//! ~10% of the underlying cluster drives.
//!
//! What the soak pins down, end to end:
//!
//! * no request ever wedges — every submission returns, batch threads join;
//! * every chaos-induced failure surfaces as a *structured*
//!   [`PredictError::WorkerPanicked`] carrying the cluster transport report,
//!   scoped to its own request;
//! * the service keeps serving: once the chaos plan is cleared, a clean
//!   batch over fresh datasets succeeds outright;
//! * the metrics registry stays consistent — exactly one `service.requests`
//!   tick per submission, faulted or not.
//!
//! `#[ignore]`d by default: it spawns real `cluster_worker` processes (built
//! by `cargo build -p predict_cluster`) and runs for tens of seconds. CI
//! runs it explicitly (`cargo test -p predict_core --test soak -- --ignored`)
//! after building the worker binary.

use predict_algorithms::{PageRankWorkload, TopKWorkload, Workload};
use predict_bsp::{BspConfig, BspEngine, TransportMode};
use predict_cluster::{clear_chaos, install_chaos, ChaosPlan};
use predict_core::{
    PredictError, PredictRequest, PredictService, PredictServiceConfig, PredictorConfig,
};
use predict_graph::generators::{generate_rmat, RmatConfig};
use predict_sampling::BiasedRandomJump;
use std::sync::Arc;

/// 160 predicts + 40 evaluates.
const PREDICTS: usize = 160;
const EVALUATES: usize = 40;

fn soak_service() -> PredictService {
    let engine = BspEngine::new(BspConfig {
        num_workers: 4,
        ..BspConfig::default()
    });
    PredictService::with_config(
        engine,
        Arc::new(BiasedRandomJump::default()),
        PredictServiceConfig {
            transport: Some(TransportMode::Socket),
            ..PredictServiceConfig::default()
        },
    )
}

/// Builds `count` requests over `datasets` distinct dataset labels
/// (prefixed by `tag`), alternating PageRank and top-k workloads. Spreading
/// requests over more datasets than the session cache holds keeps real
/// cluster drives flowing for the whole soak instead of stopping once every
/// artifact is cached.
fn build_requests(tag: &str, count: usize, datasets: usize) -> Vec<PredictRequest> {
    let graph = Arc::new(generate_rmat(&RmatConfig::new(8, 6).with_seed(11)));
    let workloads: [Arc<dyn Workload>; 2] = [
        Arc::new(PageRankWorkload::with_epsilon(0.01, graph.num_vertices())),
        Arc::new(TopKWorkload::default()),
    ];
    (0..count)
        .map(|i| {
            PredictRequest::new(
                &format!("{tag}-{}", i % datasets),
                Arc::clone(&graph),
                Arc::clone(&workloads[i % 2]),
            )
            .with_config(PredictorConfig::single_ratio(0.1).with_seed(7 + (i / datasets) as u64))
        })
        .collect()
}

fn counter(service: &PredictService, name: &str) -> u64 {
    service.metrics_snapshot().counter(name).unwrap_or(0)
}

#[test]
#[ignore = "soak: spawns real socket workers and runs for tens of seconds; CI runs it with --ignored"]
fn socket_service_survives_chaos_soak() {
    let service = soak_service();
    let requests_before = counter(&service, "service.requests");

    // ~10% of cluster drives crash a worker, deterministically by seed.
    install_chaos(ChaosPlan {
        seed: 0xC0FFEE,
        fault_percent: 10,
    });

    // Predicts run through the panic-contained batch path, four wide — the
    // same shape a loaded service sees.
    let predicts = build_requests("soak", PREDICTS, 48);
    let predict_results = service.submit_batch(&predicts, 4);
    assert_eq!(predict_results.len(), PREDICTS, "every slot reports back");

    // Evaluates exercise the actual-run path; the service does not contain
    // their panics, so the soak holds the request boundary itself.
    let evaluates = build_requests("soak-eval", EVALUATES, 16);
    let evaluate_results: Vec<Result<(), PredictError>> = evaluates
        .iter()
        .map(|request| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| service.evaluate(request)))
                .unwrap_or_else(|payload| Err(PredictError::from_panic(payload)))
                .map(|_| ())
        })
        .collect();

    clear_chaos();

    let mut failures = 0usize;
    let mut successes = 0usize;
    for result in predict_results
        .iter()
        .map(|r| r.as_ref().map(|_| ()))
        .chain(evaluate_results.iter().map(|r| r.as_ref().map(|_| ())))
    {
        match result {
            Ok(()) => successes += 1,
            Err(PredictError::WorkerPanicked { message }) => {
                assert!(
                    message.contains("cluster transport failed"),
                    "chaos failures carry the structured cluster report, got: {message}"
                );
                failures += 1;
            }
            Err(other) => panic!("chaos must only surface as WorkerPanicked, got {other:?}"),
        }
    }
    assert_eq!(successes + failures, PREDICTS + EVALUATES);
    assert!(
        failures > 0,
        "a 10% fault schedule over hundreds of drives must hit at least once"
    );
    assert!(
        successes > (PREDICTS + EVALUATES) / 2,
        "most requests succeed despite the chaos ({successes} of {})",
        PREDICTS + EVALUATES
    );

    // Metrics stayed consistent through every unwind: one tick per request.
    let soaked = counter(&service, "service.requests");
    assert_eq!(
        soaked - requests_before,
        (PREDICTS + EVALUATES) as u64,
        "exactly one service.requests tick per submission, faulted or not"
    );

    // With chaos cleared the same service serves a clean batch outright —
    // no wedged pool state, no poisoned sessions blocking fresh datasets.
    let clean = build_requests("soak-clean", 16, 8);
    let clean_results = service.submit_batch(&clean, 4);
    for (i, result) in clean_results.iter().enumerate() {
        assert!(
            result.is_ok(),
            "clean request {i} after chaos must succeed, got {:?}",
            result.as_ref().err()
        );
    }
    assert_eq!(
        counter(&service, "service.requests") - soaked,
        clean.len() as u64
    );
}
