//! Property-based fault-injection battery: arbitrary deterministic fault
//! schedules wrapped around one worker's endpoint must never hang or panic
//! the driver. Every drive either completes byte-identical to the in-memory
//! engine (the fault was absorbed — e.g. a delay released in time) or fails
//! with a structured [`ClusterError`] naming the worker — and a clean retry
//! on the same pool-driven path must then reproduce the in-memory bits
//! exactly, pinning the service-level recovery story.
//!
//! The schedules run over the in-process transport (worker threads over
//! channels), which makes the battery fast and exact: frame indices are
//! deterministic, so a failing case shrinks to a repeatable schedule.

use predict_algorithms::{PageRank, PageRankParams};
use predict_bsp::{BspConfig, BspEngine};
use predict_cluster::{
    drive, ClusterError, Direction, DriveOptions, FaultAction, FaultSchedule, ProgramSpec,
    TransportKind,
};
use predict_graph::generators::{generate_rmat, RmatConfig};
use predict_graph::CsrGraph;
use proptest::prelude::*;
use std::sync::OnceLock;
use std::time::Duration;

/// Case count for this suite, bounded by `PROPTEST_CASES` when set (CI sets
/// it so the property suites finish in seconds).
fn suite_cases(default_cases: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.trim().parse::<u32>().ok())
        .map_or(default_cases, |env| default_cases.min(env))
}

const NUM_WORKERS: usize = 3;

fn test_config() -> BspConfig {
    BspConfig {
        num_workers: NUM_WORKERS,
        ..BspConfig::default()
    }
}

fn test_graph() -> &'static CsrGraph {
    static GRAPH: OnceLock<CsrGraph> = OnceLock::new();
    GRAPH.get_or_init(|| generate_rmat(&RmatConfig::new(6, 4).with_seed(7)))
}

fn pagerank_params() -> PageRankParams {
    PageRankParams::with_epsilon(0.05, test_graph().num_vertices())
}

/// The in-memory reference bits every successful or retried drive must hit.
fn reference_bits() -> &'static Vec<u64> {
    static BITS: OnceLock<Vec<u64>> = OnceLock::new();
    BITS.get_or_init(|| {
        let engine = BspEngine::new(test_config());
        let result = engine.run(test_graph(), &PageRank::new(pagerank_params()));
        result.values.iter().map(|v| v.to_bits()).collect()
    })
}

/// All five fault kinds, selected by a discriminant draw (the vendored
/// proptest stand-in has no `prop_oneof!`).
fn fault_action() -> impl Strategy<Value = FaultAction> {
    (0u64..5, 0usize..8, 1usize..4).prop_map(|(which, keep, frames)| match which {
        0 => FaultAction::TruncateBody { keep },
        1 => FaultAction::PartialWrite { keep },
        2 => FaultAction::Delay { frames },
        3 => FaultAction::Duplicate,
        _ => FaultAction::Disconnect,
    })
}

fn direction() -> impl Strategy<Value = Direction> {
    (0u64..2).prop_map(|d| {
        if d == 0 {
            Direction::Inbound
        } else {
            Direction::Outbound
        }
    })
}

/// Strategy: one to three faults against frame indices early enough in the
/// episode to actually fire (the drive is a handful of supersteps).
fn fault_schedule() -> impl Strategy<Value = FaultSchedule> {
    prop::collection::vec((direction(), 0u64..10, fault_action()), 1..4).prop_map(|faults| {
        faults
            .into_iter()
            .fold(FaultSchedule::new(), |s, (d, i, a)| s.at(d, i, a))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(suite_cases(32)))]

    /// Any schedule, any worker: the drive returns (never hangs), a failure
    /// is a structured non-spawn `ClusterError`, a success is byte-identical
    /// to in-memory — and the clean retry afterwards always is.
    #[test]
    fn injected_faults_never_hang_and_clean_retry_matches(
        schedule in fault_schedule(),
        faulted_worker in 0usize..NUM_WORKERS,
    ) {
        let graph = test_graph();
        let config = test_config();
        let params = pagerank_params();
        let program = PageRank::new(params);
        let spec = ProgramSpec::PageRank { params };

        // A short deadline keeps starved drives (a Delay holding back a
        // frame the episode never replaces) quick; the driver must still
        // classify them as Timeout, not hang.
        let mut opts = DriveOptions::new(TransportKind::InProc);
        opts.timeout = Duration::from_millis(400);
        opts.endpoint_fault = Some((faulted_worker, schedule));

        match drive(&program, &spec, &[], graph, &config, &opts) {
            Ok(result) => {
                let bits: Vec<u64> = result.values.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(
                    &bits,
                    reference_bits(),
                    "an absorbed fault must not change the results"
                );
            }
            Err(err) => {
                prop_assert!(
                    !matches!(err, ClusterError::Spawn { .. }),
                    "faults surface as runtime errors, not spawn failures: {:?}",
                    err
                );
                prop_assert!(
                    !err.to_string().is_empty(),
                    "errors must render a message"
                );
            }
        }

        // The faulted group is never repooled, so the retry must see only
        // healthy workers and reproduce the in-memory bits exactly.
        let clean = DriveOptions::new(TransportKind::InProc);
        let retry = drive(&program, &spec, &[], graph, &config, &clean)
            .expect("clean retry after a faulted drive succeeds");
        let bits: Vec<u64> = retry.values.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(&bits, reference_bits(), "clean retry matches in-memory bits");
    }
}

/// The canned seeded schedules are platform-stable; pin one so a silent
/// change to the generator (which would re-map every recorded repro seed)
/// fails loudly.
#[test]
fn seeded_schedules_are_stable() {
    let a = FaultSchedule::seeded(42, 3, 10);
    let b = FaultSchedule::seeded(42, 3, 10);
    assert_eq!(a, b, "same seed, same schedule");
    assert!(!a.is_empty());
    assert_ne!(
        a,
        FaultSchedule::seeded(43, 3, 10),
        "different seeds diverge"
    );
}

/// A deterministic end-to-end repro of the nastiest single fault: the
/// faulted worker's very first outbound frame (its `INIT_OK`) is replaced
/// with a disconnect. The driver must name the worker rather than stall.
#[test]
fn disconnect_on_first_outbound_frame_names_the_worker() {
    let graph = test_graph();
    let config = test_config();
    let params = pagerank_params();
    let schedule = FaultSchedule::new().at(Direction::Outbound, 0, FaultAction::Disconnect);
    let mut opts = DriveOptions::new(TransportKind::InProc);
    opts.timeout = Duration::from_millis(400);
    opts.endpoint_fault = Some((1, schedule));
    let err = drive(
        &PageRank::new(params),
        &ProgramSpec::PageRank { params },
        &[],
        graph,
        &config,
        &opts,
    )
    .expect_err("a disconnected worker cannot complete a drive");
    match err {
        ClusterError::WorkerDied { worker, .. } => assert_eq!(worker, 1),
        ClusterError::Timeout { worker, .. } => assert_eq!(worker, 1),
        other => panic!("expected WorkerDied or Timeout for worker 1, got {other:?}"),
    }
}
