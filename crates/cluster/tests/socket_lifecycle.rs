//! Socket-transport lifecycle tests: what the driver reports when a socket
//! worker misbehaves *around* the protocol rather than inside it.
//!
//! Fake peers stand in for workers via [`Connection::from_socket_stream`],
//! so each failure mode is exact and repeatable: a peer that connects and
//! dies before `INIT` must surface as [`ClusterError::WorkerDied`], a peer
//! that connects and never speaks must surface as [`ClusterError::Timeout`],
//! and a group whose spawn fails partway must reap every process and socket
//! file it already created. (Stale socket-file reclaim on bind and the
//! two-drivers-one-path race are pinned by unit tests in
//! `src/socket.rs`.)
//!
//! Lives in `tests/` of the `predict_cluster` package so cargo builds the
//! `cluster_worker` binary first — the partial-failure tests spawn real
//! workers.

use predict_algorithms::{PageRank, PageRankParams};
use predict_bsp::BspConfig;
use predict_cluster::socket::fresh_socket_path;
use predict_cluster::{
    drive_on, ClusterError, Connection, DriveOptions, ProgramSpec, SocketListener, SocketStream,
    TransportKind, WorkerGroup,
};
use predict_graph::generators::{generate_rmat, RmatConfig};
use predict_graph::CsrGraph;
use std::sync::mpsc;
use std::time::Duration;

fn test_graph() -> CsrGraph {
    generate_rmat(&RmatConfig::new(7, 5).with_seed(3))
}

fn single_worker_config() -> BspConfig {
    BspConfig {
        num_workers: 1,
        ..BspConfig::default()
    }
}

/// Accepts one fake-peer connection on a fresh Unix socket and wraps it as a
/// one-worker group; `peer` runs on its own thread with the connected stream.
fn group_with_fake_peer(
    peer: impl FnOnce(SocketStream) + Send + 'static,
) -> (WorkerGroup, std::thread::JoinHandle<()>) {
    let path = fresh_socket_path(0);
    let listener = SocketListener::bind_unix(&path).expect("binding a fresh socket path");
    let addr = listener.connect_addr().expect("reading listener address");
    let handle = std::thread::spawn(move || {
        let stream =
            SocketStream::connect(&addr, Duration::from_secs(5)).expect("fake peer connects");
        peer(stream);
    });
    let stream = listener
        .accept_timeout(Duration::from_secs(5))
        .expect("accepting the fake peer");
    let conn = Connection::from_socket_stream(0, stream).expect("wrapping the accepted stream");
    let mut conn = Some(conn);
    let group = WorkerGroup::spawn_with(TransportKind::Socket, 1, |_| {
        Ok(conn.take().expect("single worker"))
    })
    .expect("building a one-connection group");
    // The listener (and with it the socket file) drops here; the accepted
    // stream stays live.
    drop(listener);
    let _ = std::fs::remove_file(&path);
    (group, handle)
}

/// A worker that connects and dies before ever answering `INIT` must be
/// reported as a death, not a timeout or a hang.
#[test]
fn peer_death_before_init_surfaces_as_worker_died() {
    let (group, handle) = group_with_fake_peer(|stream| {
        // Connect, then vanish: close both directions and exit.
        let _ = stream.shutdown();
    });

    let graph = test_graph();
    let params = PageRankParams::with_epsilon(0.01, graph.num_vertices());
    let opts = DriveOptions::new(TransportKind::Socket);
    let err = drive_on(
        &PageRank::new(params),
        &ProgramSpec::PageRank { params },
        &[],
        &graph,
        &single_worker_config(),
        &opts,
        group,
    )
    .expect_err("a dead peer cannot complete a drive");
    handle.join().expect("fake peer thread exits");

    match err {
        ClusterError::WorkerDied { worker, .. } => assert_eq!(worker, 0),
        other => panic!("expected WorkerDied, got {other:?}"),
    }
}

/// A worker that accepts the connection but never responds must trip the
/// driver's recv timeout — and be reported as a timeout, since the peer is
/// still alive.
#[test]
fn unresponsive_peer_surfaces_as_timeout() {
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let (group, handle) = group_with_fake_peer(move |stream| {
        // Hold the stream open without reading or writing until released.
        let _ = release_rx.recv();
        drop(stream);
    });

    let graph = test_graph();
    let params = PageRankParams::with_epsilon(0.01, graph.num_vertices());
    let mut opts = DriveOptions::new(TransportKind::Socket);
    opts.timeout = Duration::from_millis(300);
    let err = drive_on(
        &PageRank::new(params),
        &ProgramSpec::PageRank { params },
        &[],
        &graph,
        &single_worker_config(),
        &opts,
        group,
    )
    .expect_err("a mute peer cannot complete a drive");
    release_tx.send(()).expect("releasing the fake peer");
    handle.join().expect("fake peer thread exits");

    match err {
        ClusterError::Timeout {
            worker, timeout, ..
        } => {
            assert_eq!(worker, 0);
            assert_eq!(timeout, Duration::from_millis(300));
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
}

/// Waits for `/proc/<pid>` to disappear; panics if the process is still
/// around after ~2s. `Drop` kills *and reaps* children, so a clean group
/// teardown leaves no trace in the process table.
fn assert_process_gone(pid: u32) {
    let path = format!("/proc/{pid}");
    for _ in 0..200 {
        if !std::path::Path::new(&path).exists() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("worker process {pid} still exists after group spawn failure");
}

/// Pins the `WorkerGroup::spawn` partial-failure fix: when spawning worker N
/// fails, workers 0..N that already started must be killed and reaped, not
/// leaked.
#[test]
fn partial_spawn_failure_reaps_already_spawned_processes() {
    let mut pids = Vec::new();
    let group = WorkerGroup::spawn_with(TransportKind::Process, 3, |w| {
        if w == 2 {
            return Err(ClusterError::Spawn {
                worker: 2,
                detail: "injected spawn failure".into(),
            });
        }
        let conn = Connection::spawn_process(w)?;
        pids.push(conn.process_id().expect("process transport has a pid"));
        Ok(conn)
    });
    let err = match group {
        Err(e) => e,
        Ok(_) => panic!("factory failure must fail the group"),
    };

    match err {
        ClusterError::Spawn { worker, detail } => {
            assert_eq!(worker, 2);
            assert!(detail.contains("injected spawn failure"));
        }
        other => panic!("expected Spawn, got {other:?}"),
    }
    assert_eq!(pids.len(), 2, "two workers spawned before the failure");
    for pid in pids {
        assert_process_gone(pid);
    }
}

/// Same property for the socket backend, including its on-disk footprint: a
/// failed group must unlink every socket file its spawned workers bound.
#[test]
fn partial_spawn_failure_unlinks_socket_files() {
    let prefix = format!("predict-cw-{}-", std::process::id());
    let leftover_sockets = || -> Vec<std::path::PathBuf> {
        std::fs::read_dir(std::env::temp_dir())
            .expect("listing the temp dir")
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with(&prefix))
            })
            .collect()
    };

    let mut pids = Vec::new();
    let group = WorkerGroup::spawn_with(TransportKind::Socket, 3, |w| {
        if w == 2 {
            return Err(ClusterError::Spawn {
                worker: 2,
                detail: "injected spawn failure".into(),
            });
        }
        let conn = Connection::spawn_socket(w)?;
        pids.push(
            conn.process_id()
                .expect("socket transport spawns a process"),
        );
        Ok(conn)
    });
    let err = match group {
        Err(e) => e,
        Ok(_) => panic!("factory failure must fail the group"),
    };

    assert!(matches!(err, ClusterError::Spawn { worker: 2, .. }));
    assert_eq!(pids.len(), 2, "two workers spawned before the failure");
    for pid in pids {
        assert_process_gone(pid);
    }
    // Other tests in this binary create (and clean up) socket files with the
    // same pid prefix concurrently; poll briefly so a transient neighbor
    // doesn't read as a leak.
    let mut leftovers = leftover_sockets();
    for _ in 0..200 {
        if leftovers.is_empty() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
        leftovers = leftover_sockets();
    }
    assert!(
        leftovers.is_empty(),
        "socket files must be unlinked on group failure: {leftovers:?}"
    );
}
