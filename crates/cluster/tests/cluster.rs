//! End-to-end cluster tests: transported runs must be byte-identical to
//! in-memory runs, and worker failures must surface as structured errors.
//!
//! These live in `tests/` of the `predict_cluster` package (not in a
//! downstream crate) so cargo builds the `cluster_worker` binary before
//! running them — the Process-transport tests spawn it.

use predict_algorithms::{
    PageRank, PageRankParams, SemiClustering, SemiClusteringParams, TopKWorkload, Workload,
};
use predict_bsp::{BspConfig, BspEngine, HaltReason, TransportMode};
use predict_cluster::{
    drive, drive_on, run_workload, ClusterError, Connection, DriveOptions, FaultSpec, ProgramSpec,
    TransportKind, WorkerGroup,
};
use predict_graph::generators::{generate_rmat, RmatConfig};
use predict_graph::CsrGraph;
use std::time::Duration;

fn test_graph() -> CsrGraph {
    generate_rmat(&RmatConfig::new(8, 6).with_seed(11))
}

fn test_config() -> BspConfig {
    BspConfig {
        num_workers: 4,
        ..BspConfig::default()
    }
}

/// Drives `program` on both the in-memory engine and the given transport and
/// asserts byte-identical values, profiles and halt reasons.
fn assert_transport_matches_in_memory<P>(
    program: &P,
    spec: &ProgramSpec,
    graph: &CsrGraph,
    kind: TransportKind,
    value_bits: impl Fn(&P::VertexValue) -> Vec<u64>,
) where
    P: predict_bsp::VertexProgram,
    P::Message: predict_cluster::Wire,
    P::VertexValue: predict_cluster::Wire,
{
    let config = test_config();
    let engine = BspEngine::new(config.clone());
    let in_memory = engine.run(graph, program);

    let opts = DriveOptions::new(kind);
    let mut transported =
        drive(program, spec, &[], graph, &config, &opts).expect("cluster drive succeeds");

    assert_eq!(transported.halt_reason, in_memory.halt_reason);
    assert_eq!(transported.values.len(), in_memory.values.len());
    for (t, m) in transported.values.iter().zip(&in_memory.values) {
        assert_eq!(
            value_bits(t),
            value_bits(m),
            "values must match bit for bit"
        );
    }

    // The transported profile carries measured timings the in-memory profile
    // cannot have; everything else must be identical.
    let measured = transported
        .profile
        .measured
        .take()
        .expect("measured timings recorded");
    assert_eq!(transported.profile, in_memory.profile);
    assert_eq!(measured.transport, kind.name());
    assert_eq!(
        measured.supersteps.len(),
        transported.profile.supersteps.len()
    );
    assert!(measured.total_wall_ns > 0);
    assert!(
        measured
            .supersteps
            .iter()
            .any(|s| s.wire_bytes.iter().sum::<u64>() > 0),
        "a multi-worker run moves bytes over the wire"
    );
    for s in &measured.supersteps {
        assert_eq!(s.worker_compute_ns.len(), config.num_workers);
        assert_eq!(s.wire_bytes.len(), config.num_workers);
    }
}

#[test]
fn pagerank_inproc_is_byte_identical_to_in_memory() {
    let graph = test_graph();
    let params = PageRankParams::with_epsilon(0.01, graph.num_vertices());
    assert_transport_matches_in_memory(
        &PageRank::new(params),
        &ProgramSpec::PageRank { params },
        &graph,
        TransportKind::InProc,
        |v: &f64| vec![v.to_bits()],
    );
}

#[test]
fn pagerank_process_is_byte_identical_to_in_memory() {
    let graph = test_graph();
    let params = PageRankParams::with_epsilon(0.01, graph.num_vertices());
    assert_transport_matches_in_memory(
        &PageRank::new(params),
        &ProgramSpec::PageRank { params },
        &graph,
        TransportKind::Process,
        |v: &f64| vec![v.to_bits()],
    );
}

#[test]
fn pagerank_socket_is_byte_identical_to_in_memory() {
    let graph = test_graph();
    let params = PageRankParams::with_epsilon(0.01, graph.num_vertices());
    assert_transport_matches_in_memory(
        &PageRank::new(params),
        &ProgramSpec::PageRank { params },
        &graph,
        TransportKind::Socket,
        |v: &f64| vec![v.to_bits()],
    );
}

/// Loopback TCP rides the same stream abstraction as Unix sockets; a drive
/// over a hand-spawned TCP group must still match the in-memory run bit for
/// bit.
#[test]
fn pagerank_tcp_loopback_is_byte_identical_to_in_memory() {
    let graph = test_graph();
    let config = test_config();
    let params = PageRankParams::with_epsilon(0.01, graph.num_vertices());
    let program = PageRank::new(params);

    let engine = BspEngine::new(config.clone());
    let in_memory = engine.run(&graph, &program);

    let group = WorkerGroup::spawn_with(
        TransportKind::Socket,
        config.num_workers,
        Connection::spawn_socket_tcp,
    )
    .expect("TCP worker group spawns");
    let transported = drive_on(
        &program,
        &ProgramSpec::PageRank { params },
        &[],
        &graph,
        &config,
        &DriveOptions::new(TransportKind::Socket),
        group,
    )
    .expect("TCP drive succeeds");

    assert_eq!(transported.halt_reason, in_memory.halt_reason);
    let bits = |vals: &[f64]| vals.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&transported.values), bits(&in_memory.values));
}

/// Semi-clustering exercises variable-size messages (vectors of cluster
/// structs) and runs on the undirected graph, like its workload does.
fn semi_cluster_bits(v: &predict_algorithms::SemiClusterList) -> Vec<u64> {
    let mut bits = Vec::new();
    for c in &v.clusters {
        bits.push(c.vertices.len() as u64);
        bits.extend(c.vertices.iter().map(|&x| x as u64));
        bits.push(c.internal_weight.to_bits());
        bits.push(c.boundary_weight.to_bits());
    }
    bits
}

#[test]
fn semi_clustering_inproc_is_byte_identical_to_in_memory() {
    let graph = predict_algorithms::to_undirected(&test_graph());
    let params = SemiClusteringParams::default();
    assert_transport_matches_in_memory(
        &SemiClustering::new(params),
        &ProgramSpec::SemiClustering { params },
        &graph,
        TransportKind::InProc,
        semi_cluster_bits,
    );
}

#[test]
fn semi_clustering_process_is_byte_identical_to_in_memory() {
    let graph = predict_algorithms::to_undirected(&test_graph());
    let params = SemiClusteringParams::default();
    assert_transport_matches_in_memory(
        &SemiClustering::new(params),
        &ProgramSpec::SemiClustering { params },
        &graph,
        TransportKind::Process,
        semi_cluster_bits,
    );
}

#[test]
fn semi_clustering_socket_is_byte_identical_to_in_memory() {
    let graph = predict_algorithms::to_undirected(&test_graph());
    let params = SemiClusteringParams::default();
    assert_transport_matches_in_memory(
        &SemiClustering::new(params),
        &ProgramSpec::SemiClustering { params },
        &graph,
        TransportKind::Socket,
        semi_cluster_bits,
    );
}

/// The workload-level entry point must agree with `Workload::run` for a
/// two-phase workload (TOP-K: PageRank pre-pass feeding the ranking phase),
/// and must count both phases as engine runs like the in-memory path does.
#[test]
fn topk_workload_runs_identically_over_the_cluster() {
    let graph = test_graph();
    let workload = TopKWorkload::default();

    let in_memory_engine = BspEngine::new(test_config());
    let in_memory = workload.run(&in_memory_engine, &graph);

    let cluster_engine = BspEngine::new(BspConfig {
        transport: TransportMode::InProc,
        ..test_config()
    });
    let transported =
        run_workload(&cluster_engine, &workload, &graph, None).expect("cluster run succeeds");

    assert_eq!(transported.halt_reason, in_memory.halt_reason);
    let mut profile = transported.profile;
    assert!(profile.measured.take().is_some());
    assert_eq!(profile, in_memory.profile);
    assert_eq!(
        cluster_engine.runs_executed(),
        in_memory_engine.runs_executed(),
        "both executors must count the pre-pass and the ranking phase"
    );
}

#[test]
fn crashed_process_worker_reports_superstep_and_stderr() {
    let graph = test_graph();
    let params = PageRankParams::with_epsilon(0.01, graph.num_vertices());
    let opts = DriveOptions {
        fault: Some((
            2,
            FaultSpec {
                crash_at: Some(1),
                hang_at: None,
            },
        )),
        ..DriveOptions::new(TransportKind::Process)
    };
    let err = drive(
        &PageRank::new(params),
        &ProgramSpec::PageRank { params },
        &[],
        &graph,
        &test_config(),
        &opts,
    )
    .expect_err("a crashed worker must fail the drive");
    match err {
        ClusterError::WorkerDied {
            worker,
            superstep,
            stderr_tail,
        } => {
            assert_eq!(worker, 2);
            assert_eq!(superstep, Some(1));
            assert!(
                stderr_tail.contains("injected crash at superstep 1"),
                "stderr tail must quote the worker's last words, got: {stderr_tail:?}"
            );
        }
        other => panic!("expected WorkerDied, got: {other}"),
    }
}

#[test]
fn crashed_socket_worker_reports_superstep_and_stderr() {
    let graph = test_graph();
    let params = PageRankParams::with_epsilon(0.01, graph.num_vertices());
    let opts = DriveOptions {
        fault: Some((
            3,
            FaultSpec {
                crash_at: Some(1),
                hang_at: None,
            },
        )),
        ..DriveOptions::new(TransportKind::Socket)
    };
    let err = drive(
        &PageRank::new(params),
        &ProgramSpec::PageRank { params },
        &[],
        &graph,
        &test_config(),
        &opts,
    )
    .expect_err("a crashed worker must fail the drive");
    match err {
        ClusterError::WorkerDied {
            worker,
            superstep,
            stderr_tail,
        } => {
            assert_eq!(worker, 3);
            assert_eq!(superstep, Some(1));
            assert!(
                stderr_tail.contains("injected crash at superstep 1"),
                "stderr tail must quote the worker's last words, got: {stderr_tail:?}"
            );
        }
        other => panic!("expected WorkerDied, got: {other}"),
    }
}

#[test]
fn crashed_inproc_worker_reports_a_death_too() {
    let graph = test_graph();
    let params = PageRankParams::with_epsilon(0.01, graph.num_vertices());
    let opts = DriveOptions {
        fault: Some((
            0,
            FaultSpec {
                crash_at: Some(0),
                hang_at: None,
            },
        )),
        ..DriveOptions::new(TransportKind::InProc)
    };
    let err = drive(
        &PageRank::new(params),
        &ProgramSpec::PageRank { params },
        &[],
        &graph,
        &test_config(),
        &opts,
    )
    .expect_err("a crashed worker must fail the drive");
    assert!(
        matches!(
            err,
            ClusterError::WorkerDied {
                worker: 0,
                superstep: Some(0),
                ..
            }
        ),
        "expected WorkerDied at superstep 0, got: {err}"
    );
}

#[test]
fn hung_worker_times_out_instead_of_hanging_the_driver() {
    let graph = test_graph();
    let params = PageRankParams::with_epsilon(0.01, graph.num_vertices());
    let opts = DriveOptions {
        timeout: Duration::from_millis(250),
        fault: Some((
            1,
            FaultSpec {
                crash_at: None,
                hang_at: Some(1),
            },
        )),
        ..DriveOptions::new(TransportKind::InProc)
    };
    let err = drive(
        &PageRank::new(params),
        &ProgramSpec::PageRank { params },
        &[],
        &graph,
        &test_config(),
        &opts,
    )
    .expect_err("a hung worker must time the drive out");
    match err {
        ClusterError::Timeout {
            worker, superstep, ..
        } => {
            assert_eq!(worker, 1);
            assert_eq!(superstep, Some(1));
        }
        other => panic!("expected Timeout, got: {other}"),
    }
}

/// Sanity: runs converge for the configured graph (guards against a silent
/// max-supersteps truncation making the identity tests vacuous).
#[test]
fn test_runs_actually_converge() {
    let graph = test_graph();
    let params = PageRankParams::with_epsilon(0.01, graph.num_vertices());
    let engine = BspEngine::new(test_config());
    let result = engine.run(&graph, &PageRank::new(params));
    assert_eq!(result.halt_reason, HaltReason::MasterConverged);
    assert!(result.profile.supersteps.len() > 2);
}
