//! Driver-side transports: in-process worker threads, worker OS processes
//! over pipes, and worker OS processes over sockets.
//!
//! A [`Connection`] is the driver's handle to one worker. Every backend
//! exposes the same three operations — send a frame, receive a frame with a
//! deadline, read the worker's stderr tail — so the cluster driver
//! ([`crate::driver`]) is transport-agnostic:
//!
//! * [`TransportKind::InProc`] spawns a thread running the same serve loop
//!   the worker binary runs, connected by mpsc channel pairs. A panicking or
//!   crashing worker drops its sender, which the driver observes as a
//!   disconnect — the thread-level analogue of a dead process.
//! * [`TransportKind::Process`] spawns a long-lived `cluster_worker` OS
//!   process and speaks the framed protocol over its stdin/stdout. A reader
//!   thread pumps stdout frames into a channel (so receives can time out
//!   without platform-specific pipe tricks) and a second thread tails stderr
//!   into a bounded ring buffer that failure reports quote.
//! * [`TransportKind::Socket`] spawns the same binary pointed at a
//!   per-worker Unix-domain socket (`cluster_worker --socket <path>`); the
//!   driver binds and accepts with a deadline, then the identical
//!   pump/ring/frame machinery runs over the socket stream. A loopback TCP
//!   variant ([`Connection::spawn_socket_tcp`]) rides the same code path
//!   through [`SocketStream`].
//!
//! Workers survive across runs — after serving one episode they loop back to
//! waiting for the next `Init` — so [`WorkerGroup`]s are pooled globally,
//! keyed by `(kind, num_workers)`, and process/socket spawn cost is paid
//! once, not per prediction run. A group that errors is dropped, never
//! re-pooled.

use crate::endpoint::{ChannelEndpoint, Frame};
use crate::error::ClusterError;
use crate::fault::{FaultEndpoint, FaultSchedule};
use crate::socket::{fresh_socket_path, SocketListener, SocketStream, ACCEPT_TIMEOUT};
use crate::worker::serve;
use predict_bsp::TransportChoice;
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use crate::protocol::{read_frame, tag, write_frame};

/// Lines of worker stderr kept for failure reports.
const STDERR_TAIL_LINES: usize = 40;

/// Which backend a [`Connection`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransportKind {
    /// Worker threads in this process, talking over channels.
    InProc,
    /// Worker OS processes, talking over stdin/stdout pipes.
    Process,
    /// Worker OS processes, talking over Unix-domain socket streams.
    Socket,
}

impl TransportKind {
    /// Maps a resolved env-knob choice to a transport kind; `InMemory` has
    /// no transport and returns `None`.
    pub fn from_choice(choice: TransportChoice) -> Option<Self> {
        match choice {
            TransportChoice::InMemory => None,
            TransportChoice::InProc => Some(Self::InProc),
            TransportChoice::Process => Some(Self::Process),
            TransportChoice::Socket => Some(Self::Socket),
        }
    }

    /// Lower-case name used in profiles and reports.
    pub fn name(self) -> &'static str {
        match self {
            Self::InProc => "inproc",
            Self::Process => "process",
            Self::Socket => "socket",
        }
    }
}

/// Bounded ring buffer of a worker process's stderr lines.
#[derive(Default)]
struct StderrRing {
    lines: VecDeque<String>,
}

impl StderrRing {
    fn push(&mut self, line: String) {
        if self.lines.len() == STDERR_TAIL_LINES {
            self.lines.pop_front();
        }
        self.lines.push_back(line);
    }

    fn tail(&self) -> String {
        self.lines.iter().cloned().collect::<Vec<_>>().join("\n")
    }
}

/// The driver's handle to one worker.
pub struct Connection {
    worker: usize,
    inner: ConnInner,
}

enum ConnInner {
    InProc {
        tx: Sender<Frame>,
        rx: Receiver<Frame>,
    },
    Process {
        child: Child,
        stdin: BufWriter<ChildStdin>,
        /// Frames pumped off the child's stdout; the pump thread closes the
        /// channel on EOF or read error.
        rx: Receiver<Frame>,
        stderr: Arc<Mutex<StderrRing>>,
    },
    Socket {
        /// The worker process, when this connection spawned one (`None` for
        /// connections built from a raw accepted stream in tests).
        child: Option<Child>,
        writer: BufWriter<SocketStream>,
        /// A second handle to the stream, shut down on drop to unblock the
        /// pump thread.
        stream: SocketStream,
        /// Frames pumped off the socket; closed on EOF or read error.
        rx: Receiver<Frame>,
        stderr: Arc<Mutex<StderrRing>>,
        /// Socket file unlinked on drop (`None` for TCP).
        path: Option<PathBuf>,
    },
}

impl Connection {
    /// Spawns an in-process worker thread serving the standard loop.
    pub fn spawn_inproc(worker: usize) -> Self {
        Self::spawn_inproc_with(worker, None)
    }

    /// Spawns an in-process worker whose endpoint is wrapped in a
    /// deterministic [`FaultSchedule`] — the repeatable-saboteur variant
    /// the fault-injection battery drives.
    pub fn spawn_inproc_faulty(worker: usize, schedule: FaultSchedule) -> Self {
        Self::spawn_inproc_with(worker, Some(schedule))
    }

    fn spawn_inproc_with(worker: usize, schedule: Option<FaultSchedule>) -> Self {
        let (to_worker, worker_rx) = mpsc::channel::<Frame>();
        let (worker_tx, from_worker) = mpsc::channel::<Frame>();
        std::thread::Builder::new()
            .name(format!("cluster-worker-{worker}"))
            .spawn(move || {
                let ep = ChannelEndpoint {
                    rx: worker_rx,
                    tx: worker_tx,
                };
                // An Err return just drops the endpoint: the driver sees a
                // disconnect, exactly like a process death.
                match schedule {
                    Some(schedule) => {
                        let _ = serve(&mut FaultEndpoint::new(ep, schedule), false);
                    }
                    None => {
                        let mut ep = ep;
                        let _ = serve(&mut ep, false);
                    }
                }
            })
            .expect("spawning an OS thread");
        Self {
            worker,
            inner: ConnInner::InProc {
                tx: to_worker,
                rx: from_worker,
            },
        }
    }

    /// Spawns a `cluster_worker` process and wires up its pipes.
    pub fn spawn_process(worker: usize) -> Result<Self, ClusterError> {
        let bin = worker_bin_path().map_err(|detail| ClusterError::Spawn { worker, detail })?;
        let mut child = Command::new(&bin)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .map_err(|e| ClusterError::Spawn {
                worker,
                detail: format!("{}: {e}", bin.display()),
            })?;
        let stdin = BufWriter::new(child.stdin.take().expect("piped stdin"));
        let stdout = child.stdout.take().expect("piped stdout");
        let child_stderr = child.stderr.take().expect("piped stderr");

        let (frame_tx, rx) = mpsc::channel::<Frame>();
        std::thread::Builder::new()
            .name(format!("cluster-stdout-{worker}"))
            .spawn(move || {
                let mut reader = BufReader::new(stdout);
                while let Ok(Some(frame)) = read_frame(&mut reader) {
                    if frame_tx.send(frame).is_err() {
                        break; // driver dropped the connection
                    }
                }
                // EOF or read error: dropping frame_tx signals disconnect.
            })
            .expect("spawning an OS thread");

        let stderr = Arc::new(Mutex::new(StderrRing::default()));
        let ring = Arc::clone(&stderr);
        std::thread::Builder::new()
            .name(format!("cluster-stderr-{worker}"))
            .spawn(move || {
                for line in BufReader::new(child_stderr).lines() {
                    match line {
                        Ok(line) => ring.lock().unwrap().push(line),
                        Err(_) => break,
                    }
                }
            })
            .expect("spawning an OS thread");

        Ok(Self {
            worker,
            inner: ConnInner::Process {
                child,
                stdin,
                rx,
                stderr,
            },
        })
    }

    /// Spawns a `cluster_worker` process connected over a fresh Unix-domain
    /// socket: bind, spawn `cluster_worker --socket <path>`, accept with a
    /// deadline.
    pub fn spawn_socket(worker: usize) -> Result<Self, ClusterError> {
        let path = fresh_socket_path(worker);
        let listener = SocketListener::bind_unix(&path).map_err(|e| ClusterError::Spawn {
            worker,
            detail: format!("binding {}: {e}", path.display()),
        })?;
        Self::spawn_socket_on(worker, listener, "--socket")
    }

    /// Spawns a `cluster_worker` process connected over loopback TCP — the
    /// same frame stream on the other address family.
    pub fn spawn_socket_tcp(worker: usize) -> Result<Self, ClusterError> {
        let listener = SocketListener::bind_tcp_loopback().map_err(|e| ClusterError::Spawn {
            worker,
            detail: format!("binding loopback TCP: {e}"),
        })?;
        Self::spawn_socket_on(worker, listener, "--tcp")
    }

    fn spawn_socket_on(
        worker: usize,
        listener: SocketListener,
        flag: &str,
    ) -> Result<Self, ClusterError> {
        let path = listener.unix_path().map(PathBuf::from);
        let addr = listener.connect_addr().map_err(|e| ClusterError::Spawn {
            worker,
            detail: format!("reading listener address: {e}"),
        })?;
        let cleanup_path = |path: &Option<PathBuf>| {
            if let Some(p) = path {
                let _ = std::fs::remove_file(p);
            }
        };
        let bin = worker_bin_path().map_err(|detail| {
            cleanup_path(&path);
            ClusterError::Spawn { worker, detail }
        })?;
        let mut child = Command::new(&bin)
            .arg(flag)
            .arg(&addr)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .map_err(|e| {
                cleanup_path(&path);
                ClusterError::Spawn {
                    worker,
                    detail: format!("{}: {e}", bin.display()),
                }
            })?;
        let child_stderr = child.stderr.take().expect("piped stderr");
        let stderr = Arc::new(Mutex::new(StderrRing::default()));
        let ring = Arc::clone(&stderr);
        std::thread::Builder::new()
            .name(format!("cluster-stderr-{worker}"))
            .spawn(move || {
                for line in BufReader::new(child_stderr).lines() {
                    match line {
                        Ok(line) => ring.lock().unwrap().push(line),
                        Err(_) => break,
                    }
                }
            })
            .expect("spawning an OS thread");

        // The worker was told where to connect; give it ACCEPT_TIMEOUT to
        // show up, then clean up the child we spawned for nothing.
        let stream = match listener.accept_timeout(ACCEPT_TIMEOUT) {
            Ok(stream) => stream,
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                cleanup_path(&path);
                return Err(ClusterError::Spawn {
                    worker,
                    detail: format!(
                        "worker never connected to {addr}: {e}; stderr tail:\n{}",
                        stderr.lock().unwrap().tail()
                    ),
                });
            }
        };
        Self::from_stream(worker, stream, Some(child), stderr, path)
    }

    /// Wraps an already-accepted socket stream as a connection with no
    /// child process behind it — lifecycle tests use this to play the
    /// driver against hand-rolled fake workers.
    pub fn from_socket_stream(worker: usize, stream: SocketStream) -> Result<Self, ClusterError> {
        Self::from_stream(
            worker,
            stream,
            None,
            Arc::new(Mutex::new(StderrRing::default())),
            None,
        )
    }

    fn from_stream(
        worker: usize,
        stream: SocketStream,
        child: Option<Child>,
        stderr: Arc<Mutex<StderrRing>>,
        path: Option<PathBuf>,
    ) -> Result<Self, ClusterError> {
        let reader = stream.try_clone().map_err(|e| ClusterError::Spawn {
            worker,
            detail: format!("cloning socket stream: {e}"),
        })?;
        let writer = stream.try_clone().map_err(|e| ClusterError::Spawn {
            worker,
            detail: format!("cloning socket stream: {e}"),
        })?;
        let (frame_tx, rx) = mpsc::channel::<Frame>();
        std::thread::Builder::new()
            .name(format!("cluster-socket-{worker}"))
            .spawn(move || {
                let mut reader = BufReader::new(reader);
                while let Ok(Some(frame)) = read_frame(&mut reader) {
                    if frame_tx.send(frame).is_err() {
                        break; // driver dropped the connection
                    }
                }
                // EOF or read error: dropping frame_tx signals disconnect.
            })
            .expect("spawning an OS thread");
        Ok(Self {
            worker,
            inner: ConnInner::Socket {
                child,
                writer: BufWriter::new(writer),
                stream,
                rx,
                stderr,
                path,
            },
        })
    }

    /// Worker index this connection leads to.
    pub fn worker(&self) -> usize {
        self.worker
    }

    /// Last lines of the worker's stderr (always empty for in-process
    /// workers, which share the driver's stderr).
    pub fn stderr_tail(&self) -> String {
        match &self.inner {
            ConnInner::InProc { .. } => String::new(),
            ConnInner::Process { stderr, .. } | ConnInner::Socket { stderr, .. } => {
                stderr.lock().unwrap().tail()
            }
        }
    }

    /// OS process id of the worker, when one exists (process and socket
    /// backends). Lets tests verify spawn-failure cleanup actually reaped
    /// the children.
    pub fn process_id(&self) -> Option<u32> {
        match &self.inner {
            ConnInner::InProc { .. } => None,
            ConnInner::Process { child, .. } => Some(child.id()),
            ConnInner::Socket { child, .. } => child.as_ref().map(Child::id),
        }
    }

    /// Sends one frame to the worker. A send failure means the worker is
    /// gone and is reported as [`ClusterError::WorkerDied`].
    pub fn send(&mut self, tag: u8, body: &[u8]) -> Result<(), ClusterError> {
        let sent = match &mut self.inner {
            ConnInner::InProc { tx, .. } => tx.send((tag, body.to_vec())).is_ok(),
            ConnInner::Process { stdin, .. } => write_frame(stdin, tag, body).is_ok(),
            ConnInner::Socket { writer, .. } => write_frame(writer, tag, body).is_ok(),
        };
        if sent {
            Ok(())
        } else {
            Err(ClusterError::WorkerDied {
                worker: self.worker,
                superstep: None,
                stderr_tail: self.stderr_tail(),
            })
        }
    }

    /// Receives the next frame, waiting at most `timeout`.
    ///
    /// A disconnect (dead process, panicked thread) is
    /// [`ClusterError::WorkerDied`]; an elapsed deadline with the worker
    /// still alive is [`ClusterError::Timeout`] — for processes the child is
    /// polled to tell the two apart. Both carry the stderr tail.
    pub fn recv(&mut self, timeout: Duration) -> Result<Frame, ClusterError> {
        let received = match &self.inner {
            ConnInner::InProc { rx, .. } => rx.recv_timeout(timeout),
            ConnInner::Process { rx, .. } => rx.recv_timeout(timeout),
            ConnInner::Socket { rx, .. } => rx.recv_timeout(timeout),
        };
        match received {
            Ok(frame) => Ok(frame),
            Err(RecvTimeoutError::Disconnected) => Err(ClusterError::WorkerDied {
                worker: self.worker,
                superstep: None,
                stderr_tail: self.stderr_tail(),
            }),
            Err(RecvTimeoutError::Timeout) => {
                // A process that died instants ago may still race the pump
                // thread; report a death as a death, not a timeout.
                let child = match &mut self.inner {
                    ConnInner::Process { child, .. } => Some(child),
                    ConnInner::Socket { child, .. } => child.as_mut(),
                    ConnInner::InProc { .. } => None,
                };
                if let Some(child) = child {
                    if matches!(child.try_wait(), Ok(Some(_))) {
                        return Err(ClusterError::WorkerDied {
                            worker: self.worker,
                            superstep: None,
                            stderr_tail: self.stderr_tail(),
                        });
                    }
                }
                Err(ClusterError::Timeout {
                    worker: self.worker,
                    superstep: None,
                    timeout,
                    stderr_tail: self.stderr_tail(),
                })
            }
        }
    }
}

impl Drop for Connection {
    fn drop(&mut self) {
        match &mut self.inner {
            ConnInner::InProc { tx, .. } => {
                // Ask the thread to exit; if it already died this is a no-op.
                let _ = tx.send((tag::SHUTDOWN, Vec::new()));
            }
            ConnInner::Process { child, stdin, .. } => {
                let _ = write_frame(stdin, tag::SHUTDOWN, &[]);
                let _ = stdin.flush();
                // Give the process no reason to linger: kill unconditionally
                // (a worker that honored Shutdown is already gone) and reap.
                let _ = child.kill();
                let _ = child.wait();
            }
            ConnInner::Socket {
                child,
                writer,
                stream,
                path,
                ..
            } => {
                let _ = write_frame(writer, tag::SHUTDOWN, &[]);
                let _ = writer.flush();
                // Unblock the pump thread's read, then reap and unlink.
                let _ = stream.shutdown();
                if let Some(child) = child {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                if let Some(path) = path {
                    let _ = std::fs::remove_file(path);
                }
            }
        }
    }
}

/// Locates the `cluster_worker` binary.
///
/// `PREDICT_CLUSTER_WORKER` overrides explicitly; otherwise the binary is
/// expected next to the current executable or one directory up — which
/// covers both `target/<profile>/` (bins, examples) and
/// `target/<profile>/deps/` (test binaries).
pub fn worker_bin_path() -> Result<PathBuf, String> {
    if let Some(path) = std::env::var_os("PREDICT_CLUSTER_WORKER") {
        let path = PathBuf::from(path);
        return if path.is_file() {
            Ok(path)
        } else {
            Err(format!(
                "PREDICT_CLUSTER_WORKER points to a missing file: {}",
                path.display()
            ))
        };
    }
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate current exe: {e}"))?;
    let name = format!("cluster_worker{}", std::env::consts::EXE_SUFFIX);
    let mut dir = exe.parent();
    for _ in 0..2 {
        if let Some(d) = dir {
            let candidate = d.join(&name);
            if candidate.is_file() {
                return Ok(candidate);
            }
            dir = d.parent();
        }
    }
    Err(format!(
        "no {name} binary found near {} (build it with `cargo build -p predict_cluster` \
         or set PREDICT_CLUSTER_WORKER)",
        exe.display()
    ))
}

/// A full set of worker connections for one cluster drive, one per worker,
/// in worker order.
pub struct WorkerGroup {
    kind: TransportKind,
    /// One connection per worker, ascending worker index.
    pub connections: Vec<Connection>,
}

impl WorkerGroup {
    /// Spawns a fresh group of `num_workers` workers on `kind`.
    pub fn spawn(kind: TransportKind, num_workers: usize) -> Result<Self, ClusterError> {
        Self::spawn_with(kind, num_workers, |w| match kind {
            TransportKind::InProc => Ok(Connection::spawn_inproc(w)),
            TransportKind::Process => Connection::spawn_process(w),
            TransportKind::Socket => Connection::spawn_socket(w),
        })
    }

    /// Spawns a group through `factory` (one call per worker index,
    /// ascending). If worker `k` of `N` fails to spawn, the `k` workers
    /// already running are shut down and reaped before the error is
    /// returned — a failed group never leaks processes, threads or socket
    /// files.
    pub fn spawn_with(
        kind: TransportKind,
        num_workers: usize,
        mut factory: impl FnMut(usize) -> Result<Connection, ClusterError>,
    ) -> Result<Self, ClusterError> {
        let mut connections = Vec::with_capacity(num_workers);
        for w in 0..num_workers {
            match factory(w) {
                Ok(conn) => connections.push(conn),
                Err(e) => {
                    // Tear down in reverse spawn order; Connection::drop
                    // sends Shutdown, kills and reaps each worker.
                    while let Some(conn) = connections.pop() {
                        drop(conn);
                    }
                    return Err(e);
                }
            }
        }
        Ok(Self { kind, connections })
    }

    /// The backend this group runs on.
    pub fn kind(&self) -> TransportKind {
        self.kind
    }
}

/// Global pool of idle worker groups, keyed by `(kind, num_workers)`.
///
/// Workers loop back to awaiting `Init` after each episode, so a checked-in
/// group is immediately reusable. Groups that errored mid-drive must be
/// dropped (their protocol state is unknown), which the driver does by
/// simply not checking them back in.
type GroupPool = Mutex<HashMap<(TransportKind, usize), Vec<WorkerGroup>>>;

fn pool() -> &'static GroupPool {
    static POOL: OnceLock<GroupPool> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Takes an idle group from the pool, or spawns a fresh one.
pub fn checkout(kind: TransportKind, num_workers: usize) -> Result<WorkerGroup, ClusterError> {
    let pooled = pool()
        .lock()
        .unwrap()
        .get_mut(&(kind, num_workers))
        .and_then(Vec::pop);
    match pooled {
        Some(group) => Ok(group),
        None => WorkerGroup::spawn(kind, num_workers),
    }
}

/// Returns a healthy group to the pool for the next drive to reuse.
pub fn checkin(group: WorkerGroup) {
    let key = (group.kind, group.connections.len());
    pool().lock().unwrap().entry(key).or_default().push(group);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stderr_ring_keeps_only_the_tail() {
        let mut ring = StderrRing::default();
        for i in 0..(STDERR_TAIL_LINES + 5) {
            ring.push(format!("line {i}"));
        }
        let tail = ring.tail();
        assert!(!tail.contains("line 0\n"));
        assert!(tail.ends_with(&format!("line {}", STDERR_TAIL_LINES + 4)));
        assert_eq!(tail.lines().count(), STDERR_TAIL_LINES);
    }

    #[test]
    fn inproc_worker_disconnect_is_a_death_not_a_timeout() {
        let mut conn = Connection::spawn_inproc(2);
        // An unknown tag makes the worker error out and drop its endpoint.
        conn.send(0x66, &[]).unwrap();
        let err = loop {
            match conn.recv(Duration::from_secs(5)) {
                Ok(_) => continue, // drain the Error frame the worker sends
                Err(e) => break e,
            }
        };
        match err {
            ClusterError::WorkerDied {
                worker,
                superstep,
                stderr_tail,
            } => {
                assert_eq!(worker, 2);
                assert_eq!(superstep, None);
                assert!(stderr_tail.is_empty());
            }
            other => panic!("expected WorkerDied, got {other:?}"),
        }
    }

    #[test]
    fn checkout_prefers_pooled_groups() {
        let group = WorkerGroup::spawn(TransportKind::InProc, 3).unwrap();
        checkin(group);
        let group = checkout(TransportKind::InProc, 3).unwrap();
        assert_eq!(group.connections.len(), 3);
        assert_eq!(group.kind(), TransportKind::InProc);
    }
}
