//! The worker's view of its transport: a bidirectional frame pipe.
//!
//! [`Endpoint`] is everything the serve loop ([`crate::worker`]) knows about
//! the outside world — send a frame, receive a frame. A standalone worker
//! process serves a [`StdioEndpoint`] (frames over stdin/stdout, which is
//! why the worker never prints to stdout); an in-process worker thread
//! serves a [`ChannelEndpoint`] (frames over a pair of mpsc channels). The
//! serve loop is byte-for-byte the same code either way, which is the point:
//! the process boundary is a property of the transport, not of the worker.

use crate::protocol::{read_frame, write_frame};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::sync::mpsc::{Receiver, Sender};

/// One frame: protocol tag plus body bytes.
pub type Frame = (u8, Vec<u8>);

/// A worker's bidirectional frame pipe to its driver.
pub trait Endpoint {
    /// Sends one frame. An error means the driver is unreachable; the worker
    /// should exit.
    fn send(&mut self, tag: u8, body: &[u8]) -> io::Result<()>;

    /// Receives the next frame, blocking. `Ok(None)` is a clean close (the
    /// driver hung up between frames): the worker should exit quietly.
    fn recv(&mut self) -> io::Result<Option<Frame>>;
}

/// Frames over a `Read`/`Write` pair — stdin/stdout for the
/// `cluster_worker` binary, or any in-memory pair in tests.
pub struct StdioEndpoint<R: Read, W: Write> {
    reader: BufReader<R>,
    writer: BufWriter<W>,
}

impl<R: Read, W: Write> StdioEndpoint<R, W> {
    /// Wraps a raw read/write pair in buffered frame I/O.
    pub fn new(reader: R, writer: W) -> Self {
        Self {
            reader: BufReader::new(reader),
            writer: BufWriter::new(writer),
        }
    }
}

impl<R: Read, W: Write> Endpoint for StdioEndpoint<R, W> {
    fn send(&mut self, tag: u8, body: &[u8]) -> io::Result<()> {
        write_frame(&mut self.writer, tag, body)
    }

    fn recv(&mut self) -> io::Result<Option<Frame>> {
        read_frame(&mut self.reader)
    }
}

/// Frames over an mpsc channel pair — the in-process transport. A dropped
/// peer reads as a clean close on `recv` and a broken pipe on `send`,
/// mirroring how a dead process behaves on a real pipe.
pub struct ChannelEndpoint {
    /// Frames from the driver.
    pub rx: Receiver<Frame>,
    /// Frames to the driver.
    pub tx: Sender<Frame>,
}

impl Endpoint for ChannelEndpoint {
    fn send(&mut self, tag: u8, body: &[u8]) -> io::Result<()> {
        self.tx
            .send((tag, body.to_vec()))
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "driver hung up"))
    }

    fn recv(&mut self) -> io::Result<Option<Frame>> {
        Ok(self.rx.recv().ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::tag;
    use std::sync::mpsc;

    #[test]
    fn channel_endpoint_round_trips_frames() {
        let (to_worker, from_driver) = mpsc::channel();
        let (to_driver, from_worker) = mpsc::channel();
        let mut ep = ChannelEndpoint {
            rx: from_driver,
            tx: to_driver,
        };
        to_worker.send((tag::STEP, vec![1, 2, 3])).unwrap();
        assert_eq!(ep.recv().unwrap(), Some((tag::STEP, vec![1, 2, 3])));
        ep.send(tag::STEP_DONE, &[9]).unwrap();
        assert_eq!(from_worker.recv().unwrap(), (tag::STEP_DONE, vec![9]));
    }

    #[test]
    fn channel_endpoint_reports_hangup_cleanly() {
        let (to_driver, from_worker) = mpsc::channel();
        let (_unused_tx, from_driver) = mpsc::channel::<Frame>();
        drop(from_worker);
        let mut ep = ChannelEndpoint {
            rx: from_driver,
            tx: to_driver,
        };
        assert!(ep.send(tag::STEP_DONE, &[]).is_err());
        drop(_unused_tx);
        assert_eq!(ep.recv().unwrap(), None);
    }

    #[test]
    fn stdio_endpoint_round_trips_over_buffers() {
        let mut wire = Vec::new();
        {
            let mut ep = StdioEndpoint::new(io::empty(), &mut wire);
            ep.send(tag::INIT, b"hello").unwrap();
            // BufWriter flushes on write_frame, but be explicit about drop.
        }
        let mut ep = StdioEndpoint::new(wire.as_slice(), io::sink());
        assert_eq!(ep.recv().unwrap(), Some((tag::INIT, b"hello".to_vec())));
        assert_eq!(ep.recv().unwrap(), None);
    }
}
