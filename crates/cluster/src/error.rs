//! Failure types of the cluster transports.
//!
//! Two layers, two error types. [`WireError`] is a *decode* failure: the
//! bytes of one frame or batch are malformed (truncated, wrong version,
//! unknown tag). [`ClusterError`] is a *drive* failure: a worker process or
//! thread died, hung past the read timeout, or spoke the protocol wrong.
//! Every `ClusterError` names the worker it happened on and, where known, the
//! superstep — plus the tail of the worker's stderr for spawned processes,
//! so a crash in a worker surfaces as a structured report instead of a hang.

use std::fmt;
use std::time::Duration;

/// A malformed byte payload (one wire batch or one frame body).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the value it promised.
    Truncated {
        /// What was being decoded when the bytes ran out.
        what: &'static str,
    },
    /// The payload leads with a wire version this build does not speak.
    VersionMismatch {
        /// Version this build encodes and decodes.
        expected: u16,
        /// Version the payload claimed.
        got: u16,
    },
    /// A discriminant byte (enum kind, option flag, frame tag) is unknown.
    BadTag {
        /// What the discriminant selects.
        what: &'static str,
        /// The unknown value.
        tag: u8,
    },
    /// The bytes decoded structurally but describe an invalid value (e.g. a
    /// shard whose offsets contradict its edge count).
    Invalid(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated { what } => write!(f, "payload truncated while decoding {what}"),
            Self::VersionMismatch { expected, got } => {
                write!(f, "wire version mismatch: expected {expected}, got {got}")
            }
            Self::BadTag { what, tag } => write!(f, "unknown {what} tag {tag:#04x}"),
            Self::Invalid(detail) => write!(f, "invalid payload: {detail}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A failed cluster drive: which worker, which superstep, and why.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// The worker process (or thread) could not be started.
    Spawn {
        /// Worker index that failed to start.
        worker: usize,
        /// Underlying failure (usually an I/O error message).
        detail: String,
    },
    /// The worker's connection closed while the driver still expected a
    /// reply — the process exited or the thread panicked mid-superstep.
    WorkerDied {
        /// Worker index that died.
        worker: usize,
        /// Superstep in flight when the connection closed, if any.
        superstep: Option<usize>,
        /// Last lines of the worker process's stderr (empty for in-process
        /// workers, which have no separate stderr stream).
        stderr_tail: String,
    },
    /// The worker sent nothing within the driver's read timeout.
    Timeout {
        /// Worker index that stalled.
        worker: usize,
        /// Superstep in flight when the timeout elapsed, if any.
        superstep: Option<usize>,
        /// The read timeout that elapsed.
        timeout: Duration,
        /// Last lines of the worker process's stderr.
        stderr_tail: String,
    },
    /// The worker replied, but with bytes the protocol does not allow here
    /// (wrong frame tag, undecodable body).
    Protocol {
        /// Worker index that misspoke.
        worker: usize,
        /// What was wrong.
        detail: String,
    },
    /// The worker reported an error of its own through an `Error` frame.
    Remote {
        /// Worker index that reported.
        worker: usize,
        /// The worker's message.
        message: String,
    },
}

impl ClusterError {
    /// Attaches decode context to a [`WireError`] coming from `worker`.
    pub fn from_wire(worker: usize, err: WireError) -> Self {
        Self::Protocol {
            worker,
            detail: err.to_string(),
        }
    }

    /// Fills in the superstep on errors whose transport layer could not know
    /// it (deaths and timeouts reported without drive context).
    pub fn at_superstep(self, s: usize) -> Self {
        match self {
            Self::WorkerDied {
                worker,
                superstep: None,
                stderr_tail,
            } => Self::WorkerDied {
                worker,
                superstep: Some(s),
                stderr_tail,
            },
            Self::Timeout {
                worker,
                superstep: None,
                timeout,
                stderr_tail,
            } => Self::Timeout {
                worker,
                superstep: Some(s),
                timeout,
                stderr_tail,
            },
            other => other,
        }
    }
}

fn write_superstep(f: &mut fmt::Formatter<'_>, superstep: &Option<usize>) -> fmt::Result {
    match superstep {
        Some(s) => write!(f, " during superstep {s}"),
        None => Ok(()),
    }
}

fn write_stderr_tail(f: &mut fmt::Formatter<'_>, tail: &str) -> fmt::Result {
    if tail.is_empty() {
        Ok(())
    } else {
        write!(f, "; stderr tail:\n{tail}")
    }
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Spawn { worker, detail } => {
                write!(f, "failed to spawn cluster worker {worker}: {detail}")
            }
            Self::WorkerDied {
                worker,
                superstep,
                stderr_tail,
            } => {
                write!(f, "cluster worker {worker} died")?;
                write_superstep(f, superstep)?;
                write_stderr_tail(f, stderr_tail)
            }
            Self::Timeout {
                worker,
                superstep,
                timeout,
                stderr_tail,
            } => {
                write!(f, "cluster worker {worker} sent nothing for {timeout:?}")?;
                write_superstep(f, superstep)?;
                write_stderr_tail(f, stderr_tail)
            }
            Self::Protocol { worker, detail } => {
                write!(
                    f,
                    "protocol violation from cluster worker {worker}: {detail}"
                )
            }
            Self::Remote { worker, message } => {
                write!(f, "cluster worker {worker} reported an error: {message}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_worker_and_superstep() {
        let e = ClusterError::WorkerDied {
            worker: 3,
            superstep: Some(7),
            stderr_tail: "thread panicked".into(),
        };
        let text = e.to_string();
        assert!(text.contains("worker 3"));
        assert!(text.contains("superstep 7"));
        assert!(text.contains("thread panicked"));
    }

    #[test]
    fn timeout_without_superstep_omits_the_clause() {
        let e = ClusterError::Timeout {
            worker: 0,
            superstep: None,
            timeout: Duration::from_millis(250),
            stderr_tail: String::new(),
        };
        let text = e.to_string();
        assert!(text.contains("250ms"));
        assert!(!text.contains("superstep"));
    }

    #[test]
    fn wire_errors_display_their_context() {
        assert!(WireError::Truncated { what: "u32" }
            .to_string()
            .contains("u32"));
        let v = WireError::VersionMismatch {
            expected: 1,
            got: 9,
        };
        assert!(v.to_string().contains("expected 1"));
    }
}
