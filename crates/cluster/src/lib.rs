//! Out-of-process BSP workers over the cut lists: a transport-abstracted
//! mini-Giraph.
//!
//! The in-memory engine (`predict_bsp`) simulates a cluster: shards, cut
//! lists and per-worker counters all exist, but every "worker" is a thread
//! reading shared memory and the clock is synthetic. This crate makes the
//! distribution real. Each worker owns its
//! [`ShardedCsr`](predict_graph::ShardedCsr) shard behind an explicit
//! transport boundary, peer messages travel as encoded batches over the cut,
//! and every superstep's wall time and bytes-on-the-wire are *measured*, not
//! simulated — the numbers the paper's simulated clock
//! (`predict_bsp::ClusterClock`) can then be judged against.
//!
//! Three layers:
//!
//! * [`wire`] — a compact, versioned, length-delimited encoding of
//!   everything that crosses a worker boundary: message batches as sorted
//!   per-vertex runs ([`WireBatch`]), counters, aggregates, shards, values.
//!   Pure bytes; no transport anywhere in sight.
//! * [`protocol`] + [`transport`] + [`endpoint`] + [`socket`] — framed
//!   star-topology superstep protocol (`Init`/`Step`/`StepDone`/`Finish`),
//!   spoken over three interchangeable backends: in-process worker threads
//!   over channels ([`TransportKind::InProc`]), long-lived `cluster_worker`
//!   OS processes over stdin/stdout pipes ([`TransportKind::Process`]), and
//!   the same processes over Unix-domain socket streams
//!   ([`TransportKind::Socket`]; loopback TCP rides the identical code
//!   path). Barrier, halt voting and aggregate exchange ride the same
//!   frames.
//! * [`driver`] + [`runner`] — the BSP master over a worker group, mirroring
//!   the in-memory executor's merge and clock order so results are
//!   *byte-identical* to in-memory runs (the engine's determinism contract,
//!   point 8), while recording a [`MeasuredRun`](predict_bsp::MeasuredRun)
//!   into the profile. [`run_workload`] is the drop-in workload entry point
//!   the prediction pipeline uses; `PREDICT_TRANSPORT=inproc|process`
//!   switches executors without touching results.
//!
//! Failure is structured, not silent: a worker that dies or hangs
//! mid-superstep surfaces as a [`ClusterError`] naming the worker, the
//! superstep and the tail of its stderr. The [`fault`] module makes those
//! failure paths *testable*: a deterministic [`FaultEndpoint`] injects
//! truncations, partial writes, delayed/duplicated frames and hard
//! disconnects at scheduled frame indices, so every error path is pinned by
//! a repeatable test instead of kill timing.

pub mod driver;
pub mod endpoint;
pub mod error;
pub mod fault;
pub mod protocol;
pub mod runner;
pub mod socket;
pub mod transport;
pub mod wire;
pub mod worker;

pub use driver::{drive, drive_on, shard_for, DriveOptions};
pub use endpoint::{ChannelEndpoint, Endpoint, StdioEndpoint};
pub use error::{ClusterError, WireError};
pub use fault::{Direction, FaultAction, FaultEndpoint, FaultSchedule, FaultStream};
pub use protocol::{FaultSpec, InitHeader, ProgramSpec, StepBody, StepDoneBody, PROTOCOL_VERSION};
pub use runner::{clear_chaos, install_chaos, run_spec, run_workload, ChaosPlan};
pub use socket::{SocketListener, SocketStream};
pub use transport::{checkin, checkout, worker_bin_path, Connection, TransportKind, WorkerGroup};
pub use wire::{
    batch_from_routed, batch_into_row, decode_exact, encode_to_vec, Wire, WireBatch, WIRE_VERSION,
};
pub use worker::serve;
