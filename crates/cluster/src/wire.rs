//! The compact versioned wire format.
//!
//! Everything the cluster transports exchange — superstep message batches,
//! counters, aggregates, whole graph shards, final values — is encoded by
//! the [`Wire`] trait: little-endian fixed-width primitives, `u32`
//! length-prefixed sequences, no padding, no self-description. The format is
//! independent of any transport; [`crate::protocol`] wraps encoded payloads
//! in length-prefixed frames, and the proptest suite round-trips arbitrary
//! values and rejects truncations and version mismatches.
//!
//! The unit of superstep traffic is the [`WireBatch`]: all messages one
//! worker produced for one destination worker in one superstep, led by the
//! format version ([`WIRE_VERSION`]) and sequenced by `(src, seq)`. Inside a
//! batch, messages are grouped into per-destination-vertex *runs*, sorted by
//! destination vertex id, stably — message order within a run is production
//! order. Because the runtime's inboxes are per-vertex, this regrouping
//! preserves exactly what the in-memory delivery phase observes: each inbox
//! receives its messages in the same order, so delivered state is
//! byte-identical (point 8 of the `predict_bsp::runtime` determinism
//! contract).
//!
//! Floats travel as their IEEE-754 bit patterns (`to_bits`/`from_bits`), so
//! every value — including NaN payloads — round-trips exactly.

use crate::error::WireError;
use predict_algorithms::{NeighborhoodSketch, SemiCluster, SemiClusterList, TopKState};
use predict_bsp::{Aggregates, AggregatorKind, WorkerCounters};
use predict_graph::{ShardedCsr, VertexId};
use std::collections::BTreeMap;

/// Version every [`WireBatch`] and frame body leads with; decoders reject
/// anything else. Bump on any incompatible change to an encoding.
pub const WIRE_VERSION: u16 = 1;

/// Cursor over a byte payload being decoded.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed — decoders of whole frame
    /// bodies check this so trailing garbage is rejected, not ignored.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated { what });
        }
        let bytes = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(bytes)
    }
}

/// A value that can be encoded to and decoded from the wire format.
pub trait Wire: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one value from the reader, consuming exactly its bytes.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;
}

/// Encodes `value` into a fresh buffer.
pub fn encode_to_vec<T: Wire>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.encode(&mut out);
    out
}

/// Decodes a value that must span the whole buffer (trailing bytes are an
/// error).
pub fn decode_exact<T: Wire>(buf: &[u8]) -> Result<T, WireError> {
    let mut r = Reader::new(buf);
    let value = T::decode(&mut r)?;
    if !r.is_empty() {
        return Err(WireError::Invalid(format!(
            "{} trailing bytes after value",
            r.remaining()
        )));
    }
    Ok(value)
}

macro_rules! wire_le_primitive {
    ($ty:ty, $what:literal) => {
        impl Wire for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
                let bytes = r.take(std::mem::size_of::<$ty>(), $what)?;
                Ok(<$ty>::from_le_bytes(bytes.try_into().expect("sized take")))
            }
        }
    };
}

wire_le_primitive!(u8, "u8");
wire_le_primitive!(u16, "u16");
wire_le_primitive!(u32, "u32");
wire_le_primitive!(u64, "u64");

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag { what: "bool", tag }),
        }
    }
}

/// `usize` travels as `u64` so 32- and 64-bit builds interoperate.
impl Wire for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let v = u64::decode(r)?;
        usize::try_from(v).map_err(|_| WireError::Invalid(format!("usize {v} overflows")))
    }
}

impl Wire for f32 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(f32::from_bits(u32::decode(r)?))
    }
}

impl Wire for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(f64::from_bits(u64::decode(r)?))
    }
}

impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = u32::decode(r)? as usize;
        let bytes = r.take(len, "string bytes")?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Invalid("string is not UTF-8".into()))
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = u32::decode(r)? as usize;
        // Cap the pre-allocation by what the payload could possibly hold, so
        // a corrupted length cannot force a huge allocation before the
        // truncation is noticed.
        let mut items = Vec::with_capacity(len.min(r.remaining()).min(1 << 16));
        for _ in 0..len {
            items.push(T::decode(r)?);
        }
        Ok(items)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(WireError::BadTag {
                what: "option",
                tag,
            }),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

// ---------------------------------------------------------------------------
// Workload message and value types.
// ---------------------------------------------------------------------------

impl Wire for TopKState {
    fn encode(&self, out: &mut Vec<u8>) {
        self.own_rank.encode(out);
        self.entries.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            own_rank: f64::decode(r)?,
            entries: Vec::decode(r)?,
        })
    }
}

impl Wire for SemiCluster {
    fn encode(&self, out: &mut Vec<u8>) {
        self.vertices.encode(out);
        self.internal_weight.encode(out);
        self.boundary_weight.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            vertices: Vec::decode(r)?,
            internal_weight: f64::decode(r)?,
            boundary_weight: f64::decode(r)?,
        })
    }
}

impl Wire for SemiClusterList {
    fn encode(&self, out: &mut Vec<u8>) {
        self.clusters.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            clusters: Vec::decode(r)?,
        })
    }
}

impl Wire for NeighborhoodSketch {
    fn encode(&self, out: &mut Vec<u8>) {
        self.bitmasks.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            bitmasks: Vec::decode(r)?,
        })
    }
}

// ---------------------------------------------------------------------------
// Runtime types.
// ---------------------------------------------------------------------------

impl Wire for WorkerCounters {
    fn encode(&self, out: &mut Vec<u8>) {
        self.active_vertices.encode(out);
        self.total_vertices.encode(out);
        self.local_messages.encode(out);
        self.remote_messages.encode(out);
        self.local_message_bytes.encode(out);
        self.remote_message_bytes.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            active_vertices: u64::decode(r)?,
            total_vertices: u64::decode(r)?,
            local_messages: u64::decode(r)?,
            remote_messages: u64::decode(r)?,
            local_message_bytes: u64::decode(r)?,
            remote_message_bytes: u64::decode(r)?,
        })
    }
}

fn aggregator_kind_tag(kind: AggregatorKind) -> u8 {
    match kind {
        AggregatorKind::Sum => 0,
        AggregatorKind::Min => 1,
        AggregatorKind::Max => 2,
    }
}

impl Wire for AggregatorKind {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(aggregator_kind_tag(*self));
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(Self::Sum),
            1 => Ok(Self::Min),
            2 => Ok(Self::Max),
            tag => Err(WireError::BadTag {
                what: "aggregator kind",
                tag,
            }),
        }
    }
}

/// Aggregates travel as `(name, kind, f64 bits)` triples in the set's own
/// lexicographic iteration order and are reconstructed through
/// [`Aggregates::combine`] — values are exact, no text round-trip.
impl Wire for Aggregates {
    fn encode(&self, out: &mut Vec<u8>) {
        let entries: Vec<(&str, AggregatorKind, f64)> = self.entries().collect();
        (entries.len() as u32).encode(out);
        for (name, kind, value) in entries {
            name.to_string().encode(out);
            kind.encode(out);
            value.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = u32::decode(r)? as usize;
        let mut aggregates = Aggregates::new();
        for _ in 0..len {
            let name = String::decode(r)?;
            let kind = AggregatorKind::decode(r)?;
            let value = f64::decode(r)?;
            if aggregates.get(&name).is_some() {
                return Err(WireError::Invalid(format!("duplicate aggregator '{name}'")));
            }
            aggregates.combine(&name, kind, value);
        }
        Ok(aggregates)
    }
}

/// A whole graph shard: the payload of the `Init` frame. Decoding revalidates
/// every structural invariant through
/// [`ShardedCsr::from_parts`], so a corrupted shard is rejected before it can
/// misroute a single message.
impl Wire for ShardedCsr {
    fn encode(&self, out: &mut Vec<u8>) {
        self.worker().encode(out);
        self.num_workers().encode(out);
        self.global_vertices().encode(out);
        self.global_edges().encode(out);
        self.owned().to_vec().encode(out);
        self.out_offsets().to_vec().encode(out);
        self.out_targets().to_vec().encode(out);
        self.out_weights().map(<[f32]>::to_vec).encode(out);
        let cut: Vec<Vec<u32>> = (0..self.num_workers())
            .map(|p| self.cut_to(p).to_vec())
            .collect();
        cut.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let worker = usize::decode(r)?;
        let num_workers = usize::decode(r)?;
        let global_vertices = usize::decode(r)?;
        let global_edges = usize::decode(r)?;
        let owned: Vec<VertexId> = Vec::decode(r)?;
        let out_offsets: Vec<usize> = Vec::decode(r)?;
        let out_targets: Vec<VertexId> = Vec::decode(r)?;
        let out_weights: Option<Vec<f32>> = Option::decode(r)?;
        let cut: Vec<Vec<u32>> = Vec::decode(r)?;
        ShardedCsr::from_parts(
            worker,
            num_workers,
            global_vertices,
            global_edges,
            owned,
            out_offsets,
            out_targets,
            out_weights,
            cut,
        )
        .map_err(WireError::Invalid)
    }
}

// ---------------------------------------------------------------------------
// Superstep message batches.
// ---------------------------------------------------------------------------

/// All messages one worker produced for one destination worker in one
/// superstep.
///
/// Delivery order across a whole superstep is fixed by `(src, seq)` — the
/// driver forwards batches to their destination in ascending source-worker
/// order, which is exactly the order the in-memory delivery phase consumes
/// inbound buffers in. `runs` are sorted by destination vertex id; within a
/// run, messages keep production order (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq)]
pub struct WireBatch<M> {
    /// Superstep the messages were produced in.
    pub superstep: u64,
    /// Worker that produced the messages.
    pub src: u32,
    /// Worker that owns every destination vertex in `runs`.
    pub dst: u32,
    /// Sequence number of this batch within `(src, dst)` — the superstep
    /// again today (one batch per pair per superstep), carried separately so
    /// a future multi-batch flush keeps a total order.
    pub seq: u64,
    /// Per-destination-vertex message runs, sorted by vertex id.
    pub runs: Vec<(VertexId, Vec<M>)>,
}

impl<M> WireBatch<M> {
    /// Total number of messages across all runs.
    pub fn num_messages(&self) -> usize {
        self.runs.iter().map(|(_, msgs)| msgs.len()).sum()
    }
}

impl<M: Wire> Wire for WireBatch<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        WIRE_VERSION.encode(out);
        self.superstep.encode(out);
        self.src.encode(out);
        self.dst.encode(out);
        self.seq.encode(out);
        self.runs.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let version = u16::decode(r)?;
        if version != WIRE_VERSION {
            return Err(WireError::VersionMismatch {
                expected: WIRE_VERSION,
                got: version,
            });
        }
        Ok(Self {
            superstep: u64::decode(r)?,
            src: u32::decode(r)?,
            dst: u32::decode(r)?,
            seq: u64::decode(r)?,
            runs: Vec::decode(r)?,
        })
    }
}

/// Builds the batch for `(src, dst, superstep)` by draining a routed outbox
/// buffer — `(destination vertex, message)` pairs in production order — into
/// destination-vertex runs. The grouping is stable: each vertex's messages
/// keep their relative order, which is all the per-vertex inboxes can
/// observe.
pub fn batch_from_routed<M>(
    superstep: u64,
    src: u32,
    dst: u32,
    routed: &mut Vec<(VertexId, M)>,
) -> WireBatch<M> {
    let mut runs: BTreeMap<VertexId, Vec<M>> = BTreeMap::new();
    for (vertex, message) in routed.drain(..) {
        runs.entry(vertex).or_default().push(message);
    }
    WireBatch {
        superstep,
        src,
        dst,
        seq: superstep,
        runs: runs.into_iter().collect(),
    }
}

/// Flattens a batch back into a delivery buffer of `(destination vertex,
/// message)` pairs, run by run — the inverse of [`batch_from_routed`] up to
/// the (inbox-invisible) regrouping.
pub fn batch_into_row<M>(batch: WireBatch<M>) -> Vec<(VertexId, M)> {
    let mut row = Vec::with_capacity(batch.num_messages());
    for (vertex, messages) in batch.runs {
        for message in messages {
            row.push((vertex, message));
        }
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut out = Vec::new();
        42u8.encode(&mut out);
        7u16.encode(&mut out);
        1234u32.encode(&mut out);
        (u64::MAX - 3).encode(&mut out);
        true.encode(&mut out);
        (-0.0f64).encode(&mut out);
        f64::NAN.encode(&mut out);
        "héllo".to_string().encode(&mut out);

        let mut r = Reader::new(&out);
        assert_eq!(u8::decode(&mut r).unwrap(), 42);
        assert_eq!(u16::decode(&mut r).unwrap(), 7);
        assert_eq!(u32::decode(&mut r).unwrap(), 1234);
        assert_eq!(u64::decode(&mut r).unwrap(), u64::MAX - 3);
        assert!(bool::decode(&mut r).unwrap());
        assert_eq!(f64::decode(&mut r).unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(f64::decode(&mut r).unwrap().is_nan());
        assert_eq!(String::decode(&mut r).unwrap(), "héllo");
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_primitive_is_rejected() {
        let bytes = encode_to_vec(&123456789u64);
        for cut in 0..bytes.len() {
            let err = decode_exact::<u64>(&bytes[..cut]).unwrap_err();
            assert!(matches!(err, WireError::Truncated { .. }), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_to_vec(&7u32);
        bytes.push(0);
        assert!(matches!(
            decode_exact::<u32>(&bytes),
            Err(WireError::Invalid(_))
        ));
    }

    #[test]
    fn aggregates_round_trip_exactly() {
        let mut a = Aggregates::new();
        a.add("delta", 0.1 + 0.2);
        a.combine("lo", AggregatorKind::Min, -1.5e-300);
        a.combine("hi", AggregatorKind::Max, f64::MAX);
        let back: Aggregates = decode_exact(&encode_to_vec(&a)).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn sharded_csr_round_trips_and_rejects_corruption() {
        use predict_graph::generators::{generate_rmat, RmatConfig};
        let g = generate_rmat(&RmatConfig::new(7, 4).with_seed(13));
        let shards = predict_graph::shard_csr(&g, 3, |v| v as usize % 3);
        for shard in &shards {
            let bytes = encode_to_vec(shard);
            let back: ShardedCsr = decode_exact(&bytes).unwrap();
            assert_eq!(back.owned(), shard.owned());
            assert_eq!(back.out_targets(), shard.out_targets());
            assert_eq!(back.cut_to(1), shard.cut_to(1));
            // Any truncation is rejected (either as Truncated or Invalid).
            assert!(decode_exact::<ShardedCsr>(&bytes[..bytes.len() - 1]).is_err());
        }
    }

    #[test]
    fn batch_grouping_is_stable_and_sorted() {
        let mut routed: Vec<(VertexId, u64)> = vec![(5, 10), (2, 20), (5, 11), (2, 21), (9, 30)];
        let batch = batch_from_routed(3, 0, 1, &mut routed);
        assert!(routed.is_empty(), "routed buffer must be drained");
        assert_eq!(
            batch.runs,
            vec![(2, vec![20, 21]), (5, vec![10, 11]), (9, vec![30])]
        );
        assert_eq!(batch.num_messages(), 5);
        let row = batch_into_row(batch);
        assert_eq!(row, vec![(2, 20), (2, 21), (5, 10), (5, 11), (9, 30)]);
    }

    #[test]
    fn batch_version_mismatch_is_rejected() {
        let batch: WireBatch<f64> = WireBatch {
            superstep: 0,
            src: 0,
            dst: 1,
            seq: 0,
            runs: vec![(3, vec![1.0])],
        };
        let mut bytes = encode_to_vec(&batch);
        bytes[0] = 0xFF; // clobber the leading version
        bytes[1] = 0xFF;
        assert!(matches!(
            decode_exact::<WireBatch<f64>>(&bytes),
            Err(WireError::VersionMismatch { got: 0xFFFF, .. })
        ));
    }
}
