//! Deterministic fault injection for the frame protocol.
//!
//! Kill-based robustness tests ([`FaultSpec`](crate::protocol::FaultSpec))
//! exercise *whole-worker* failure; this module exercises the *transport*:
//! truncated bodies, partial writes, delayed and duplicated frames, hard
//! disconnects — each at an exact frame index, from a schedule that is pure
//! data. The same schedule always injects the same faults, so every driver
//! error path is pinned by a repeatable test instead of kill timing.
//!
//! [`FaultEndpoint`] wraps any [`Endpoint`] — it is the worker-side
//! endpoint with a saboteur in the middle. Frames are counted per
//! direction ([`Direction::Outbound`] = worker→driver, inbound the
//! reverse), and when a direction's counter hits a scheduled index the
//! [`FaultAction`] fires. Schedules come from an explicit builder
//! ([`FaultSchedule::at`]) or a seeded generator
//! ([`FaultSchedule::seeded`], splitmix64 — no dependencies, stable
//! forever).
//!
//! [`FaultStream`] is the byte-level sibling: a `Write` wrapper that cuts
//! the stream mid-frame after a byte budget, for true short-read /
//! torn-frame coverage under the framed codecs.

use crate::endpoint::{Endpoint, Frame};
use std::collections::VecDeque;
use std::io::{self, Write};

/// Which way a counted frame is travelling, from the worker's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Driver → worker frames (what the worker receives).
    Inbound,
    /// Worker → driver frames (what the worker sends).
    Outbound,
}

/// What happens to the frame at a scheduled index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver the frame with its body cut to `keep` bytes — a well-framed
    /// but semantically truncated payload, surfacing as a
    /// [`WireError::Truncated`](crate::WireError::Truncated) decode failure
    /// at the receiver.
    TruncateBody {
        /// Body bytes to keep.
        keep: usize,
    },
    /// Deliver the body cut to `keep` bytes, then kill the connection — a
    /// peer that died mid-write.
    PartialWrite {
        /// Body bytes that make it out before the cut.
        keep: usize,
    },
    /// Hold the frame back until `frames` more frames pass in the same
    /// direction (if the episode ends first, the frame is simply lost and
    /// the peer's read deadline fires).
    Delay {
        /// Frames that must pass before release.
        frames: usize,
    },
    /// Deliver the frame twice.
    Duplicate,
    /// Drop the connection instead of transferring this frame.
    Disconnect,
}

/// A deterministic list of `(direction, frame index, action)` injections.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    faults: Vec<(Direction, u64, FaultAction)>,
}

impl FaultSchedule {
    /// An empty schedule (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `action` against the `index`-th frame in `direction`
    /// (0-based, counted per direction).
    pub fn at(mut self, direction: Direction, index: u64, action: FaultAction) -> Self {
        self.faults.push((direction, index, action));
        self
    }

    /// A reproducible pseudo-random schedule: `count` faults over the first
    /// `horizon` frame indices of either direction. Same seed, same
    /// schedule, on every platform.
    pub fn seeded(seed: u64, count: usize, horizon: u64) -> Self {
        let mut state = seed;
        let mut next = move || splitmix64(&mut state);
        let mut schedule = Self::new();
        for _ in 0..count {
            let direction = if next() % 2 == 0 {
                Direction::Inbound
            } else {
                Direction::Outbound
            };
            let index = next() % horizon.max(1);
            let action = match next() % 5 {
                0 => FaultAction::TruncateBody {
                    keep: (next() % 9) as usize,
                },
                1 => FaultAction::PartialWrite {
                    keep: (next() % 9) as usize,
                },
                2 => FaultAction::Delay {
                    frames: 1 + (next() % 3) as usize,
                },
                3 => FaultAction::Duplicate,
                _ => FaultAction::Disconnect,
            };
            schedule = schedule.at(direction, index, action);
        }
        schedule
    }

    /// True when the schedule injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    fn action_at(&self, direction: Direction, index: u64) -> Option<FaultAction> {
        self.faults
            .iter()
            .find(|(d, i, _)| *d == direction && *i == index)
            .map(|(_, _, a)| *a)
    }
}

/// The splitmix64 mixer — 8 lines, stable, plenty for fault schedules.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An [`Endpoint`] with a deterministic saboteur in the middle.
///
/// Wraps the worker's real endpoint; the serve loop neither knows nor
/// cares. After a [`FaultAction::Disconnect`] or
/// [`FaultAction::PartialWrite`] the wrapped endpoint is dropped — every
/// later operation behaves like a dead peer (send errors, recv reports a
/// clean close), exactly as a real torn connection would.
pub struct FaultEndpoint<E: Endpoint> {
    inner: Option<E>,
    schedule: FaultSchedule,
    sent: u64,
    received: u64,
    /// Outbound frames held by a `Delay`, keyed by the send-counter value
    /// at which they release.
    delayed_out: VecDeque<(u64, Frame)>,
    /// Inbound frames owed to the worker before reading from the wire
    /// again (duplicates and released delays).
    pending_in: VecDeque<Frame>,
    /// Inbound frames held by a `Delay`, keyed by the recv-counter value
    /// at which they release.
    delayed_in: VecDeque<(u64, Frame)>,
}

impl<E: Endpoint> FaultEndpoint<E> {
    /// Wraps `inner`, injecting `schedule`.
    pub fn new(inner: E, schedule: FaultSchedule) -> Self {
        Self {
            inner: Some(inner),
            schedule,
            sent: 0,
            received: 0,
            delayed_out: VecDeque::new(),
            pending_in: VecDeque::new(),
            delayed_in: VecDeque::new(),
        }
    }

    fn dead() -> io::Error {
        io::Error::new(io::ErrorKind::ConnectionReset, "injected disconnect")
    }

    /// Releases delayed outbound frames that are due before the frame at
    /// `index` goes out.
    fn flush_due_out(&mut self, index: u64) -> io::Result<()> {
        while let Some((due, _)) = self.delayed_out.front() {
            if *due > index {
                break;
            }
            let (_, (tag, body)) = self.delayed_out.pop_front().expect("front exists");
            let inner = self.inner.as_mut().ok_or_else(Self::dead)?;
            inner.send(tag, &body)?;
        }
        Ok(())
    }
}

impl<E: Endpoint> Endpoint for FaultEndpoint<E> {
    fn send(&mut self, tag: u8, body: &[u8]) -> io::Result<()> {
        let index = self.sent;
        self.sent += 1;
        self.flush_due_out(index)?;
        let action = self.schedule.action_at(Direction::Outbound, index);
        let inner = self.inner.as_mut().ok_or_else(Self::dead)?;
        match action {
            None => inner.send(tag, body),
            Some(FaultAction::TruncateBody { keep }) => {
                inner.send(tag, &body[..keep.min(body.len())])
            }
            Some(FaultAction::PartialWrite { keep }) => {
                let _ = inner.send(tag, &body[..keep.min(body.len())]);
                self.inner = None;
                Err(Self::dead())
            }
            Some(FaultAction::Delay { frames }) => {
                self.delayed_out
                    .push_back((index + 1 + frames as u64, (tag, body.to_vec())));
                Ok(())
            }
            Some(FaultAction::Duplicate) => {
                inner.send(tag, body)?;
                inner.send(tag, body)
            }
            Some(FaultAction::Disconnect) => {
                self.inner = None;
                Err(Self::dead())
            }
        }
    }

    fn recv(&mut self) -> io::Result<Option<Frame>> {
        // Frames owed from duplicates / released delays go first.
        if let Some(frame) = self.pending_in.pop_front() {
            return Ok(Some(frame));
        }
        loop {
            if let Some((due, _)) = self.delayed_in.front() {
                if *due <= self.received {
                    let (_, frame) = self.delayed_in.pop_front().expect("front exists");
                    return Ok(Some(frame));
                }
            }
            let Some(inner) = self.inner.as_mut() else {
                // Torn connection: the peer is gone, report a clean close so
                // the worker exits the way it does on a real hangup.
                return Ok(None);
            };
            let Some((tag, body)) = inner.recv()? else {
                return Ok(None);
            };
            let index = self.received;
            self.received += 1;
            match self.schedule.action_at(Direction::Inbound, index) {
                None => return Ok(Some((tag, body))),
                Some(FaultAction::TruncateBody { keep }) => {
                    let mut body = body;
                    body.truncate(keep);
                    return Ok(Some((tag, body)));
                }
                Some(FaultAction::PartialWrite { keep }) => {
                    let mut body = body;
                    body.truncate(keep);
                    self.inner = None;
                    return Ok(Some((tag, body)));
                }
                Some(FaultAction::Delay { frames }) => {
                    self.delayed_in
                        .push_back((index + 1 + frames as u64, (tag, body)));
                    // Loop: read the next frame in its place.
                }
                Some(FaultAction::Duplicate) => {
                    self.pending_in.push_back((tag, body.clone()));
                    return Ok(Some((tag, body)));
                }
                Some(FaultAction::Disconnect) => {
                    self.inner = None;
                    return Err(Self::dead());
                }
            }
        }
    }
}

/// A `Write` that cuts the stream after a byte budget — the byte-level
/// fault: frames tear *mid-encoding*, producing the short reads and torn
/// length prefixes [`read_frame`](crate::protocol::read_frame) must treat
/// as corruption, never as clean EOF.
pub struct FaultStream<W: Write> {
    inner: W,
    remaining: usize,
}

impl<W: Write> FaultStream<W> {
    /// Passes through the first `budget` bytes, then fails every write.
    pub fn cut_after(inner: W, budget: usize) -> Self {
        Self {
            inner,
            remaining: budget,
        }
    }
}

impl<W: Write> Write for FaultStream<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.remaining == 0 {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "injected stream cut",
            ));
        }
        let n = buf.len().min(self.remaining);
        let written = self.inner.write(&buf[..n])?;
        self.remaining -= written;
        Ok(written)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::ChannelEndpoint;
    use crate::protocol::{read_frame, tag, write_frame};
    use std::sync::mpsc::{self, Receiver, Sender};

    fn pair() -> (FaultEndpointHarness, ChannelEndpoint) {
        let (to_worker, worker_rx) = mpsc::channel::<Frame>();
        let (worker_tx, from_worker) = mpsc::channel::<Frame>();
        (
            FaultEndpointHarness {
                to_worker,
                from_worker,
            },
            ChannelEndpoint {
                rx: worker_rx,
                tx: worker_tx,
            },
        )
    }

    /// The driver's two channel ends in tests.
    struct FaultEndpointHarness {
        to_worker: Sender<Frame>,
        from_worker: Receiver<Frame>,
    }

    #[test]
    fn seeded_schedules_are_reproducible() {
        let a = FaultSchedule::seeded(42, 4, 16);
        let b = FaultSchedule::seeded(42, 4, 16);
        assert_eq!(a, b);
        assert_ne!(a, FaultSchedule::seeded(43, 4, 16));
        assert_eq!(a.faults.len(), 4);
    }

    #[test]
    fn truncate_cuts_the_body_and_keeps_the_stream() {
        let (driver, worker) = pair();
        let schedule = FaultSchedule::new().at(
            Direction::Outbound,
            0,
            FaultAction::TruncateBody { keep: 2 },
        );
        let mut ep = FaultEndpoint::new(worker, schedule);
        ep.send(tag::STEP_DONE, &[1, 2, 3, 4]).unwrap();
        ep.send(tag::STEP_DONE, &[9, 9]).unwrap();
        assert_eq!(
            driver.from_worker.recv().unwrap(),
            (tag::STEP_DONE, vec![1, 2])
        );
        assert_eq!(
            driver.from_worker.recv().unwrap(),
            (tag::STEP_DONE, vec![9, 9])
        );
    }

    #[test]
    fn disconnect_kills_both_directions() {
        let (driver, worker) = pair();
        let schedule = FaultSchedule::new().at(Direction::Outbound, 1, FaultAction::Disconnect);
        let mut ep = FaultEndpoint::new(worker, schedule);
        ep.send(tag::STEP_DONE, &[1]).unwrap();
        assert!(ep.send(tag::STEP_DONE, &[2]).is_err());
        assert!(ep.send(tag::STEP_DONE, &[3]).is_err(), "stays dead");
        assert_eq!(ep.recv().unwrap(), None, "reads like a hangup");
        // The driver got the first frame, then the channel closed.
        assert_eq!(
            driver.from_worker.recv().unwrap(),
            (tag::STEP_DONE, vec![1])
        );
        assert!(driver.from_worker.recv().is_err());
    }

    #[test]
    fn delay_reorders_outbound_frames() {
        let (driver, worker) = pair();
        let schedule =
            FaultSchedule::new().at(Direction::Outbound, 0, FaultAction::Delay { frames: 2 });
        let mut ep = FaultEndpoint::new(worker, schedule);
        ep.send(0x10, &[0]).unwrap(); // delayed until after frame 2
        ep.send(0x11, &[1]).unwrap();
        ep.send(0x12, &[2]).unwrap();
        ep.send(0x13, &[3]).unwrap();
        let order: Vec<u8> = (0..4)
            .map(|_| driver.from_worker.recv().unwrap().0)
            .collect();
        assert_eq!(order, vec![0x11, 0x12, 0x10, 0x13]);
    }

    #[test]
    fn duplicate_delivers_inbound_frames_twice() {
        let (driver, worker) = pair();
        let schedule = FaultSchedule::new().at(Direction::Inbound, 0, FaultAction::Duplicate);
        let mut ep = FaultEndpoint::new(worker, schedule);
        driver.to_worker.send((tag::STEP, vec![7])).unwrap();
        driver.to_worker.send((tag::FINISH, vec![])).unwrap();
        assert_eq!(ep.recv().unwrap(), Some((tag::STEP, vec![7])));
        assert_eq!(ep.recv().unwrap(), Some((tag::STEP, vec![7])));
        assert_eq!(ep.recv().unwrap(), Some((tag::FINISH, vec![])));
    }

    #[test]
    fn inbound_delay_holds_a_frame_back() {
        let (driver, worker) = pair();
        let schedule =
            FaultSchedule::new().at(Direction::Inbound, 0, FaultAction::Delay { frames: 2 });
        let mut ep = FaultEndpoint::new(worker, schedule);
        for i in 0..3u8 {
            driver.to_worker.send((0x20 + i, vec![])).unwrap();
        }
        let order: Vec<u8> = (0..3).map(|_| ep.recv().unwrap().unwrap().0).collect();
        assert_eq!(order, vec![0x21, 0x22, 0x20]);
    }

    #[test]
    fn fault_stream_tears_a_frame_mid_write() {
        let mut buf = Vec::new();
        {
            let mut cut = FaultStream::cut_after(&mut buf, 7);
            assert!(write_frame(&mut cut, tag::STEP, b"hello world").is_err());
        }
        // The receiver sees a torn frame: an error, never a clean EOF.
        let mut cursor = &buf[..];
        assert!(read_frame(&mut cursor).is_err());
    }
}
