//! The framed superstep protocol the driver and its workers speak.
//!
//! The topology is a star: the driver is the BSP master, every worker holds
//! one shard, and all traffic flows through the driver (workers never talk
//! to each other — peer batches are relayed by the master inside `Step` /
//! `StepDone` frames, which is also what pins delivery order). One episode:
//!
//! ```text
//!   driver                                   worker
//!     | -- Init(header, shard, ranks) ------->  |   decode, build state
//!     | <------------------------- InitOk ----  |
//!     | -- Step(s, aggs, inbound batches) --->  |   deliver, compute s
//!     | <-- StepDone(counters, aggs, halted,    |
//!     |              compute_ns, outbound) ---  |
//!     |            ... repeat per superstep ... |
//!     | -- Finish --------------------------->  |
//!     | <-- Values(slot-ordered values) ------  |   back to Init wait
//! ```
//!
//! Every frame is `[u32 LE length][u8 tag][body]` where `length` counts the
//! tag byte plus the body. Bodies are [`Wire`]-encoded,
//! except the `Init` header, which is JSON (it carries algorithm parameter
//! structs whose serde impls already exist; JSON `f64` round-trips are exact
//! in this workspace, pinned by the profile serialization tests). Barrier,
//! halt voting and aggregate exchange all ride the same framed protocol:
//! `StepDone` *is* the barrier arrival, carrying the halt flag and the
//! worker's partial aggregates.
//!
//! After `Values`, the worker loops back to waiting for the next `Init`, so
//! a pooled worker serves many runs; `Shutdown` (or EOF on its pipe) ends
//! it.

use crate::error::WireError;
use crate::wire::{Reader, Wire, WireBatch};
use predict_algorithms::{NeighborhoodParams, PageRankParams, SemiClusteringParams, TopKParams};
use predict_bsp::{Aggregates, PartitionStrategy, WorkerCounters};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Version of the frame protocol, carried in every [`InitHeader`]; workers
/// refuse an `Init` from a driver speaking another version.
pub const PROTOCOL_VERSION: u32 = 1;

/// Frame tags.
pub mod tag {
    /// Driver → worker: shard + program, starts an episode.
    pub const INIT: u8 = 0x01;
    /// Worker → driver: episode state is built.
    pub const INIT_OK: u8 = 0x02;
    /// Driver → worker: deliver these batches, compute one superstep.
    pub const STEP: u8 = 0x03;
    /// Worker → driver: superstep finished (the barrier arrival).
    pub const STEP_DONE: u8 = 0x04;
    /// Driver → worker: run is over, send final values.
    pub const FINISH: u8 = 0x05;
    /// Worker → driver: final slot-ordered vertex values.
    pub const VALUES: u8 = 0x06;
    /// Driver → worker: exit cleanly.
    pub const SHUTDOWN: u8 = 0x07;
    /// Worker → driver: structured failure report.
    pub const ERROR: u8 = 0x7F;
}

/// Upper bound on a frame body; a length prefix beyond this is treated as
/// stream corruption rather than an allocation request. Large enough for a
/// shard of any graph the experiments run (hundreds of MB), small enough to
/// reject a desynchronized stream immediately.
pub const MAX_FRAME_LEN: u32 = 1 << 30;

/// Writes one `[len][tag][body]` frame and flushes.
pub fn write_frame(w: &mut impl Write, tag: u8, body: &[u8]) -> std::io::Result<()> {
    let len = (body.len() + 1) as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&[tag])?;
    w.write_all(body)?;
    w.flush()
}

/// Reads one frame, blocking until it is complete. `Ok(None)` means the
/// stream ended cleanly *between* frames (EOF before any length byte) — how
/// a pooled worker learns its driver is gone.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<(u8, Vec<u8>)>> {
    let mut len_bytes = [0u8; 4];
    // Distinguish clean EOF (no bytes at all) from a truncated frame.
    match r.read(&mut len_bytes[..1])? {
        0 => return Ok(None),
        _ => r.read_exact(&mut len_bytes[1..])?,
    }
    let len = u32::from_le_bytes(len_bytes);
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} out of range"),
        ));
    }
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    let mut body = vec![0u8; len as usize - 1];
    r.read_exact(&mut body)?;
    Ok(Some((tag[0], body)))
}

/// Fault injected into a worker for robustness tests: die or hang at the
/// start of the given superstep's compute.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Superstep at which the worker dies abruptly (process exit / closed
    /// channel), if any.
    #[serde(default)]
    pub crash_at: Option<usize>,
    /// Superstep at which the worker stops responding forever, if any.
    #[serde(default)]
    pub hang_at: Option<usize>,
}

impl FaultSpec {
    /// True when no fault is injected.
    pub fn is_none(&self) -> bool {
        self.crash_at.is_none() && self.hang_at.is_none()
    }
}

/// Which vertex program a worker must run, with its parameters. The
/// transportable mirror of [`WorkloadSpec`](predict_algorithms::WorkloadSpec)
/// at the single-program level —
/// one `Step` loop runs exactly one program (the TOP-K workload drives two
/// episodes: a PageRank pre-pass, then the top-k phase whose input ranks
/// ride the `Init` frame's binary section).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProgramSpec {
    /// `predict_algorithms::PageRank`.
    PageRank {
        /// PageRank parameters.
        params: PageRankParams,
    },
    /// `predict_algorithms::TopKRanking`; input ranks travel in the `Init`
    /// frame's binary section.
    TopK {
        /// Top-k parameters.
        params: TopKParams,
    },
    /// `predict_algorithms::SemiClustering`.
    SemiClustering {
        /// Semi-clustering parameters.
        params: SemiClusteringParams,
    },
    /// `predict_algorithms::ConnectedComponents`.
    ConnectedComponents {},
    /// `predict_algorithms::NeighborhoodEstimation`.
    Neighborhood {
        /// Neighborhood-estimation parameters.
        params: NeighborhoodParams,
    },
}

impl ProgramSpec {
    /// Short program name used in error messages.
    pub fn name(&self) -> &'static str {
        match self {
            Self::PageRank { .. } => "pagerank",
            Self::TopK { .. } => "top-k",
            Self::SemiClustering { .. } => "semi-clustering",
            Self::ConnectedComponents {} => "connected-components",
            Self::Neighborhood { .. } => "neighborhood",
        }
    }
}

/// JSON header of the `Init` frame. The shard and (for TOP-K) the input
/// ranks follow in binary; see [`encode_init`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InitHeader {
    /// Protocol version of the driver; workers reject mismatches.
    pub protocol_version: u32,
    /// Index of the worker this `Init` addresses.
    pub worker: usize,
    /// Workers in the cluster.
    pub num_workers: usize,
    /// Partition strategy; the worker rebuilds the (deterministic) shard
    /// layout from `(global_vertices, num_workers, strategy)` instead of
    /// shipping the layout.
    pub strategy: PartitionStrategy,
    /// Program to run.
    pub program: ProgramSpec,
    /// Injected fault, if any (tests only).
    #[serde(default)]
    pub fault: Option<FaultSpec>,
}

/// Encodes an `Init` frame body:
/// `[u32 header_len][header JSON][shard][ranks]`.
pub fn encode_init(
    header: &InitHeader,
    shard: &predict_graph::ShardedCsr,
    ranks: &[f64],
) -> Vec<u8> {
    let json = serde_json::to_string(header).expect("init header serializes");
    let mut body = Vec::new();
    (json.len() as u32).encode(&mut body);
    body.extend_from_slice(json.as_bytes());
    shard.encode(&mut body);
    ranks.to_vec().encode(&mut body);
    body
}

/// Decodes an `Init` frame body back into header, shard and ranks.
pub fn decode_init(
    body: &[u8],
) -> Result<(InitHeader, predict_graph::ShardedCsr, Vec<f64>), WireError> {
    let mut r = Reader::new(body);
    let json_len = u32::decode(&mut r)? as usize;
    if r.remaining() < json_len {
        return Err(WireError::Truncated {
            what: "init header JSON",
        });
    }
    let json = &body[4..4 + json_len];
    let json = std::str::from_utf8(json)
        .map_err(|e| WireError::Invalid(format!("init header JSON is not UTF-8: {e}")))?;
    let header: InitHeader = serde_json::from_str(json)
        .map_err(|e| WireError::Invalid(format!("init header JSON: {e}")))?;
    let mut r = Reader::new(&body[4 + json_len..]);
    let shard = predict_graph::ShardedCsr::decode(&mut r)?;
    let ranks: Vec<f64> = Vec::decode(&mut r)?;
    if !r.is_empty() {
        return Err(WireError::Invalid("trailing bytes after init body".into()));
    }
    Ok((header, shard, ranks))
}

/// Body of a `Step` frame: previous superstep's merged aggregates plus the
/// inbound batches for this worker (from peers only; the worker's own local
/// messages never cross the wire).
#[derive(Debug, Clone, PartialEq)]
pub struct StepBody<M> {
    /// Superstep to compute.
    pub superstep: u64,
    /// Aggregates merged by the master at the end of the previous superstep.
    pub previous_aggregates: Aggregates,
    /// Inbound batches, ascending source worker.
    pub batches: Vec<WireBatch<M>>,
}

impl<M: Wire> Wire for StepBody<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.superstep.encode(out);
        self.previous_aggregates.encode(out);
        self.batches.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            superstep: u64::decode(r)?,
            previous_aggregates: Aggregates::decode(r)?,
            batches: Vec::decode(r)?,
        })
    }
}

/// Body of a `StepDone` frame: everything the master needs from one worker
/// to run its merge, clock and halt logic — this frame doubles as the
/// barrier arrival and the halt vote.
#[derive(Debug, Clone, PartialEq)]
pub struct StepDoneBody<M> {
    /// Echo of the superstep this reply answers. The driver rejects a
    /// mismatch, so a duplicated or reordered barrier frame (a fault, a
    /// confused worker) surfaces as a protocol error instead of silently
    /// feeding one superstep's results into the next.
    pub superstep: u64,
    /// Table 1 counters of the superstep.
    pub counters: WorkerCounters,
    /// The worker's partial aggregates.
    pub partial_aggregates: Aggregates,
    /// True when every owned vertex has voted to halt.
    pub all_halted: bool,
    /// Measured wall time of the worker's compute phase, nanoseconds.
    pub compute_ns: u64,
    /// Outbound batches, ascending destination worker (self excluded).
    pub batches: Vec<WireBatch<M>>,
}

impl<M: Wire> Wire for StepDoneBody<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.superstep.encode(out);
        self.counters.encode(out);
        self.partial_aggregates.encode(out);
        self.all_halted.encode(out);
        self.compute_ns.encode(out);
        self.batches.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            superstep: u64::decode(r)?,
            counters: WorkerCounters::decode(r)?,
            partial_aggregates: Aggregates::decode(r)?,
            all_halted: bool::decode(r)?,
            compute_ns: u64::decode(r)?,
            batches: Vec::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{decode_exact, encode_to_vec};

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, tag::STEP, b"hello").unwrap();
        write_frame(&mut buf, tag::FINISH, b"").unwrap();
        let mut cursor = &buf[..];
        assert_eq!(
            read_frame(&mut cursor).unwrap(),
            Some((tag::STEP, b"hello".to_vec()))
        );
        assert_eq!(
            read_frame(&mut cursor).unwrap(),
            Some((tag::FINISH, vec![]))
        );
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF");
    }

    #[test]
    fn truncated_frame_is_an_error_not_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, tag::STEP, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut cursor = &buf[..];
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn absurd_frame_length_is_rejected() {
        let mut buf = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
        buf.push(tag::STEP);
        let mut cursor = &buf[..];
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn init_body_round_trips() {
        use predict_graph::generators::{generate_rmat, RmatConfig};
        let g = generate_rmat(&RmatConfig::new(6, 4).with_seed(3));
        let shards = predict_graph::shard_csr(&g, 2, |v| v as usize % 2);
        let header = InitHeader {
            protocol_version: PROTOCOL_VERSION,
            worker: 1,
            num_workers: 2,
            strategy: PartitionStrategy::Modulo,
            program: ProgramSpec::TopK {
                params: TopKParams::default(),
            },
            fault: None,
        };
        let ranks = {
            let mut r = vec![0.0f64; g.num_vertices()];
            for (i, x) in r.iter_mut().enumerate() {
                *x = (i as f64) * 0.125 + 0.001;
            }
            r
        };
        let body = encode_init(&header, &shards[1], &ranks);
        let (h2, s2, r2) = decode_init(&body).unwrap();
        assert_eq!(h2, header);
        assert_eq!(s2.owned(), shards[1].owned());
        assert_eq!(r2, ranks);
    }

    #[test]
    fn step_bodies_round_trip() {
        let mut aggs = Aggregates::new();
        aggs.add("delta", 1.25);
        let step = StepBody::<f64> {
            superstep: 4,
            previous_aggregates: aggs.clone(),
            batches: vec![WireBatch {
                superstep: 3,
                src: 1,
                dst: 0,
                seq: 3,
                runs: vec![(2, vec![0.5, 0.25])],
            }],
        };
        let back: StepBody<f64> = decode_exact(&encode_to_vec(&step)).unwrap();
        assert_eq!(back, step);

        let done = StepDoneBody::<f64> {
            superstep: 4,
            counters: WorkerCounters::new(10),
            partial_aggregates: aggs,
            all_halted: false,
            compute_ns: 12345,
            batches: vec![],
        };
        let back: StepDoneBody<f64> = decode_exact(&encode_to_vec(&done)).unwrap();
        assert_eq!(back, done);
    }
}
