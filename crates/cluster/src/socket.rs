//! Socket plumbing for [`TransportKind::Socket`](crate::TransportKind):
//! listeners and streams the framed protocol runs over.
//!
//! The driver binds one listener *per worker* at a unique address, spawns
//! the `cluster_worker` binary pointing at it (`--socket <path>` /
//! `--tcp <addr>`), and accepts exactly one connection. Per-worker
//! addresses mean accept order can never confuse worker identities, so the
//! frame protocol itself is byte-for-byte the one the pipe transport
//! speaks — the socket is just a different byte stream under the same
//! `[len][tag][body]` framing.
//!
//! Two address families behind one code path: Unix-domain sockets (the
//! `PREDICT_TRANSPORT=socket` default) and loopback-only TCP
//! ([`SocketListener::bind_tcp_loopback`], exercised by tests and available
//! to multi-machine experiments later). [`SocketStream`] erases the
//! difference for everything above this module.
//!
//! Binding is defensive about *stale* socket files: a previous driver that
//! was killed leaves its socket path behind (Unix sockets are not unlinked
//! by the OS on process death). [`SocketListener::bind_unix`] probes an
//! `AddrInUse` path with a connect — a refused connection proves the file
//! is stale and it is removed and rebound; an accepted connection proves a
//! live driver owns the path and binding fails with a structured error
//! instead of hijacking it.

use std::io::{self, Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// How long the driver waits for a freshly spawned worker to connect to its
/// listener before declaring the spawn failed.
pub const ACCEPT_TIMEOUT: Duration = Duration::from_secs(10);

/// How long a worker retries connecting to the driver's address (the driver
/// binds before spawning, so one attempt normally suffices; retries cover a
/// loaded machine).
pub const CONNECT_TIMEOUT: Duration = Duration::from_secs(10);

/// Poll interval of the non-blocking accept loop.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// A bound, listening socket awaiting its one worker connection.
#[derive(Debug)]
pub enum SocketListener {
    /// Unix-domain listener; `path` is unlinked when the connection that
    /// was accepted from it shuts down.
    Unix {
        /// The listening socket.
        listener: UnixListener,
        /// Filesystem path the socket is bound at.
        path: PathBuf,
    },
    /// Loopback TCP listener.
    Tcp(TcpListener),
}

impl SocketListener {
    /// Binds a Unix-domain listener at `path`, reclaiming a stale socket
    /// file if one is in the way.
    ///
    /// `AddrInUse` is disambiguated by connecting: a live listener accepts
    /// (bind fails — another driver owns the path), a stale file refuses
    /// (it is removed and the bind retried once).
    pub fn bind_unix(path: &Path) -> io::Result<Self> {
        let listener = match UnixListener::bind(path) {
            Ok(l) => l,
            Err(e) if e.kind() == io::ErrorKind::AddrInUse => {
                if UnixStream::connect(path).is_ok() {
                    return Err(io::Error::new(
                        io::ErrorKind::AddrInUse,
                        format!(
                            "socket path {} is owned by a live listener (another driver?)",
                            path.display()
                        ),
                    ));
                }
                // Nothing answers: a stale file from a killed driver.
                std::fs::remove_file(path)?;
                UnixListener::bind(path)?
            }
            Err(e) => return Err(e),
        };
        Ok(Self::Unix {
            listener,
            path: path.to_path_buf(),
        })
    }

    /// Binds a TCP listener on a kernel-assigned loopback port.
    pub fn bind_tcp_loopback() -> io::Result<Self> {
        Ok(Self::Tcp(TcpListener::bind((Ipv4Addr::LOCALHOST, 0))?))
    }

    /// The address a worker must connect to, in the form the
    /// `cluster_worker` binary's `--socket` / `--tcp` flag takes.
    pub fn connect_addr(&self) -> io::Result<String> {
        match self {
            Self::Unix { path, .. } => Ok(path.display().to_string()),
            Self::Tcp(l) => Ok(l.local_addr()?.to_string()),
        }
    }

    /// The socket file this listener owns, if it is a Unix listener.
    pub fn unix_path(&self) -> Option<&Path> {
        match self {
            Self::Unix { path, .. } => Some(path),
            Self::Tcp(_) => None,
        }
    }

    /// Accepts one connection, waiting at most `timeout`.
    ///
    /// Runs a non-blocking accept loop so a worker that never connects
    /// (spawn raced a crash, wrong binary) surfaces as a `TimedOut` error
    /// instead of blocking the driver forever.
    pub fn accept_timeout(&self, timeout: Duration) -> io::Result<SocketStream> {
        let deadline = Instant::now() + timeout;
        loop {
            let accepted = match self {
                Self::Unix { listener, .. } => {
                    listener.set_nonblocking(true)?;
                    listener.accept().map(|(s, _)| SocketStream::Unix(s))
                }
                Self::Tcp(listener) => {
                    listener.set_nonblocking(true)?;
                    listener.accept().map(|(s, _)| SocketStream::Tcp(s))
                }
            };
            match accepted {
                Ok(stream) => {
                    stream.set_blocking()?;
                    return Ok(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("no worker connected within {timeout:?}"),
                        ));
                    }
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// One established frame stream, Unix or TCP — `Read`/`Write` either way.
#[derive(Debug)]
pub enum SocketStream {
    /// A Unix-domain stream.
    Unix(UnixStream),
    /// A TCP stream (loopback in this crate's own usage).
    Tcp(TcpStream),
}

impl SocketStream {
    /// Connects to `addr`: a filesystem path (Unix) or `host:port` (TCP),
    /// retrying until `timeout` — the worker-side half of the handshake.
    pub fn connect(addr: &str, timeout: Duration) -> io::Result<Self> {
        let deadline = Instant::now() + timeout;
        let is_tcp = addr.parse::<SocketAddr>().is_ok();
        loop {
            let attempt = if is_tcp {
                TcpStream::connect(addr).map(Self::Tcp)
            } else {
                UnixStream::connect(addr).map(Self::Unix)
            };
            match attempt {
                Ok(stream) => {
                    if let Self::Tcp(tcp) = &stream {
                        // Frames are latency-bound request/replies; never
                        // batch them behind Nagle.
                        tcp.set_nodelay(true)?;
                    }
                    return Ok(stream);
                }
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            e.kind(),
                            format!("connecting to {addr}: {e}"),
                        ));
                    }
                    std::thread::sleep(ACCEPT_POLL);
                }
            }
        }
    }

    /// An independent handle to the same stream (reads and writes on
    /// different threads).
    pub fn try_clone(&self) -> io::Result<Self> {
        Ok(match self {
            Self::Unix(s) => Self::Unix(s.try_clone()?),
            Self::Tcp(s) => Self::Tcp(s.try_clone()?),
        })
    }

    /// Tears the stream down in both directions, unblocking any thread
    /// mid-read on a clone.
    pub fn shutdown(&self) -> io::Result<()> {
        match self {
            Self::Unix(s) => s.shutdown(std::net::Shutdown::Both),
            Self::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
        }
    }

    fn set_blocking(&self) -> io::Result<()> {
        match self {
            Self::Unix(s) => {
                s.set_nonblocking(false)?;
            }
            Self::Tcp(s) => {
                s.set_nonblocking(false)?;
                s.set_nodelay(true)?;
            }
        }
        Ok(())
    }
}

impl Read for SocketStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Self::Unix(s) => s.read(buf),
            Self::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for SocketStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Self::Unix(s) => s.write(buf),
            Self::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Self::Unix(s) => s.flush(),
            Self::Tcp(s) => s.flush(),
        }
    }
}

/// A fresh, collision-free socket path for one worker of one group:
/// `<tmp>/predict-cw-<pid>-<n>-w<worker>.sock`. The PID keys concurrent
/// drivers apart, the process-wide counter keys concurrent groups within
/// one driver apart, and the worker index keys workers within a group
/// apart — so accept order never has to disambiguate anything.
pub fn fresh_socket_path(worker: usize) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let pid = std::process::id();
    std::env::temp_dir().join(format!("predict-cw-{pid}-{n}-w{worker}.sock"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_paths_never_collide() {
        let a = fresh_socket_path(0);
        let b = fresh_socket_path(0);
        assert_ne!(a, b);
        assert!(a.to_string_lossy().ends_with("-w0.sock"));
    }

    #[test]
    fn unix_round_trip_through_accept_and_connect() {
        let path = fresh_socket_path(7);
        let listener = SocketListener::bind_unix(&path).unwrap();
        let addr = listener.connect_addr().unwrap();
        let peer = std::thread::spawn(move || {
            let mut s = SocketStream::connect(&addr, CONNECT_TIMEOUT).unwrap();
            s.write_all(b"ping").unwrap();
            let mut buf = [0u8; 4];
            s.read_exact(&mut buf).unwrap();
            buf
        });
        let mut stream = listener.accept_timeout(ACCEPT_TIMEOUT).unwrap();
        let mut buf = [0u8; 4];
        stream.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        stream.write_all(b"pong").unwrap();
        assert_eq!(&peer.join().unwrap(), b"pong");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn tcp_loopback_rides_the_same_code_path() {
        let listener = SocketListener::bind_tcp_loopback().unwrap();
        let addr = listener.connect_addr().unwrap();
        assert!(addr.starts_with("127.0.0.1:"));
        let peer = std::thread::spawn(move || {
            let mut s = SocketStream::connect(&addr, CONNECT_TIMEOUT).unwrap();
            s.write_all(b"x").unwrap();
        });
        let mut stream = listener.accept_timeout(ACCEPT_TIMEOUT).unwrap();
        let mut buf = [0u8; 1];
        stream.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"x");
        peer.join().unwrap();
    }

    #[test]
    fn accept_times_out_when_nothing_connects() {
        let path = fresh_socket_path(1);
        let listener = SocketListener::bind_unix(&path).unwrap();
        let err = listener
            .accept_timeout(Duration::from_millis(50))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stale_socket_file_is_reclaimed_on_bind() {
        let path = fresh_socket_path(2);
        // A listener that dies without unlinking leaves the file behind.
        drop(SocketListener::bind_unix(&path).unwrap());
        assert!(path.exists(), "unix sockets are not unlinked on drop");
        let relisten = SocketListener::bind_unix(&path).unwrap();
        assert!(relisten.unix_path().is_some());
        drop(relisten);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn live_listener_is_not_hijacked() {
        let path = fresh_socket_path(3);
        let _live = SocketListener::bind_unix(&path).unwrap();
        let err = SocketListener::bind_unix(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AddrInUse);
        assert!(err.to_string().contains("live listener"));
        std::fs::remove_file(&path).unwrap();
    }
}
