//! The worker side of the protocol: one shard, one serve loop.
//!
//! A worker — OS process or in-process thread, the code path is identical —
//! owns one [`ShardedCsr`] and the corresponding
//! [`WorkerShard`] runtime state, and replays exactly the per-worker half of
//! the in-memory executor: deliver inbound messages, run the compute phase,
//! route the outbox. The only difference is *where* the buffers come from:
//! peer messages arrive as decoded [`WireBatch`](crate::wire::WireBatch)es
//! instead of swapped
//! `Vec`s, and the worker's messages to itself never cross the wire at all
//! (they are kept locally and merged into the next superstep's delivery row
//! at the worker's own position, preserving the ascending-source delivery
//! order of the determinism contract).
//!
//! The loop structure (see [`crate::protocol`]): wait for `Init`, serve one
//! episode of `Step`/`StepDone` rounds until `Finish`/`Values`, loop back to
//! waiting for `Init` — so pooled workers serve many runs. `Shutdown` or EOF
//! ends the loop.

use crate::endpoint::Endpoint;
use crate::protocol::{self, tag, FaultSpec, InitHeader, ProgramSpec, StepBody, StepDoneBody};
use crate::wire::{batch_from_routed, batch_into_row, encode_to_vec, Wire};
use predict_algorithms::{
    ConnectedComponents, NeighborhoodEstimation, PageRank, SemiClustering, TopKRanking,
};
use predict_bsp::runtime::{ShardLayout, WorkerShard};
use predict_bsp::storage::WorkerGraph;
use predict_bsp::VertexProgram;
use predict_graph::{ShardedCsr, VertexId};
use std::time::Instant;

/// Serves a worker endpoint until the peer shuts it down (Shutdown frame or
/// EOF between episodes).
///
/// `standalone` selects how an injected crash manifests: a standalone
/// (process) worker calls `std::process::exit`, an in-process worker
/// returns `Err`, which its transport turns into a dropped channel — both
/// look like an abrupt death to the driver. Protocol violations are
/// reported back through an `Error` frame before returning.
pub fn serve(ep: &mut impl Endpoint, standalone: bool) -> Result<(), String> {
    loop {
        let frame = match ep.recv() {
            Ok(Some(frame)) => frame,
            // EOF between episodes: the driver is gone, exit cleanly.
            Ok(None) => return Ok(()),
            Err(e) => return Err(format!("receiving frame: {e}")),
        };
        match frame {
            (tag::SHUTDOWN, _) => return Ok(()),
            (tag::INIT, body) => {
                let (header, shard, ranks) = match protocol::decode_init(&body) {
                    Ok(init) => init,
                    Err(e) => {
                        report(ep, format!("bad init frame: {e}"));
                        return Err(format!("bad init frame: {e}"));
                    }
                };
                if header.protocol_version != protocol::PROTOCOL_VERSION {
                    let msg = format!(
                        "protocol version mismatch: driver {}, worker {}",
                        header.protocol_version,
                        protocol::PROTOCOL_VERSION
                    );
                    report(ep, msg.clone());
                    return Err(msg);
                }
                serve_episode(ep, standalone, header, shard, ranks)?;
            }
            (other, _) => {
                let msg = format!("unexpected frame tag {other:#04x} while awaiting init");
                report(ep, msg.clone());
                return Err(msg);
            }
        }
    }
}

/// Best-effort `Error` frame; the driver may already be gone.
fn report(ep: &mut impl Endpoint, message: String) {
    let _ = ep.send(tag::ERROR, &encode_to_vec(&message));
}

/// Dispatches one episode to the monomorphized loop for the program the
/// header names.
fn serve_episode(
    ep: &mut impl Endpoint,
    standalone: bool,
    header: InitHeader,
    shard: ShardedCsr,
    ranks: Vec<f64>,
) -> Result<(), String> {
    match &header.program {
        ProgramSpec::PageRank { params } => {
            let program = PageRank::new(*params);
            run_episode(ep, standalone, &header, shard, &program)
        }
        ProgramSpec::TopK { params } => {
            let program = TopKRanking::new(*params, ranks);
            run_episode(ep, standalone, &header, shard, &program)
        }
        ProgramSpec::SemiClustering { params } => {
            let program = SemiClustering::new(*params);
            run_episode(ep, standalone, &header, shard, &program)
        }
        ProgramSpec::ConnectedComponents {} => {
            run_episode(ep, standalone, &header, shard, &ConnectedComponents)
        }
        ProgramSpec::Neighborhood { params } => {
            let program = NeighborhoodEstimation::new(*params);
            run_episode(ep, standalone, &header, shard, &program)
        }
    }
}

/// One episode: the per-worker superstep loop over an explicit transport.
fn run_episode<P>(
    ep: &mut impl Endpoint,
    standalone: bool,
    header: &InitHeader,
    shard_csr: ShardedCsr,
    program: &P,
) -> Result<(), String>
where
    P: VertexProgram,
    P::Message: Wire,
    P::VertexValue: Wire,
{
    let me = header.worker;
    let num_workers = header.num_workers;
    let layout = ShardLayout::build(shard_csr.global_vertices(), num_workers, header.strategy);
    if layout.shard_vertices(me) != shard_csr.owned() {
        let msg = format!("shard ownership of worker {me} does not match the layout");
        report(ep, msg.clone());
        return Err(msg);
    }
    let graph = WorkerGraph::Shard(&shard_csr);
    let mut state: WorkerShard<P> = WorkerShard::init(program, graph, &layout, me);
    let combiner = program.combiner();
    let fault = header.fault.unwrap_or_default();

    // Messages this worker sent to itself last superstep; delivered next
    // superstep at the worker's own position in the source order.
    let mut pending_local: Vec<(VertexId, P::Message)> = Vec::new();

    // Supersteps are strictly sequential; a `Step` that skips ahead or
    // repeats (duplicated/reordered frame) is a protocol violation, not
    // something to silently recompute.
    let mut expected_superstep: u64 = 0;

    ep.send(tag::INIT_OK, &[])
        .map_err(|e| format!("sending init-ok: {e}"))?;

    loop {
        let frame = match ep.recv() {
            Ok(Some(frame)) => frame,
            Ok(None) => return Ok(()), // driver gone mid-episode
            Err(e) => return Err(format!("receiving frame: {e}")),
        };
        match frame {
            (tag::STEP, body) => {
                let step: StepBody<P::Message> = match crate::wire::decode_exact(&body) {
                    Ok(step) => step,
                    Err(e) => {
                        let msg = format!("bad step frame: {e}");
                        report(ep, msg.clone());
                        return Err(msg);
                    }
                };
                if step.superstep != expected_superstep {
                    let msg = format!(
                        "step frame for superstep {} while expecting {expected_superstep}",
                        step.superstep
                    );
                    report(ep, msg.clone());
                    return Err(msg);
                }
                expected_superstep += 1;
                let superstep = step.superstep as usize;
                inject_fault(&fault, superstep, standalone)?;

                // Delivery phase: the batches produced in the previous
                // superstep, ascending source worker, with this worker's own
                // local messages at its own position.
                let mut row: Vec<Vec<(VertexId, P::Message)>> =
                    (0..num_workers).map(|_| Vec::new()).collect();
                row[me] = std::mem::take(&mut pending_local);
                for batch in step.batches {
                    let src = batch.src as usize;
                    if src >= num_workers || src == me {
                        let msg = format!("batch from invalid source worker {src}");
                        report(ep, msg.clone());
                        return Err(msg);
                    }
                    row[src] = batch_into_row(batch);
                }
                state.deliver(&layout, &mut row, combiner);

                // Compute phase, measured.
                let start = Instant::now();
                state.run_superstep(
                    program,
                    graph,
                    &layout,
                    superstep,
                    &step.previous_aggregates,
                );
                let compute_ns = start.elapsed().as_nanos() as u64;

                // Keep local messages, batch up everything bound for peers.
                pending_local = std::mem::take(&mut state.routed[me]);
                let mut batches = Vec::with_capacity(num_workers.saturating_sub(1));
                for dst in 0..num_workers {
                    if dst == me {
                        continue;
                    }
                    batches.push(batch_from_routed(
                        step.superstep,
                        me as u32,
                        dst as u32,
                        &mut state.routed[dst],
                    ));
                }

                let done = StepDoneBody {
                    superstep: step.superstep,
                    counters: state.counters,
                    partial_aggregates: state.partial_aggregates.clone(),
                    all_halted: state.all_halted(),
                    compute_ns,
                    batches,
                };
                ep.send(tag::STEP_DONE, &encode_to_vec(&done))
                    .map_err(|e| format!("sending step-done: {e}"))?;
            }
            (tag::FINISH, _) => {
                let values: Vec<P::VertexValue> = std::mem::take(&mut state.values);
                ep.send(tag::VALUES, &encode_to_vec(&values))
                    .map_err(|e| format!("sending values: {e}"))?;
                return Ok(());
            }
            (tag::SHUTDOWN, _) => return Ok(()),
            (other, _) => {
                let msg = format!("unexpected frame tag {other:#04x} during episode");
                report(ep, msg.clone());
                return Err(msg);
            }
        }
    }
}

/// Applies an injected fault at the start of a superstep's compute.
fn inject_fault(fault: &FaultSpec, superstep: usize, standalone: bool) -> Result<(), String> {
    if fault.hang_at == Some(superstep) {
        // Hang forever (well past any driver timeout); the driver's read
        // timeout is the only way out.
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }
    if fault.crash_at == Some(superstep) {
        if standalone {
            predict_obs::diag!(
                Warn,
                "cluster_worker: injected crash at superstep {superstep}"
            );
            std::process::exit(3);
        }
        // In-process: die without an Error frame, so the driver sees an
        // abrupt disconnect exactly like a process death.
        return Err(format!("injected crash at superstep {superstep}"));
    }
    Ok(())
}
