//! Long-lived BSP worker process.
//!
//! Speaks the framed cluster protocol over stdin/stdout (which is why
//! nothing here may ever print to stdout) and serves episodes until the
//! driver closes the pipe or sends `Shutdown`. Diagnostics go to stderr,
//! where the driver tails them into failure reports.

use predict_cluster::{serve, StdioEndpoint};

fn main() {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut ep = StdioEndpoint::new(stdin.lock(), stdout.lock());
    if let Err(message) = serve(&mut ep, true) {
        predict_obs::diag!(Error, "cluster_worker: {message}");
        std::process::exit(2);
    }
}
