//! Long-lived BSP worker process.
//!
//! By default speaks the framed cluster protocol over stdin/stdout (which
//! is why nothing here may ever print to stdout); `--socket <path>`
//! connects to a driver's Unix-domain listener instead, and `--tcp
//! <host:port>` to a TCP listener — the same serve loop over a different
//! byte stream. Serves episodes until the driver closes the connection or
//! sends `Shutdown`. Diagnostics go to stderr, where the driver tails them
//! into failure reports.

use predict_cluster::socket::{SocketStream, CONNECT_TIMEOUT};
use predict_cluster::{serve, StdioEndpoint};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.as_slice() {
        [] => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            serve(&mut StdioEndpoint::new(stdin.lock(), stdout.lock()), true)
        }
        [flag, addr] if flag == "--socket" || flag == "--tcp" => serve_socket(addr),
        _ => {
            predict_obs::diag!(
                Error,
                "cluster_worker: usage: cluster_worker [--socket <path> | --tcp <host:port>]"
            );
            std::process::exit(2);
        }
    };
    if let Err(message) = result {
        predict_obs::diag!(Error, "cluster_worker: {message}");
        std::process::exit(2);
    }
}

/// Connects back to the driver's listener and serves frames over the
/// stream. The driver binds before spawning this process, so the connect
/// normally succeeds on the first try; `CONNECT_TIMEOUT` bounds the retry
/// loop on a loaded machine.
fn serve_socket(addr: &str) -> Result<(), String> {
    let stream = SocketStream::connect(addr, CONNECT_TIMEOUT)
        .map_err(|e| format!("connecting to driver at {addr}: {e}"))?;
    let reader = stream
        .try_clone()
        .map_err(|e| format!("cloning socket stream: {e}"))?;
    serve(&mut StdioEndpoint::new(reader, stream), true)
}
