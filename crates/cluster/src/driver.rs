//! The cluster driver: the BSP master over a transport boundary.
//!
//! [`drive`] runs one vertex program to completion against a group of
//! workers, mirroring the in-memory executor
//! (`predict_bsp::runtime`) phase for phase: the same clock call order, the
//! same ascending-worker merges, the same halt priority — which is what
//! makes the result byte-identical to an in-memory run (determinism contract
//! point 8). What the in-memory executor does with buffer swaps, the driver
//! does with `Step`/`StepDone` frames; everything order-sensitive still
//! happens on this thread.
//!
//! On top of the simulated [`ClusterClock`] timings the driver records what
//! the paper's simulated clock cannot see: *measured* per-superstep wall
//! time, per-worker compute time and bytes-on-the-wire, attached to the
//! returned [`RunProfile`] as a [`MeasuredRun`].

use crate::error::ClusterError;
use crate::fault::FaultSchedule;
use crate::protocol::{self, tag, FaultSpec, InitHeader, ProgramSpec, StepBody, StepDoneBody};
use crate::transport::{self, Connection, TransportKind, WorkerGroup};
use crate::wire::{decode_exact, encode_to_vec, Wire, WireBatch};
use predict_bsp::runtime::ShardLayout;
use predict_bsp::{
    Aggregates, BspConfig, BspRunResult, ClusterClock, GraphStorage, HaltReason, MeasuredRun,
    MeasuredSuperstep, RunProfile, SuperstepProfile, VertexProgram,
};
use predict_graph::{CsrGraph, ShardedCsr, VertexId};
use std::time::{Duration, Instant};

/// How a cluster drive runs: backend, read deadline, injected fault.
#[derive(Debug, Clone)]
pub struct DriveOptions {
    /// Transport backend to run the workers on.
    pub kind: TransportKind,
    /// Driver-side read deadline per expected frame. A worker that sends
    /// nothing for this long fails the drive with [`ClusterError::Timeout`]
    /// instead of hanging it.
    pub timeout: Duration,
    /// Fault injected into one worker `(worker, fault)` — robustness tests
    /// only. Faulted drives always use a fresh worker group and never
    /// return it to the pool.
    pub fault: Option<(usize, FaultSpec)>,
    /// Deterministic transport-level fault schedule wrapped around one
    /// worker's endpoint `(worker, schedule)` — the fault-injection test
    /// battery. In-process transport only (the wrapper sits between the
    /// serve loop and its channels); like [`DriveOptions::fault`], such
    /// drives always use a fresh group and never repool it.
    pub endpoint_fault: Option<(usize, FaultSchedule)>,
}

impl DriveOptions {
    /// Options for a normal (fault-free) drive on `kind`.
    pub fn new(kind: TransportKind) -> Self {
        Self {
            kind,
            timeout: Duration::from_secs(120),
            fault: None,
            endpoint_fault: None,
        }
    }

    /// True when this drive injects any fault — such drives must run on a
    /// fresh worker group and may never return it to the pool.
    fn faulted(&self) -> bool {
        self.fault.is_some() || self.endpoint_fault.is_some()
    }
}

/// Runs `program` over `graph` on a worker group, returning the same
/// [`BspRunResult`] the in-memory engine returns — byte-identical values,
/// profile and halt reason — plus measured timings in
/// [`RunProfile::measured`].
///
/// `spec` must describe the same program as `program` (the driver keeps its
/// own instance for the master-side halt check; the workers build theirs
/// from the spec). `ranks` is the TOP-K input ranking and empty for every
/// other program.
pub fn drive<P>(
    program: &P,
    spec: &ProgramSpec,
    ranks: &[f64],
    graph: &CsrGraph,
    config: &BspConfig,
    opts: &DriveOptions,
) -> Result<BspRunResult<P::VertexValue>, ClusterError>
where
    P: VertexProgram,
    P::Message: Wire,
    P::VertexValue: Wire,
{
    // Faulted groups die by design; never take one from (or return one to)
    // the shared pool.
    let mut group = if let Some((fw, schedule)) = &opts.endpoint_fault {
        if opts.kind != TransportKind::InProc {
            return Err(ClusterError::Spawn {
                worker: *fw,
                detail: "endpoint fault schedules require the in-process transport".into(),
            });
        }
        let (fw, schedule) = (*fw, schedule.clone());
        WorkerGroup::spawn_with(opts.kind, config.num_workers, |w| {
            Ok(if w == fw {
                Connection::spawn_inproc_faulty(w, schedule.clone())
            } else {
                Connection::spawn_inproc(w)
            })
        })?
    } else if opts.fault.is_some() {
        WorkerGroup::spawn(opts.kind, config.num_workers)?
    } else {
        transport::checkout(opts.kind, config.num_workers)?
    };
    let result = drive_on_group(program, spec, ranks, graph, config, opts, &mut group);
    if result.is_ok() && !opts.faulted() {
        transport::checkin(group);
    }
    // On error (or after a faulted drive) the group drops here, killing its
    // workers; its protocol state is unknown and must not be reused.
    result
}

/// Runs one drive on a caller-provided worker group — for tests and tools
/// that build groups through custom spawns (e.g. the loopback-TCP socket
/// variant). The group is consumed: healthy or not, it is never pooled.
pub fn drive_on<P>(
    program: &P,
    spec: &ProgramSpec,
    ranks: &[f64],
    graph: &CsrGraph,
    config: &BspConfig,
    opts: &DriveOptions,
    mut group: WorkerGroup,
) -> Result<BspRunResult<P::VertexValue>, ClusterError>
where
    P: VertexProgram,
    P::Message: Wire,
    P::VertexValue: Wire,
{
    drive_on_group(program, spec, ranks, graph, config, opts, &mut group)
}

/// Receives one frame from `conn`, requiring tag `want`; `Error` frames
/// become [`ClusterError::Remote`], anything else [`ClusterError::Protocol`].
fn expect_frame(
    conn: &mut Connection,
    want: u8,
    timeout: Duration,
) -> Result<Vec<u8>, ClusterError> {
    let (got, body) = conn.recv(timeout)?;
    if got == tag::ERROR {
        let message: String =
            decode_exact(&body).unwrap_or_else(|_| "<undecodable error frame>".into());
        return Err(ClusterError::Remote {
            worker: conn.worker(),
            message,
        });
    }
    if got != want {
        return Err(ClusterError::Protocol {
            worker: conn.worker(),
            detail: format!("expected frame tag {want:#04x}, got {got:#04x}"),
        });
    }
    Ok(body)
}

fn drive_on_group<P>(
    program: &P,
    spec: &ProgramSpec,
    ranks: &[f64],
    graph: &CsrGraph,
    config: &BspConfig,
    opts: &DriveOptions,
    group: &mut WorkerGroup,
) -> Result<BspRunResult<P::VertexValue>, ClusterError>
where
    P: VertexProgram,
    P::Message: Wire,
    P::VertexValue: Wire,
{
    let num_workers = config.num_workers;
    let n = graph.num_vertices();
    let layout = ShardLayout::build(n, num_workers, config.partition_strategy);
    let run_start = Instant::now();
    let _run_span = predict_obs::trace::span("cluster.run")
        .arg("transport", opts.kind.name())
        .arg("workers", num_workers);
    let step_ns = predict_obs::registry().histogram("cluster.step_ns");
    let wire_bytes_counter = predict_obs::registry().counter("cluster.wire_bytes");

    // Same clock call order as the in-memory executor: setup, read, one
    // superstep call per superstep, write — so simulated times (including
    // their deterministic noise stream) match bit for bit.
    let mut clock = ClusterClock::new(config.cost.clone());
    let setup_ms = clock.setup_time_ms();
    let read_ms = clock.read_time_ms(graph.num_edges(), num_workers);

    let GraphStorage::Sharded(shards) =
        GraphStorage::shard_graph(graph, num_workers, config.partition_strategy)
    else {
        unreachable!("shard_graph always builds sharded storage")
    };

    // Init every worker, then collect InitOk in ascending worker order.
    for (w, shard) in shards.iter().enumerate() {
        let header = InitHeader {
            protocol_version: protocol::PROTOCOL_VERSION,
            worker: w,
            num_workers,
            strategy: config.partition_strategy,
            program: spec.clone(),
            fault: match &opts.fault {
                Some((fw, fault)) if *fw == w => Some(*fault),
                _ => None,
            },
        };
        let body = protocol::encode_init(&header, shard, ranks);
        group.connections[w].send(tag::INIT, &body)?;
    }
    drop(shards);
    for conn in &mut group.connections {
        expect_frame(conn, tag::INIT_OK, opts.timeout)?;
    }

    // Undelivered batches per destination worker. Filled from `StepDone`
    // replies in ascending source order, drained into the next `Step`.
    let mut pending: Vec<Vec<WireBatch<P::Message>>> =
        (0..num_workers).map(|_| Vec::new()).collect();
    let mut previous_aggregates = Aggregates::new();
    let mut supersteps: Vec<SuperstepProfile> = Vec::new();
    let mut measured: Vec<MeasuredSuperstep> = Vec::new();
    let mut halt_reason = HaltReason::MaxSupersteps;

    for superstep in 0..config.max_supersteps {
        let mut step_span =
            predict_obs::trace::span("cluster.step").arg("superstep", superstep as u64);
        let step_start = Instant::now();
        let mut wire_bytes = vec![0u64; num_workers];

        // Fan the step out to every worker before reading any reply, so
        // workers compute concurrently.
        for w in 0..num_workers {
            let step = StepBody {
                superstep: superstep as u64,
                previous_aggregates: previous_aggregates.clone(),
                batches: std::mem::take(&mut pending[w]),
            };
            let body = encode_to_vec(&step);
            wire_bytes[w] += body.len() as u64;
            group.connections[w]
                .send(tag::STEP, &body)
                .map_err(|e| e.at_superstep(superstep))?;
        }

        // Barrier: collect StepDone in ascending worker order and merge in
        // that order, as the in-memory master does.
        let mut worker_counters = Vec::with_capacity(num_workers);
        let mut worker_compute_ns = Vec::with_capacity(num_workers);
        let mut aggregates = Aggregates::new();
        let mut messages_sent = 0u64;
        let mut all_halted = true;
        for (w, wire) in wire_bytes.iter_mut().enumerate() {
            let body = expect_frame(&mut group.connections[w], tag::STEP_DONE, opts.timeout)
                .map_err(|e| e.at_superstep(superstep))?;
            *wire += body.len() as u64;
            let done: StepDoneBody<P::Message> =
                decode_exact(&body).map_err(|e| ClusterError::from_wire(w, e))?;
            if done.superstep != superstep as u64 {
                return Err(ClusterError::Protocol {
                    worker: w,
                    detail: format!(
                        "step-done for superstep {} while collecting superstep {superstep} \
                         (duplicated or reordered barrier frame)",
                        done.superstep
                    ),
                });
            }
            worker_counters.push(done.counters);
            worker_compute_ns.push(done.compute_ns);
            aggregates.merge(&done.partial_aggregates);
            messages_sent += done.counters.total_messages();
            all_halted &= done.all_halted;
            // Route the worker's outbound batches; sources arrive ascending
            // and each source's batches are ascending by destination, so
            // every pending list stays sorted by source worker.
            for batch in done.batches {
                let dst = batch.dst as usize;
                if dst >= num_workers || dst == w {
                    return Err(ClusterError::Protocol {
                        worker: w,
                        detail: format!("batch addressed to invalid worker {dst}"),
                    });
                }
                pending[dst].push(batch);
            }
        }

        let (wall_time_ms, worker_times_ms) = clock.superstep_time_ms(&worker_counters);
        supersteps.push(SuperstepProfile {
            superstep,
            workers: worker_counters,
            worker_times_ms,
            wall_time_ms,
            aggregates: aggregates.clone(),
        });
        // Join the driver-side round-trip with the per-worker compute times
        // the STEP_DONE frames carried back.
        step_span.set_arg("worker_compute_ns", format!("{worker_compute_ns:?}"));
        let wall_ns = step_start.elapsed().as_nanos() as u64;
        step_ns.record(wall_ns);
        wire_bytes_counter.add(wire_bytes.iter().sum());
        predict_obs::registry().counter("cluster.steps").incr();
        measured.push(MeasuredSuperstep {
            wall_ns,
            worker_compute_ns,
            wire_bytes,
        });

        // Halt checks in the executor's priority order. The batches still
        // pending after a halt are never delivered; the in-memory executor
        // delivers them into inboxes no compute phase will ever read, so
        // values and profile are unaffected.
        if program.master_halt(superstep, &aggregates) {
            halt_reason = HaltReason::MasterConverged;
            break;
        }
        if messages_sent == 0 && all_halted {
            halt_reason = HaltReason::AllVerticesHalted;
            break;
        }
        previous_aggregates = aggregates;
    }

    let write_ms = clock.write_time_ms(n, num_workers);

    // Collect final values: one slot-ordered vector per worker, scattered
    // back to vertex order through one cursor per shard.
    for conn in &mut group.connections {
        conn.send(tag::FINISH, &[])?;
    }
    let mut cursors = Vec::with_capacity(num_workers);
    for w in 0..num_workers {
        let body = expect_frame(&mut group.connections[w], tag::VALUES, opts.timeout)?;
        let values: Vec<P::VertexValue> =
            decode_exact(&body).map_err(|e| ClusterError::from_wire(w, e))?;
        if values.len() != layout.shard_vertices(w).len() {
            return Err(ClusterError::Protocol {
                worker: w,
                detail: format!(
                    "expected {} values, got {}",
                    layout.shard_vertices(w).len(),
                    values.len()
                ),
            });
        }
        cursors.push(values.into_iter());
    }
    let mut values: Vec<P::VertexValue> = Vec::with_capacity(n);
    for v in 0..n {
        values.push(
            cursors[layout.owner_of(v as VertexId)]
                .next()
                .expect("value counts verified per shard"),
        );
    }

    let profile = RunProfile {
        algorithm: program.name().to_string(),
        num_vertices: n,
        num_edges: graph.num_edges(),
        num_workers,
        setup_ms,
        read_ms,
        write_ms,
        supersteps,
        measured: Some(MeasuredRun {
            transport: opts.kind.name().to_string(),
            supersteps: measured,
            total_wall_ns: run_start.elapsed().as_nanos() as u64,
        }),
    };
    Ok(BspRunResult {
        values,
        profile,
        halt_reason,
    })
}

/// Builds the shard this driver would send to `worker` — exposed for tests
/// and benches that exercise the wire format against real shards.
pub fn shard_for(graph: &CsrGraph, config: &BspConfig, worker: usize) -> ShardedCsr {
    let GraphStorage::Sharded(mut shards) =
        GraphStorage::shard_graph(graph, config.num_workers, config.partition_strategy)
    else {
        unreachable!("shard_graph always builds sharded storage")
    };
    shards.swap_remove(worker)
}
