//! Workload-level entry point: run a `Workload` on whichever executor the
//! engine's transport mode selects.
//!
//! [`run_workload`] is what the prediction pipeline calls instead of
//! `Workload::run` directly. It resolves the engine's
//! [`TransportMode`](predict_bsp::TransportMode) (honoring the
//! `PREDICT_TRANSPORT` env knob under `Auto`); `InMemory` — and any workload
//! without a [`WorkloadSpec`] — dispatches straight to the in-memory trait
//! method, while `InProc`/`Process`/`Socket` replays the workload's
//! preparation steps
//! (undirected conversion for SC and CC, the PageRank pre-pass for TOP-K)
//! around [`drive`] calls, so the cluster path runs exactly the graph and
//! program sequence the in-memory path runs. Every cluster drive is counted
//! through [`BspEngine::record_external_run`], keeping the engine's
//! `runs_executed` statistic comparable across executors (the TOP-K
//! workload is two runs on either path).

use crate::driver::{drive, DriveOptions};
use crate::error::ClusterError;
use crate::fault::splitmix64;
use crate::protocol::{FaultSpec, ProgramSpec};
use crate::transport::TransportKind;
use predict_algorithms::{
    to_undirected, ConnectedComponents, NeighborhoodEstimation, PageRank, PageRankParams,
    SemiClustering, TopKRanking, Workload, WorkloadRun, WorkloadSpec,
};
use predict_bsp::{BspEngine, BspRunResult, GraphStorage};
use predict_graph::CsrGraph;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Ambient chaos for soak tests: deterministically fault a fraction of the
/// cluster drives [`run_workload`] issues, process-wide.
///
/// While a plan is installed (see [`install_chaos`]), every workload run
/// hashes `(seed, drive counter)` through splitmix64; runs landing under
/// `fault_percent` get a worker crash injected via
/// [`FaultSpec`] — which also forces the drive
/// onto a fresh, never-repooled worker group. The schedule depends only on
/// the seed and the order runs are issued, so a soak's fault mix is
/// reproducible.
#[derive(Debug, Clone, Copy)]
pub struct ChaosPlan {
    /// Seed of the per-drive fault hash.
    pub seed: u64,
    /// Percentage (0–100) of workload runs that get a fault.
    pub fault_percent: u8,
}

static CHAOS: Mutex<Option<ChaosPlan>> = Mutex::new(None);
static CHAOS_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Installs `plan` process-wide and resets the drive counter.
pub fn install_chaos(plan: ChaosPlan) {
    CHAOS_COUNTER.store(0, Ordering::SeqCst);
    *CHAOS.lock().unwrap() = Some(plan);
}

/// Removes any installed chaos plan; subsequent runs are fault-free.
pub fn clear_chaos() {
    *CHAOS.lock().unwrap() = None;
}

/// The fault (if any) the installed chaos plan assigns to the next run.
fn chaos_fault(num_workers: usize) -> Option<(usize, FaultSpec)> {
    let plan = (*CHAOS.lock().unwrap())?;
    let n = CHAOS_COUNTER.fetch_add(1, Ordering::SeqCst);
    let mut state = plan.seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    if splitmix64(&mut state) % 100 >= plan.fault_percent as u64 {
        return None;
    }
    let worker = (splitmix64(&mut state) % num_workers.max(1) as u64) as usize;
    let superstep = (splitmix64(&mut state) % 3) as usize;
    Some((
        worker,
        FaultSpec {
            crash_at: Some(superstep),
            hang_at: None,
        },
    ))
}

/// Runs `workload` on `graph` under the engine's resolved transport.
///
/// `storage` is an optional pre-built sharded/unified store of `graph`,
/// forwarded to the in-memory path when that path is taken (the cluster
/// path ships shards of its own). The in-memory path cannot fail; every
/// error is a cluster-transport failure.
pub fn run_workload(
    engine: &BspEngine,
    workload: &dyn Workload,
    graph: &CsrGraph,
    storage: Option<&GraphStorage>,
) -> Result<WorkloadRun, ClusterError> {
    let choice = engine.config().transport.resolve();
    let (Some(kind), Some(spec)) = (TransportKind::from_choice(choice), workload.spec()) else {
        return Ok(match storage {
            Some(storage) => workload.run_storage(engine, graph, storage),
            None => workload.run(engine, graph),
        });
    };
    let mut opts = DriveOptions::new(kind);
    opts.fault = chaos_fault(engine.config().num_workers);
    run_spec(engine, &spec, graph, &opts)
}

/// Runs a [`WorkloadSpec`] over the cluster transport in `opts`, replaying
/// the in-memory workloads' preparation steps.
pub fn run_spec(
    engine: &BspEngine,
    spec: &WorkloadSpec,
    graph: &CsrGraph,
    opts: &DriveOptions,
) -> Result<WorkloadRun, ClusterError> {
    let config = engine.config();
    match spec {
        WorkloadSpec::PageRank { params } => {
            let program = PageRank::new(*params);
            let result = drive(
                &program,
                &ProgramSpec::PageRank { params: *params },
                &[],
                graph,
                config,
                opts,
            )?;
            engine.record_external_run();
            Ok(into_run(result))
        }
        WorkloadSpec::TopK {
            params,
            pagerank_epsilon,
        } => {
            // The PageRank pre-pass that produces the input ranking; only
            // the top-k phase below is profiled, as in the in-memory path.
            let pr_params = PageRankParams::with_epsilon(*pagerank_epsilon, graph.num_vertices());
            let pre = PageRank::new(pr_params);
            let ranks = drive(
                &pre,
                &ProgramSpec::PageRank { params: pr_params },
                &[],
                graph,
                config,
                opts,
            )?
            .values;
            engine.record_external_run();
            let program = TopKRanking::new(*params, ranks.clone());
            let result = drive(
                &program,
                &ProgramSpec::TopK { params: *params },
                &ranks,
                graph,
                config,
                opts,
            )?;
            engine.record_external_run();
            Ok(into_run(result))
        }
        WorkloadSpec::SemiClustering { params } => {
            let undirected = to_undirected(graph);
            let program = SemiClustering::new(*params);
            let result = drive(
                &program,
                &ProgramSpec::SemiClustering { params: *params },
                &[],
                &undirected,
                config,
                opts,
            )?;
            engine.record_external_run();
            Ok(into_run(result))
        }
        WorkloadSpec::ConnectedComponents {} => {
            let undirected = to_undirected(graph);
            let result = drive(
                &ConnectedComponents,
                &ProgramSpec::ConnectedComponents {},
                &[],
                &undirected,
                config,
                opts,
            )?;
            engine.record_external_run();
            Ok(into_run(result))
        }
        WorkloadSpec::Neighborhood { params } => {
            let program = NeighborhoodEstimation::new(*params);
            let result = drive(
                &program,
                &ProgramSpec::Neighborhood { params: *params },
                &[],
                graph,
                config,
                opts,
            )?;
            engine.record_external_run();
            Ok(into_run(result))
        }
    }
}

fn into_run<V>(result: BspRunResult<V>) -> WorkloadRun {
    WorkloadRun {
        profile: result.profile,
        halt_reason: result.halt_reason,
    }
}
