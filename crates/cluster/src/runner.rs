//! Workload-level entry point: run a `Workload` on whichever executor the
//! engine's transport mode selects.
//!
//! [`run_workload`] is what the prediction pipeline calls instead of
//! `Workload::run` directly. It resolves the engine's
//! [`TransportMode`](predict_bsp::TransportMode) (honoring the
//! `PREDICT_TRANSPORT` env knob under `Auto`); `InMemory` — and any workload
//! without a [`WorkloadSpec`] — dispatches straight to the in-memory trait
//! method, while `InProc`/`Process` replays the workload's preparation steps
//! (undirected conversion for SC and CC, the PageRank pre-pass for TOP-K)
//! around [`drive`] calls, so the cluster path runs exactly the graph and
//! program sequence the in-memory path runs. Every cluster drive is counted
//! through [`BspEngine::record_external_run`], keeping the engine's
//! `runs_executed` statistic comparable across executors (the TOP-K
//! workload is two runs on either path).

use crate::driver::{drive, DriveOptions};
use crate::error::ClusterError;
use crate::protocol::ProgramSpec;
use crate::transport::TransportKind;
use predict_algorithms::{
    to_undirected, ConnectedComponents, NeighborhoodEstimation, PageRank, PageRankParams,
    SemiClustering, TopKRanking, Workload, WorkloadRun, WorkloadSpec,
};
use predict_bsp::{BspEngine, BspRunResult, GraphStorage};
use predict_graph::CsrGraph;

/// Runs `workload` on `graph` under the engine's resolved transport.
///
/// `storage` is an optional pre-built sharded/unified store of `graph`,
/// forwarded to the in-memory path when that path is taken (the cluster
/// path ships shards of its own). The in-memory path cannot fail; every
/// error is a cluster-transport failure.
pub fn run_workload(
    engine: &BspEngine,
    workload: &dyn Workload,
    graph: &CsrGraph,
    storage: Option<&GraphStorage>,
) -> Result<WorkloadRun, ClusterError> {
    let choice = engine.config().transport.resolve();
    let (Some(kind), Some(spec)) = (TransportKind::from_choice(choice), workload.spec()) else {
        return Ok(match storage {
            Some(storage) => workload.run_storage(engine, graph, storage),
            None => workload.run(engine, graph),
        });
    };
    let opts = DriveOptions::new(kind);
    run_spec(engine, &spec, graph, &opts)
}

/// Runs a [`WorkloadSpec`] over the cluster transport in `opts`, replaying
/// the in-memory workloads' preparation steps.
pub fn run_spec(
    engine: &BspEngine,
    spec: &WorkloadSpec,
    graph: &CsrGraph,
    opts: &DriveOptions,
) -> Result<WorkloadRun, ClusterError> {
    let config = engine.config();
    match spec {
        WorkloadSpec::PageRank { params } => {
            let program = PageRank::new(*params);
            let result = drive(
                &program,
                &ProgramSpec::PageRank { params: *params },
                &[],
                graph,
                config,
                opts,
            )?;
            engine.record_external_run();
            Ok(into_run(result))
        }
        WorkloadSpec::TopK {
            params,
            pagerank_epsilon,
        } => {
            // The PageRank pre-pass that produces the input ranking; only
            // the top-k phase below is profiled, as in the in-memory path.
            let pr_params = PageRankParams::with_epsilon(*pagerank_epsilon, graph.num_vertices());
            let pre = PageRank::new(pr_params);
            let ranks = drive(
                &pre,
                &ProgramSpec::PageRank { params: pr_params },
                &[],
                graph,
                config,
                opts,
            )?
            .values;
            engine.record_external_run();
            let program = TopKRanking::new(*params, ranks.clone());
            let result = drive(
                &program,
                &ProgramSpec::TopK { params: *params },
                &ranks,
                graph,
                config,
                opts,
            )?;
            engine.record_external_run();
            Ok(into_run(result))
        }
        WorkloadSpec::SemiClustering { params } => {
            let undirected = to_undirected(graph);
            let program = SemiClustering::new(*params);
            let result = drive(
                &program,
                &ProgramSpec::SemiClustering { params: *params },
                &[],
                &undirected,
                config,
                opts,
            )?;
            engine.record_external_run();
            Ok(into_run(result))
        }
        WorkloadSpec::ConnectedComponents {} => {
            let undirected = to_undirected(graph);
            let result = drive(
                &ConnectedComponents,
                &ProgramSpec::ConnectedComponents {},
                &[],
                &undirected,
                config,
                opts,
            )?;
            engine.record_external_run();
            Ok(into_run(result))
        }
        WorkloadSpec::Neighborhood { params } => {
            let program = NeighborhoodEstimation::new(*params);
            let result = drive(
                &program,
                &ProgramSpec::Neighborhood { params: *params },
                &[],
                graph,
                config,
                opts,
            )?;
            engine.record_external_run();
            Ok(into_run(result))
        }
    }
}

fn into_run<V>(result: BspRunResult<V>) -> WorkloadRun {
    WorkloadRun {
        profile: result.profile,
        halt_reason: result.halt_reason,
    }
}
