//! Property-based tests for the BSP engine: counter consistency, partition
//! totals and determinism on arbitrary graphs.

use predict_bsp::{
    BspConfig, BspEngine, ClusterCostConfig, ComputeContext, ExecutionMode, GraphStorage,
    InitContext, PartitionStrategy, Partitioning, StorageMode, VertexProgram,
};
use predict_graph::{CsrGraph, EdgeList, VertexId};
use proptest::prelude::*;

/// A two-phase program: every vertex broadcasts its id in superstep 0 and the
/// receivers count messages in superstep 1. Exercises messaging, reactivation
/// and halting on arbitrary topologies.
struct CountIncoming;

impl VertexProgram for CountIncoming {
    type VertexValue = u64;
    type Message = u32;

    fn name(&self) -> &'static str {
        "count-incoming"
    }

    fn init_vertex(&self, _v: VertexId, _ctx: &InitContext<'_>) -> u64 {
        0
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, u64, u32>, messages: &[u32]) {
        if ctx.superstep == 0 {
            let id = ctx.vertex;
            ctx.send_to_all_neighbors(id);
        } else {
            *ctx.value += messages.len() as u64;
        }
        ctx.vote_to_halt();
    }

    fn message_size_bytes(&self, _m: &u32) -> u64 {
        4
    }
}

fn graph_strategy(max_vertices: u32, max_edges: usize) -> impl Strategy<Value = CsrGraph> {
    prop::collection::vec((0..max_vertices, 0..max_vertices), 1..max_edges).prop_map(|pairs| {
        let mut el = EdgeList::new();
        for (s, d) in pairs {
            el.push(s, d);
        }
        CsrGraph::from_edge_list(&el)
    })
}

/// Case count for this suite: the local default, bounded by `PROPTEST_CASES`
/// when set (CI sets it so the property suites finish in seconds).
///
/// Kept at the call site (not only in the vendored proptest) because the real
/// registry `proptest` ignores `PROPTEST_CASES` once `with_cases` is used;
/// this keeps the CI bound working if the workspace swaps back to it.
fn suite_cases(default_cases: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.trim().parse::<u32>().ok())
        .map_or(default_cases, |env| default_cases.min(env))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(suite_cases(32)))]

    /// Per-superstep counters are internally consistent: worker vertex counts
    /// partition the graph, active vertices never exceed owned vertices, and
    /// superstep 0 sends exactly one message per edge.
    #[test]
    fn counters_are_consistent(graph in graph_strategy(48, 200), workers in 1usize..7) {
        let engine = BspEngine::new(
            BspConfig::with_workers(workers).with_cost(ClusterCostConfig::noiseless()),
        );
        let result = engine.run(&graph, &CountIncoming);
        let first = &result.profile.supersteps[0];
        prop_assert_eq!(first.workers.len(), workers);

        let totals = first.totals();
        prop_assert_eq!(totals.total_vertices as usize, graph.num_vertices());
        prop_assert_eq!(totals.active_vertices as usize, graph.num_vertices());
        prop_assert_eq!(totals.total_messages() as usize, graph.num_edges());
        prop_assert_eq!(totals.total_message_bytes() as usize, graph.num_edges() * 4);
        for w in &first.workers {
            prop_assert!(w.active_vertices <= w.total_vertices);
        }

        // In superstep 1 every vertex's value equals its in-degree.
        for v in graph.vertices() {
            prop_assert_eq!(result.values[v as usize], graph.in_degree(v) as u64);
        }
    }

    /// Local plus remote messages always equals the total, and a single-worker
    /// run has no remote messages at all.
    #[test]
    fn message_locality_classification(graph in graph_strategy(40, 160), workers in 2usize..6) {
        let single = BspEngine::new(
            BspConfig::with_workers(1).with_cost(ClusterCostConfig::noiseless()),
        )
        .run(&graph, &CountIncoming);
        for s in &single.profile.supersteps {
            prop_assert_eq!(s.totals().remote_messages, 0);
        }

        let multi = BspEngine::new(
            BspConfig::with_workers(workers).with_cost(ClusterCostConfig::noiseless()),
        )
        .run(&graph, &CountIncoming);
        for s in &multi.profile.supersteps {
            let t = s.totals();
            prop_assert_eq!(t.local_messages + t.remote_messages, t.total_messages());
        }
        // Results do not depend on the worker count.
        prop_assert_eq!(single.values, multi.values);
    }

    /// The engine is fully deterministic: identical runs produce identical
    /// profiles, including the simulated timings.
    #[test]
    fn runs_are_deterministic(graph in graph_strategy(40, 160), workers in 1usize..6) {
        let engine = BspEngine::new(BspConfig::with_workers(workers));
        let a = engine.run(&graph, &CountIncoming);
        let b = engine.run(&graph, &CountIncoming);
        prop_assert_eq!(a.values, b.values);
        prop_assert_eq!(a.profile, b.profile);
    }

    /// Sequential and parallel execution are indistinguishable: for any
    /// graph, worker count and thread count, the run produces identical
    /// values, halt reason and full profile (counters, aggregates and
    /// simulated timings) — the runtime's determinism contract.
    #[test]
    fn sequential_and_parallel_execution_are_identical(
        graph in graph_strategy(48, 200),
        workers in 1usize..8,
        threads in 2usize..5,
    ) {
        let sequential = BspEngine::new(
            BspConfig::with_workers(workers).with_execution(ExecutionMode::Sequential),
        )
        .run(&graph, &CountIncoming);
        let parallel = BspEngine::new(
            BspConfig::with_workers(workers)
                .with_execution(ExecutionMode::Parallel { threads }),
        )
        .run(&graph, &CountIncoming);
        prop_assert_eq!(sequential.values, parallel.values);
        prop_assert_eq!(sequential.halt_reason, parallel.halt_reason);
        prop_assert_eq!(sequential.profile, parallel.profile);
    }

    /// Unified and sharded graph storage are indistinguishable: for any
    /// graph, worker count, partition strategy and thread count, the run
    /// produces identical values, halt reason and full profile — the
    /// storage half of the runtime's determinism contract. Covers empty
    /// worker ranges (more workers than a small graph's vertices) and
    /// cross-shard edges by construction.
    #[test]
    fn unified_and_sharded_storage_are_identical(
        graph in graph_strategy(48, 200),
        workers in 1usize..8,
        threads in 1usize..4,
        strategy_idx in 0usize..3,
    ) {
        let strategy = [
            PartitionStrategy::Hash,
            PartitionStrategy::Range,
            PartitionStrategy::Modulo,
        ][strategy_idx];
        let config = BspConfig::with_workers(workers)
            .with_partition_strategy(strategy)
            .with_execution(ExecutionMode::Parallel { threads });
        let unified = BspEngine::new(config.clone().with_storage(StorageMode::Unified))
            .run(&graph, &CountIncoming);
        let sharded = BspEngine::new(config.clone().with_storage(StorageMode::Sharded))
            .run(&graph, &CountIncoming);
        prop_assert_eq!(&unified.values, &sharded.values);
        prop_assert_eq!(unified.halt_reason, sharded.halt_reason);
        prop_assert_eq!(&unified.profile, &sharded.profile);
        // Shards built from the edge list (never materializing the unified
        // CSR) run identically too.
        let storage = GraphStorage::shard_edge_list(&graph.to_edge_list(), workers, strategy);
        let from_list = BspEngine::new(config).run_storage(&storage, &CountIncoming);
        prop_assert_eq!(&unified.values, &from_list.values);
        prop_assert_eq!(&unified.profile, &from_list.profile);
    }

    /// Every partitioning strategy assigns each vertex to exactly one worker
    /// and its outbound-edge totals sum to the graph's edge count.
    #[test]
    fn partitioning_invariants(
        graph in graph_strategy(64, 250),
        workers in 1usize..9,
        strategy_idx in 0usize..3,
    ) {
        let strategy = [
            PartitionStrategy::Hash,
            PartitionStrategy::Range,
            PartitionStrategy::Modulo,
        ][strategy_idx];
        let p = Partitioning::new(&graph, workers, strategy);
        let vertex_total: usize = (0..workers).map(|w| p.vertices_of_worker(w)).sum();
        prop_assert_eq!(vertex_total, graph.num_vertices());
        let edge_total: usize = p.outbound_edges_per_worker().iter().sum();
        prop_assert_eq!(edge_total, graph.num_edges());
        prop_assert!(p.critical_path_worker() < workers);
    }
}
