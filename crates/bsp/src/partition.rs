//! Vertex-to-worker partitioning.
//!
//! The Giraph master partitions the input graph over workers before the first
//! superstep (section 2.2 of the paper). The partitioning scheme determines
//! which messages are local versus remote and which worker ends up on the
//! critical path: the paper's critical-path model (section 3.4) identifies the
//! worker with the largest number of outbound edges, which is exactly what
//! [`Partitioning::outbound_edges_per_worker`] reports.

use predict_graph::{CsrGraph, VertexId};
use serde::{Deserialize, Serialize};

/// Strategy for assigning vertices to workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PartitionStrategy {
    /// Giraph's default: vertex `v` goes to worker `hash(v) % num_workers`.
    /// With dense vertex ids this is implemented as a multiplicative hash so
    /// consecutive ids do not all land on consecutive workers.
    Hash,
    /// Contiguous ranges of vertex ids per worker (`v * workers / n`).
    Range,
    /// Plain modulo assignment (`v % num_workers`); simplest to reason about
    /// in tests.
    Modulo,
}

/// Assigns vertex `v` of an `n`-vertex graph to one of `num_workers` workers.
///
/// This is a pure function of `(v, n, num_workers, strategy)` — it never looks
/// at the edges — which is what lets the runtime cache shard layouts across
/// graphs of equal size (see [`crate::runtime`]).
pub(crate) fn assign_vertex(
    v: usize,
    n: usize,
    num_workers: usize,
    strategy: PartitionStrategy,
) -> u32 {
    match strategy {
        PartitionStrategy::Hash => {
            // Fibonacci hashing of the vertex id.
            let h = (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ((h >> 32) % num_workers as u64) as u32
        }
        PartitionStrategy::Range => ((v * num_workers) / n.max(1)) as u32,
        PartitionStrategy::Modulo => (v % num_workers) as u32,
    }
}

/// A concrete assignment of every vertex to a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    strategy: PartitionStrategy,
    num_workers: usize,
    assignment: Vec<u32>,
    vertices_per_worker: Vec<usize>,
    outbound_edges_per_worker: Vec<usize>,
}

impl Partitioning {
    /// Partitions the vertices of `graph` over `num_workers` workers using
    /// `strategy`.
    ///
    /// The per-worker outbound-edge totals (the input of the paper's
    /// critical-path model) are computed here, once, so repeated
    /// [`Partitioning::critical_path_worker`] queries never rescan the CSR.
    ///
    /// # Panics
    ///
    /// Panics if `num_workers == 0`.
    pub fn new(graph: &CsrGraph, num_workers: usize, strategy: PartitionStrategy) -> Self {
        assert!(num_workers > 0, "at least one worker is required");
        let n = graph.num_vertices();
        let mut assignment = vec![0u32; n];
        let mut vertices_per_worker = vec![0usize; num_workers];
        let mut outbound_edges_per_worker = vec![0usize; num_workers];
        for (v, slot) in assignment.iter_mut().enumerate() {
            let w = assign_vertex(v, n, num_workers, strategy);
            *slot = w;
            vertices_per_worker[w as usize] += 1;
            outbound_edges_per_worker[w as usize] += graph.out_degree(v as VertexId);
        }
        Self {
            strategy,
            num_workers,
            assignment,
            vertices_per_worker,
            outbound_edges_per_worker,
        }
    }

    /// The strategy this partitioning was built with.
    pub fn strategy(&self) -> PartitionStrategy {
        self.strategy
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Worker that owns vertex `v`.
    pub fn worker_of(&self, v: VertexId) -> usize {
        self.assignment[v as usize] as usize
    }

    /// Number of vertices assigned to worker `w`.
    pub fn vertices_of_worker(&self, w: usize) -> usize {
        self.vertices_per_worker[w]
    }

    /// Iterates over the vertices assigned to worker `w` in increasing id
    /// order.
    pub fn worker_vertices(&self, w: usize) -> impl Iterator<Item = VertexId> + '_ {
        self.assignment
            .iter()
            .enumerate()
            .filter(move |(_, &a)| a as usize == w)
            .map(|(v, _)| v as VertexId)
    }

    /// Total outbound edges of the vertices owned by each worker, computed
    /// once at construction. The worker with the largest count is the paper's
    /// critical-path worker.
    pub fn outbound_edges_per_worker(&self) -> &[usize] {
        &self.outbound_edges_per_worker
    }

    /// Index of the worker with the most outbound edges (the critical-path
    /// worker of the paper's model). Returns 0 for an empty graph.
    pub fn critical_path_worker(&self) -> usize {
        self.outbound_edges_per_worker
            .iter()
            .enumerate()
            .max_by_key(|(_, &e)| e)
            .map(|(w, _)| w)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predict_graph::generators::{generate_rmat, star, RmatConfig};

    #[test]
    fn every_vertex_is_assigned_exactly_once() {
        let g = generate_rmat(&RmatConfig::new(8, 4).with_seed(1));
        for strategy in [
            PartitionStrategy::Hash,
            PartitionStrategy::Range,
            PartitionStrategy::Modulo,
        ] {
            let p = Partitioning::new(&g, 7, strategy);
            let total: usize = (0..7).map(|w| p.vertices_of_worker(w)).sum();
            assert_eq!(total, g.num_vertices());
            for v in g.vertices() {
                assert!(p.worker_of(v) < 7);
            }
        }
    }

    #[test]
    fn worker_vertices_matches_assignment() {
        let g = generate_rmat(&RmatConfig::new(7, 4).with_seed(2));
        let p = Partitioning::new(&g, 4, PartitionStrategy::Hash);
        for w in 0..4 {
            let vs: Vec<_> = p.worker_vertices(w).collect();
            assert_eq!(vs.len(), p.vertices_of_worker(w));
            assert!(vs.iter().all(|&v| p.worker_of(v) == w));
        }
    }

    #[test]
    fn hash_partitioning_is_roughly_balanced() {
        let g = generate_rmat(&RmatConfig::new(10, 4).with_seed(3));
        let p = Partitioning::new(&g, 8, PartitionStrategy::Hash);
        let expected = g.num_vertices() / 8;
        for w in 0..8 {
            let v = p.vertices_of_worker(w);
            assert!(
                v > expected / 2 && v < expected * 2,
                "worker {w} owns {v} vertices, expected around {expected}"
            );
        }
    }

    #[test]
    fn modulo_strategy_is_predictable() {
        let g = generate_rmat(&RmatConfig::new(6, 4).with_seed(1));
        let p = Partitioning::new(&g, 3, PartitionStrategy::Modulo);
        assert_eq!(p.worker_of(0), 0);
        assert_eq!(p.worker_of(1), 1);
        assert_eq!(p.worker_of(2), 2);
        assert_eq!(p.worker_of(3), 0);
    }

    #[test]
    fn outbound_edges_sum_to_edge_count() {
        let g = generate_rmat(&RmatConfig::new(9, 6).with_seed(5));
        let p = Partitioning::new(&g, 5, PartitionStrategy::Hash);
        let sum: usize = p.outbound_edges_per_worker().iter().sum();
        assert_eq!(sum, g.num_edges());
    }

    #[test]
    fn critical_path_worker_owns_the_hub_in_a_star() {
        // All edges leave the hub (vertex 0), so the worker that owns vertex 0
        // must be the critical-path worker.
        let g = star(100);
        let p = Partitioning::new(&g, 4, PartitionStrategy::Modulo);
        assert_eq!(p.critical_path_worker(), p.worker_of(0));
    }

    #[test]
    fn single_worker_owns_everything() {
        let g = generate_rmat(&RmatConfig::new(6, 4).with_seed(1));
        let p = Partitioning::new(&g, 1, PartitionStrategy::Hash);
        assert_eq!(p.vertices_of_worker(0), g.num_vertices());
        assert_eq!(p.critical_path_worker(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let g = generate_rmat(&RmatConfig::new(5, 2).with_seed(1));
        let _ = Partitioning::new(&g, 0, PartitionStrategy::Hash);
    }
}
