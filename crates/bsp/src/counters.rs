//! Per-worker, per-superstep feature counters.
//!
//! Table 1 of the paper lists the key input features PREDIcT profiles during
//! sample runs: active vertices, total vertices, local/remote message counts
//! and byte counts. The BSP engine maintains exactly these counters for every
//! worker in every superstep, mirroring how the paper instruments the code
//! path of each Giraph worker (section 3.4, "Training Methodology").

use serde::{Deserialize, Serialize};

/// Counters collected by a single worker during a single superstep.
///
/// "Local" messages have a destination vertex assigned to the same worker as
/// the sender; "remote" messages cross workers and therefore the (simulated)
/// network.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkerCounters {
    /// Number of vertices that executed the compute function this superstep.
    pub active_vertices: u64,
    /// Number of vertices assigned to this worker.
    pub total_vertices: u64,
    /// Messages sent to vertices on the same worker.
    pub local_messages: u64,
    /// Messages sent to vertices on other workers.
    pub remote_messages: u64,
    /// Total bytes of local messages.
    pub local_message_bytes: u64,
    /// Total bytes of remote messages.
    pub remote_message_bytes: u64,
}

impl WorkerCounters {
    /// Creates counters for a worker that owns `total_vertices` vertices and
    /// has done no work yet.
    pub fn new(total_vertices: u64) -> Self {
        Self {
            total_vertices,
            ..Default::default()
        }
    }

    /// Resets the counters in place for a new superstep of a worker owning
    /// `total_vertices` vertices. The runtime's shards reuse one accumulator
    /// across supersteps instead of constructing a fresh one.
    pub fn reset(&mut self, total_vertices: u64) {
        *self = Self::new(total_vertices);
    }

    /// Records one sent message of `bytes` bytes; `local` selects which pair
    /// of counters is incremented.
    pub fn record_message(&mut self, bytes: u64, local: bool) {
        if local {
            self.local_messages += 1;
            self.local_message_bytes += bytes;
        } else {
            self.remote_messages += 1;
            self.remote_message_bytes += bytes;
        }
    }

    /// Total messages sent (local + remote).
    pub fn total_messages(&self) -> u64 {
        self.local_messages + self.remote_messages
    }

    /// Total message bytes sent (local + remote).
    pub fn total_message_bytes(&self) -> u64 {
        self.local_message_bytes + self.remote_message_bytes
    }

    /// Average size in bytes of the messages sent by this worker
    /// (the `AvgMsgSize` feature of Table 1); 0 when no messages were sent.
    pub fn avg_message_size(&self) -> f64 {
        let msgs = self.total_messages();
        if msgs == 0 {
            0.0
        } else {
            self.total_message_bytes() as f64 / msgs as f64
        }
    }

    /// Element-wise sum of two counter sets (used to aggregate workers into
    /// per-superstep totals).
    pub fn merged(&self, other: &Self) -> Self {
        Self {
            active_vertices: self.active_vertices + other.active_vertices,
            total_vertices: self.total_vertices + other.total_vertices,
            local_messages: self.local_messages + other.local_messages,
            remote_messages: self.remote_messages + other.remote_messages,
            local_message_bytes: self.local_message_bytes + other.local_message_bytes,
            remote_message_bytes: self.remote_message_bytes + other.remote_message_bytes,
        }
    }
}

/// Sums a slice of per-worker counters into graph-level totals for one
/// superstep.
pub fn sum_counters(workers: &[WorkerCounters]) -> WorkerCounters {
    workers
        .iter()
        .fold(WorkerCounters::default(), |acc, w| acc.merged(w))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_message_routes_to_correct_counters() {
        let mut c = WorkerCounters::new(10);
        c.record_message(8, true);
        c.record_message(16, false);
        c.record_message(24, false);
        assert_eq!(c.local_messages, 1);
        assert_eq!(c.local_message_bytes, 8);
        assert_eq!(c.remote_messages, 2);
        assert_eq!(c.remote_message_bytes, 40);
        assert_eq!(c.total_messages(), 3);
        assert_eq!(c.total_message_bytes(), 48);
    }

    #[test]
    fn avg_message_size_handles_zero_messages() {
        let c = WorkerCounters::new(5);
        assert_eq!(c.avg_message_size(), 0.0);
        let mut c2 = c;
        c2.record_message(10, true);
        c2.record_message(30, false);
        assert_eq!(c2.avg_message_size(), 20.0);
    }

    #[test]
    fn merged_sums_all_fields() {
        let mut a = WorkerCounters::new(4);
        a.active_vertices = 3;
        a.record_message(8, true);
        let mut b = WorkerCounters::new(6);
        b.active_vertices = 5;
        b.record_message(8, false);
        let m = a.merged(&b);
        assert_eq!(m.total_vertices, 10);
        assert_eq!(m.active_vertices, 8);
        assert_eq!(m.local_messages, 1);
        assert_eq!(m.remote_messages, 1);
        assert_eq!(m.total_message_bytes(), 16);
    }

    #[test]
    fn sum_counters_over_slice() {
        let workers = vec![
            WorkerCounters::new(3),
            WorkerCounters::new(7),
            WorkerCounters::new(5),
        ];
        let total = sum_counters(&workers);
        assert_eq!(total.total_vertices, 15);
        assert_eq!(total.active_vertices, 0);
    }
}
