//! Message combiners.
//!
//! Giraph lets an algorithm install a *combiner* that merges messages destined
//! for the same vertex before they are delivered, trading computation for
//! memory and network volume. PREDIcT's feature counters are recorded at send
//! time — before combining — exactly as Giraph's counters are, so installing a
//! combiner changes delivery cost but not the profiled Table 1 features.
//!
//! The parallel runtime applies combiners during the delivery phase: a
//! program that returns one from [`VertexProgram::combiner`] has every inbox
//! reduced in place ([`combine_in_place`]) right after delivery, so its
//! compute function sees at most one message per superstep. Combining folds
//! left-to-right in delivery order — (source worker asc, source vertex asc,
//! send order) — which keeps runs byte-identical across thread counts even
//! for non-associative floating-point folds.
//!
//! [`VertexProgram::combiner`]: crate::program::VertexProgram::combiner

/// Merges two messages bound for the same destination vertex into one.
pub trait MessageCombiner<M>: Sync {
    /// Combines `a` and `b` into a single equivalent message.
    fn combine(&self, a: M, b: M) -> M;
}

/// Combiner that sums `f64` messages — correct for PageRank-style rank
/// transfer where the receiving vertex only needs the sum of contributions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SumCombiner;

impl MessageCombiner<f64> for SumCombiner {
    fn combine(&self, a: f64, b: f64) -> f64 {
        a + b
    }
}

/// Combiner that keeps the minimum of two messages — correct for connected
/// components style label propagation and for SSSP distance relaxation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinCombiner;

impl MessageCombiner<f64> for MinCombiner {
    fn combine(&self, a: f64, b: f64) -> f64 {
        a.min(b)
    }
}

impl MessageCombiner<u32> for MinCombiner {
    fn combine(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }
}

/// Applies a combiner to a vector of messages, reducing it to at most one
/// message. Returns the input untouched when it has fewer than two entries.
pub fn combine_all<M, C: MessageCombiner<M>>(combiner: &C, mut messages: Vec<M>) -> Vec<M> {
    if messages.len() < 2 {
        return messages;
    }
    let mut acc = messages.pop().expect("checked non-empty");
    while let Some(m) = messages.pop() {
        acc = combiner.combine(acc, m);
    }
    vec![acc]
}

/// Reduces `messages` in place to at most one message, folding left-to-right
/// (delivery order) and consuming the originals (no clones). The vector's
/// capacity is kept, so the runtime can reuse the same inbox buffer across
/// supersteps. No-op for fewer than two entries.
pub fn combine_in_place<M, C: MessageCombiner<M> + ?Sized>(combiner: &C, messages: &mut Vec<M>) {
    if messages.len() < 2 {
        return;
    }
    let mut acc: Option<M> = None;
    for m in messages.drain(..) {
        acc = Some(match acc {
            None => m,
            Some(a) => combiner.combine(a, m),
        });
    }
    messages.push(acc.expect("checked non-empty"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_combiner_sums() {
        assert_eq!(SumCombiner.combine(1.5, 2.5), 4.0);
    }

    #[test]
    fn min_combiner_keeps_minimum() {
        assert_eq!(MinCombiner.combine(3.0_f64, 1.0), 1.0);
        assert_eq!(MinCombiner.combine(7u32, 9), 7);
    }

    #[test]
    fn combine_all_reduces_to_single_message() {
        let out = combine_all(&SumCombiner, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(out, vec![10.0]);
    }

    #[test]
    fn combine_all_passes_small_inputs_through() {
        let out: Vec<f64> = combine_all(&SumCombiner, vec![]);
        assert!(out.is_empty());
        let out = combine_all(&SumCombiner, vec![5.0]);
        assert_eq!(out, vec![5.0]);
    }

    #[test]
    fn combine_in_place_folds_left_to_right_and_keeps_capacity() {
        let mut messages = Vec::with_capacity(16);
        messages.extend([7u32, 3, 9, 1]);
        combine_in_place(&MinCombiner, &mut messages);
        assert_eq!(messages, vec![1]);
        assert_eq!(messages.capacity(), 16, "inbox capacity must be kept");

        let mut single = vec![5.0f64];
        combine_in_place(&SumCombiner, &mut single);
        assert_eq!(single, vec![5.0]);
        let mut empty: Vec<f64> = Vec::new();
        combine_in_place(&SumCombiner, &mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn combine_in_place_works_through_a_trait_object() {
        let dynamic: &dyn MessageCombiner<u32> = &MinCombiner;
        let mut messages = vec![4u32, 2, 8];
        combine_in_place(dynamic, &mut messages);
        assert_eq!(messages, vec![2]);
    }
}
