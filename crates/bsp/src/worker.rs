//! Per-worker superstep phases, operating on sharded state.
//!
//! A worker owns one [`WorkerShard`]: the values, halt flags, inboxes and
//! outbox buffers of its partition of the vertices. This module implements
//! the two phases the runtime executor schedules every superstep:
//!
//! * [`WorkerShard::run_superstep`] — the **compute phase**: execute the
//!   program's compute function for every active owned vertex (ascending
//!   vertex id), maintain the Table 1 counters, accumulate partial
//!   aggregates, and route produced messages into per-destination-worker
//!   buffers;
//! * [`WorkerShard::deliver`] — the **delivery phase**: append the inbound
//!   messages (ascending source worker, production order within a source) to
//!   the owned vertices' inboxes and optionally apply the program's message
//!   combiner.
//!
//! Both phases touch only the shard's own state, so the executor
//! ([`crate::runtime`]) may run any number of shards concurrently; the
//! master merges the per-worker outputs in worker-index order, which keeps
//! the whole run deterministic.

use crate::aggregator::Aggregates;
use crate::combiner::{combine_in_place, MessageCombiner};
use crate::program::{ComputeContext, VertexProgram};
use crate::runtime::{ShardLayout, WorkerShard};
use crate::storage::WorkerGraph;
use predict_graph::VertexId;

impl<P: VertexProgram> WorkerShard<P> {
    /// Executes the compute phase of superstep `superstep` for this shard.
    ///
    /// Runs [`VertexProgram::compute`] for every active owned vertex in
    /// increasing vertex-id order, maintains the Table 1 counters, and routes
    /// the produced messages into the per-destination-worker buffers
    /// (`self.routed`), preserving production order. `graph` is this worker's
    /// view of the graph — the whole CSR under unified storage, only the
    /// worker's own shard under sharded storage; the phase never reads
    /// adjacency outside the owned vertices either way.
    pub fn run_superstep(
        &mut self,
        program: &P,
        graph: WorkerGraph<'_>,
        layout: &ShardLayout,
        superstep: usize,
        previous_aggregates: &Aggregates,
    ) {
        self.counters.reset(self.values.len() as u64);
        self.partial_aggregates.clear();
        debug_assert!(self.outbox.is_empty());

        for (i, &v) in layout.shard_vertices(self.worker).iter().enumerate() {
            let incoming = &mut self.inboxes[i];
            if self.halted[i] && incoming.is_empty() {
                continue;
            }
            // Receipt of a message re-activates a halted vertex (Pregel
            // semantics); an active vertex stays active unless it votes to
            // halt.
            self.counters.active_vertices += 1;

            let outbox_start = self.outbox.len();
            let mut vertex_halted = false;
            {
                let mut ctx = ComputeContext {
                    vertex: v,
                    superstep,
                    value: &mut self.values[i],
                    out_neighbors: graph.out_neighbors(i, v),
                    out_weights: graph.out_weights(i, v),
                    num_vertices: graph.num_vertices(),
                    num_edges: graph.num_edges(),
                    previous_aggregates,
                    outbox: &mut self.outbox,
                    partial_aggregates: &mut self.partial_aggregates,
                    halted: &mut vertex_halted,
                };
                program.compute(&mut ctx, incoming);
            }
            incoming.clear();
            self.halted[i] = vertex_halted;

            // Classify and count the messages this vertex just sent.
            for (dst, msg) in &self.outbox[outbox_start..] {
                let bytes = program.message_size_bytes(msg);
                let local = layout.owner_of(*dst) == self.worker;
                self.counters.record_message(bytes, local);
            }
        }

        // Route the outbox into per-destination-worker buffers, preserving
        // production order (ascending sender vertex, send order within a
        // vertex) — the order the old sequential delivery loop used.
        for (dst, msg) in self.outbox.drain(..) {
            self.routed[layout.owner_of(dst)].push((dst, msg));
        }
    }

    /// Executes the delivery phase for this shard: appends the messages of
    /// `inbound` (one buffer per source worker, in ascending source-worker
    /// order) to the owned vertices' inboxes, then applies the program's
    /// message combiner, if any, to every non-trivial inbox.
    ///
    /// Buffers in `inbound` are drained in place so their capacity is reused
    /// by the next superstep.
    pub fn deliver(
        &mut self,
        layout: &ShardLayout,
        inbound: &mut [Vec<(VertexId, P::Message)>],
        combiner: Option<&dyn MessageCombiner<P::Message>>,
    ) {
        for buf in inbound.iter_mut() {
            for (dst, msg) in buf.drain(..) {
                debug_assert_eq!(layout.owner_of(dst), self.worker);
                self.inboxes[layout.slot_of(dst)].push(msg);
            }
        }
        if let Some(combiner) = combiner {
            for inbox in &mut self.inboxes {
                combine_in_place(combiner, inbox);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combiner::MinCombiner;
    use crate::partition::PartitionStrategy;
    use crate::program::InitContext;
    use predict_graph::{CsrGraph, EdgeList};

    /// Every vertex sends its id to all out-neighbors in superstep 0, then
    /// halts; reactivated vertices sum what they received.
    struct SumIds;

    impl VertexProgram for SumIds {
        type VertexValue = u64;
        type Message = u32;

        fn name(&self) -> &'static str {
            "sum-ids"
        }

        fn init_vertex(&self, _v: VertexId, _ctx: &InitContext<'_>) -> u64 {
            0
        }

        fn compute(&self, ctx: &mut ComputeContext<'_, u64, u32>, messages: &[u32]) {
            if ctx.superstep == 0 {
                let id = ctx.vertex;
                ctx.send_to_all_neighbors(id);
            } else {
                *ctx.value += messages.iter().map(|&m| m as u64).sum::<u64>();
                ctx.aggregate("received", messages.len() as f64);
            }
            ctx.vote_to_halt();
        }

        fn message_size_bytes(&self, _m: &u32) -> u64 {
            4
        }
    }

    fn two_worker_setup() -> (CsrGraph, ShardLayout) {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let el: EdgeList = [(0u32, 1u32), (0, 2), (1, 3), (2, 3)].into_iter().collect();
        let g = CsrGraph::from_edge_list(&el);
        let l = ShardLayout::build(g.num_vertices(), 2, PartitionStrategy::Modulo);
        (g, l)
    }

    #[test]
    fn superstep_zero_sends_messages_and_counts_them() {
        let (g, l) = two_worker_setup();
        let program = SumIds;
        // Worker 0 owns vertices 0 and 2 (modulo layout).
        let mut shard = WorkerShard::init(&program, WorkerGraph::Unified(&g), &l, 0);
        shard.run_superstep(
            &program,
            WorkerGraph::Unified(&g),
            &l,
            0,
            &Aggregates::new(),
        );

        assert_eq!(shard.counters.active_vertices, 2);
        assert_eq!(shard.counters.total_vertices, 2);
        // Vertex 0 sends to 1 (worker 1, remote) and 2 (worker 0, local);
        // vertex 2 sends to 3 (worker 1, remote).
        assert_eq!(shard.counters.local_messages, 1);
        assert_eq!(shard.counters.remote_messages, 2);
        assert_eq!(shard.counters.total_message_bytes(), 12);
        // Messages were routed by destination worker, in production order.
        assert_eq!(shard.routed[0], vec![(2, 0)]);
        assert_eq!(shard.routed[1], vec![(1, 0), (3, 2)]);
        // Both vertices voted to halt.
        assert!(shard.all_halted());
    }

    #[test]
    fn halted_vertices_without_messages_are_skipped() {
        let (g, l) = two_worker_setup();
        let program = SumIds;
        let mut shard = WorkerShard::init(&program, WorkerGraph::Unified(&g), &l, 0);
        shard.halted = vec![true; 2];
        shard.run_superstep(
            &program,
            WorkerGraph::Unified(&g),
            &l,
            1,
            &Aggregates::new(),
        );
        assert_eq!(shard.counters.active_vertices, 0);
        assert!(shard.routed.iter().all(|r| r.is_empty()));
    }

    #[test]
    fn messages_reactivate_halted_vertices_and_are_consumed() {
        let (g, l) = two_worker_setup();
        let program = SumIds;
        // Worker 1 owns vertices 1 and 3.
        let mut shard = WorkerShard::init(&program, WorkerGraph::Unified(&g), &l, 1);
        shard.halted = vec![true; 2];
        let mut inbound = vec![vec![(3u32, 1u32), (3, 2)], Vec::new()];
        shard.deliver(&l, &mut inbound, None);
        assert!(inbound[0].is_empty(), "inbound buffers must be drained");

        shard.run_superstep(
            &program,
            WorkerGraph::Unified(&g),
            &l,
            1,
            &Aggregates::new(),
        );
        assert_eq!(shard.counters.active_vertices, 1);
        assert_eq!(shard.values[l.slot_of(3)], 3);
        assert!(
            shard.inboxes.iter().all(|i| i.is_empty()),
            "inboxes must be consumed"
        );
        assert_eq!(shard.partial_aggregates.get("received"), Some(2.0));
        // The vertex voted to halt again after processing.
        assert!(shard.all_halted());
    }

    #[test]
    fn deliver_applies_the_combiner_per_inbox() {
        let (g, l) = two_worker_setup();
        let program = SumIds;
        let mut shard = WorkerShard::<SumIds>::init(&program, WorkerGraph::Unified(&g), &l, 1);
        let mut inbound = vec![vec![(3u32, 9u32), (3, 4), (1, 7)], vec![(3, 6)]];
        shard.deliver(&l, &mut inbound, Some(&MinCombiner));
        // Vertex 3 received 9, 4, 6 -> combined to the minimum.
        assert_eq!(shard.inboxes[l.slot_of(3)], vec![4]);
        // Single-message inboxes pass through untouched.
        assert_eq!(shard.inboxes[l.slot_of(1)], vec![7]);
    }

    #[test]
    fn buffers_keep_their_capacity_across_supersteps() {
        let (g, l) = two_worker_setup();
        let program = SumIds;
        let mut shard = WorkerShard::init(&program, WorkerGraph::Unified(&g), &l, 0);
        shard.run_superstep(
            &program,
            WorkerGraph::Unified(&g),
            &l,
            0,
            &Aggregates::new(),
        );
        // Superstep 0 produced 3 messages through the outbox scratch.
        let capacity = shard.outbox.capacity();
        assert!(capacity >= 3);
        shard.run_superstep(
            &program,
            WorkerGraph::Unified(&g),
            &l,
            1,
            &Aggregates::new(),
        );
        assert_eq!(
            shard.outbox.capacity(),
            capacity,
            "outbox scratch must be reused, not reallocated"
        );
    }
}
