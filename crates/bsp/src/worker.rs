//! Per-worker superstep execution.
//!
//! A worker owns a partition of the vertices. During the compute phase of a
//! superstep it executes the program's compute function for every active
//! vertex it owns, collects outgoing messages into an outbox, accumulates
//! partial aggregates and maintains its Table 1 counters. The master
//! ([`BspEngine`](crate::engine::BspEngine)) merges the per-worker outputs in
//! worker-index order, which keeps the whole run deterministic.

use crate::aggregator::Aggregates;
use crate::counters::WorkerCounters;
use crate::partition::Partitioning;
use crate::program::{ComputeContext, VertexProgram};
use predict_graph::{CsrGraph, VertexId};

/// Everything a worker produces during the compute phase of one superstep.
pub struct WorkerSuperstepOutput<M> {
    /// Index of the worker.
    pub worker: usize,
    /// Table 1 counters of this worker for this superstep.
    pub counters: WorkerCounters,
    /// Messages produced by this worker, addressed by destination vertex.
    pub outbox: Vec<(VertexId, M)>,
    /// Partial aggregates contributed by this worker's vertices.
    pub partial_aggregates: Aggregates,
}

/// Executes the compute phase of superstep `superstep` for worker `worker`.
///
/// `values`, `halted` and `inboxes` are the global per-vertex state vectors;
/// the worker only reads and writes the entries of the vertices it owns, plus
/// it reads (and drains) the inboxes of those vertices.
#[allow(clippy::too_many_arguments)]
pub fn run_worker_superstep<P: VertexProgram>(
    program: &P,
    graph: &CsrGraph,
    partitioning: &Partitioning,
    worker: usize,
    superstep: usize,
    previous_aggregates: &Aggregates,
    values: &mut [P::VertexValue],
    halted: &mut [bool],
    inboxes: &mut [Vec<P::Message>],
) -> WorkerSuperstepOutput<P::Message> {
    let mut counters = WorkerCounters::new(partitioning.vertices_of_worker(worker) as u64);
    let mut outbox: Vec<(VertexId, P::Message)> = Vec::new();
    let mut partial_aggregates = Aggregates::new();

    for v in partitioning.worker_vertices(worker) {
        let vi = v as usize;
        let incoming = std::mem::take(&mut inboxes[vi]);
        if halted[vi] && incoming.is_empty() {
            continue;
        }
        // Receipt of a message re-activates a halted vertex (Pregel
        // semantics); an active vertex stays active unless it votes to halt.
        halted[vi] = false;
        counters.active_vertices += 1;

        let outbox_start = outbox.len();
        let mut vertex_halted = false;
        {
            let mut ctx = ComputeContext {
                vertex: v,
                superstep,
                value: &mut values[vi],
                out_neighbors: graph.out_neighbors(v),
                out_weights: graph.out_weights(v),
                num_vertices: graph.num_vertices(),
                num_edges: graph.num_edges(),
                previous_aggregates,
                outbox: &mut outbox,
                partial_aggregates: &mut partial_aggregates,
                halted: &mut vertex_halted,
            };
            program.compute(&mut ctx, &incoming);
        }
        halted[vi] = vertex_halted;

        // Classify and count the messages this vertex just sent.
        for (dst, msg) in &outbox[outbox_start..] {
            let bytes = program.message_size_bytes(msg);
            let local = partitioning.worker_of(*dst) == worker;
            counters.record_message(bytes, local);
        }
    }

    WorkerSuperstepOutput {
        worker,
        counters,
        outbox,
        partial_aggregates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionStrategy;
    use predict_graph::EdgeList;

    /// Every vertex sends its id to all out-neighbors in superstep 0, then
    /// halts; reactivated vertices sum what they received.
    struct SumIds;

    impl VertexProgram for SumIds {
        type VertexValue = u64;
        type Message = u32;

        fn name(&self) -> &'static str {
            "sum-ids"
        }

        fn init_vertex(&self, _v: VertexId, _g: &CsrGraph) -> u64 {
            0
        }

        fn compute(&self, ctx: &mut ComputeContext<'_, u64, u32>, messages: &[u32]) {
            if ctx.superstep == 0 {
                let id = ctx.vertex;
                ctx.send_to_all_neighbors(id);
            } else {
                *ctx.value += messages.iter().map(|&m| m as u64).sum::<u64>();
                ctx.aggregate("received", messages.len() as f64);
            }
            ctx.vote_to_halt();
        }

        fn message_size_bytes(&self, _m: &u32) -> u64 {
            4
        }
    }

    fn two_worker_setup() -> (CsrGraph, Partitioning) {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let el: EdgeList = [(0u32, 1u32), (0, 2), (1, 3), (2, 3)].into_iter().collect();
        let g = CsrGraph::from_edge_list(&el);
        let p = Partitioning::new(&g, 2, PartitionStrategy::Modulo);
        (g, p)
    }

    #[test]
    fn superstep_zero_sends_messages_and_counts_them() {
        let (g, p) = two_worker_setup();
        let program = SumIds;
        let mut values = vec![0u64; 4];
        let mut halted = vec![false; 4];
        let mut inboxes: Vec<Vec<u32>> = vec![Vec::new(); 4];
        let prev = Aggregates::new();

        // Worker 0 owns vertices 0 and 2 (modulo partitioning).
        let out = run_worker_superstep(
            &program,
            &g,
            &p,
            0,
            0,
            &prev,
            &mut values,
            &mut halted,
            &mut inboxes,
        );
        assert_eq!(out.counters.active_vertices, 2);
        assert_eq!(out.counters.total_vertices, 2);
        // Vertex 0 sends to 1 (worker 1, remote) and 2 (worker 0, local);
        // vertex 2 sends to 3 (worker 1, remote).
        assert_eq!(out.counters.local_messages, 1);
        assert_eq!(out.counters.remote_messages, 2);
        assert_eq!(out.counters.total_message_bytes(), 12);
        assert_eq!(out.outbox.len(), 3);
        // Both vertices voted to halt.
        assert!(halted[0] && halted[2]);
        // Worker 0 never touched worker 1's vertices.
        assert!(!halted[1] && !halted[3]);
    }

    #[test]
    fn halted_vertices_without_messages_are_skipped() {
        let (g, p) = two_worker_setup();
        let program = SumIds;
        let mut values = vec![0u64; 4];
        let mut halted = vec![true; 4];
        let mut inboxes: Vec<Vec<u32>> = vec![Vec::new(); 4];
        let prev = Aggregates::new();
        let out = run_worker_superstep(
            &program,
            &g,
            &p,
            0,
            1,
            &prev,
            &mut values,
            &mut halted,
            &mut inboxes,
        );
        assert_eq!(out.counters.active_vertices, 0);
        assert!(out.outbox.is_empty());
    }

    #[test]
    fn messages_reactivate_halted_vertices_and_are_consumed() {
        let (g, p) = two_worker_setup();
        let program = SumIds;
        let mut values = vec![0u64; 4];
        let mut halted = vec![true; 4];
        let mut inboxes: Vec<Vec<u32>> = vec![Vec::new(); 4];
        inboxes[3] = vec![1, 2];
        let prev = Aggregates::new();

        // Worker 1 owns vertices 1 and 3.
        let out = run_worker_superstep(
            &program,
            &g,
            &p,
            1,
            1,
            &prev,
            &mut values,
            &mut halted,
            &mut inboxes,
        );
        assert_eq!(out.counters.active_vertices, 1);
        assert_eq!(values[3], 3);
        assert!(inboxes[3].is_empty(), "inbox must be drained");
        assert_eq!(out.partial_aggregates.get("received"), Some(2.0));
        // The vertex voted to halt again after processing.
        assert!(halted[3]);
    }
}
