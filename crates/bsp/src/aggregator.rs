//! Global aggregators.
//!
//! The iterative algorithms the paper targets all use a *global* convergence
//! condition — an aggregate computed over the whole graph each superstep
//! (average PageRank delta, ratio of updated semi-clusters, ratio of active
//! vertices). In Giraph/Pregel, vertices contribute values to named
//! aggregators during a superstep; the master combines them and makes the
//! combined value available in the next superstep and to the termination
//! check. [`Aggregates`] implements the sum-aggregator flavour all paper
//! algorithms need, plus min/max variants for completeness.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How contributions to a named aggregator are combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggregatorKind {
    /// Contributions are summed (the common case: counts, delta sums).
    Sum,
    /// The minimum contribution is kept.
    Min,
    /// The maximum contribution is kept.
    Max,
}

/// A set of named global aggregators for a single superstep.
///
/// Keys are kept in a `BTreeMap` so iteration order — and therefore any
/// floating-point accumulation — is deterministic regardless of the order in
/// which workers report their partial aggregates.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Aggregates {
    values: BTreeMap<String, (AggregatorKind, f64)>,
}

impl Aggregates {
    /// Creates an empty aggregate set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `value` to the sum-aggregator `name` (creating it if needed).
    pub fn add(&mut self, name: &str, value: f64) {
        self.combine(name, AggregatorKind::Sum, value);
    }

    /// Contributes `value` to the aggregator `name` with the given combine
    /// rule.
    ///
    /// # Panics
    ///
    /// Panics if the aggregator already exists with a different kind — mixing
    /// kinds under one name is always a programming error.
    pub fn combine(&mut self, name: &str, kind: AggregatorKind, value: f64) {
        match self.values.get_mut(name) {
            None => {
                self.values.insert(name.to_string(), (kind, value));
            }
            Some((existing_kind, acc)) => {
                assert_eq!(
                    *existing_kind, kind,
                    "aggregator '{name}' used with conflicting kinds"
                );
                match kind {
                    AggregatorKind::Sum => *acc += value,
                    AggregatorKind::Min => *acc = acc.min(value),
                    AggregatorKind::Max => *acc = acc.max(value),
                }
            }
        }
    }

    /// Value of aggregator `name`, or `default` if no vertex contributed.
    pub fn get_or(&self, name: &str, default: f64) -> f64 {
        self.values.get(name).map(|(_, v)| *v).unwrap_or(default)
    }

    /// Value of aggregator `name`, or `None` if no vertex contributed.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.get(name).map(|(_, v)| *v)
    }

    /// True when no aggregator received any contribution.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Removes every aggregator, returning the set to its freshly-created
    /// state. The runtime reuses per-worker partial aggregate sets across
    /// supersteps instead of reallocating them.
    pub fn clear(&mut self) {
        self.values.clear();
    }

    /// Merges another aggregate set into this one (used by the master to
    /// combine per-worker partial aggregates; merge order does not change the
    /// result for min/max and only reorders floating-point sums within one
    /// worker boundary, which the engine keeps deterministic by merging in
    /// worker-index order).
    pub fn merge(&mut self, other: &Aggregates) {
        for (name, (kind, value)) in &other.values {
            self.combine(name, *kind, *value);
        }
    }

    /// Iterates over `(name, value)` pairs in lexicographic name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(k, (_, v))| (k.as_str(), *v))
    }

    /// Iterates over `(name, kind, value)` triples in lexicographic name
    /// order — the full state of the set, enough to reconstruct it through
    /// [`Aggregates::combine`]. The cluster wire format serializes aggregate
    /// sets through this accessor (values as exact `f64` bits, no text
    /// round-trip).
    pub fn entries(&self) -> impl Iterator<Item = (&str, AggregatorKind, f64)> {
        self.values
            .iter()
            .map(|(k, (kind, v))| (k.as_str(), *kind, *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sums_contributions() {
        let mut a = Aggregates::new();
        a.add("delta", 1.5);
        a.add("delta", 2.5);
        assert_eq!(a.get("delta"), Some(4.0));
        assert_eq!(a.get_or("missing", 7.0), 7.0);
    }

    #[test]
    fn min_and_max_aggregators() {
        let mut a = Aggregates::new();
        a.combine("lo", AggregatorKind::Min, 3.0);
        a.combine("lo", AggregatorKind::Min, -1.0);
        a.combine("hi", AggregatorKind::Max, 3.0);
        a.combine("hi", AggregatorKind::Max, 10.0);
        assert_eq!(a.get("lo"), Some(-1.0));
        assert_eq!(a.get("hi"), Some(10.0));
    }

    #[test]
    #[should_panic(expected = "conflicting kinds")]
    fn conflicting_kinds_panic() {
        let mut a = Aggregates::new();
        a.combine("x", AggregatorKind::Sum, 1.0);
        a.combine("x", AggregatorKind::Max, 2.0);
    }

    #[test]
    fn merge_combines_partial_aggregates() {
        let mut w1 = Aggregates::new();
        w1.add("updates", 10.0);
        w1.combine("max_rank", AggregatorKind::Max, 0.3);
        let mut w2 = Aggregates::new();
        w2.add("updates", 5.0);
        w2.combine("max_rank", AggregatorKind::Max, 0.7);

        let mut master = Aggregates::new();
        master.merge(&w1);
        master.merge(&w2);
        assert_eq!(master.get("updates"), Some(15.0));
        assert_eq!(master.get("max_rank"), Some(0.7));
    }

    #[test]
    fn iteration_is_in_name_order() {
        let mut a = Aggregates::new();
        a.add("zeta", 1.0);
        a.add("alpha", 2.0);
        let names: Vec<_> = a.iter().map(|(n, _)| n.to_string()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn empty_reports_empty() {
        let a = Aggregates::new();
        assert!(a.is_empty());
        assert_eq!(a.get("anything"), None);
    }
}
