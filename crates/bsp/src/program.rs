//! The vertex-centric programming model.
//!
//! Algorithms are expressed exactly as in Pregel/Giraph (section 2.2 of the
//! paper): a user-defined [`VertexProgram::compute`] function is executed for
//! every active vertex in every superstep; vertices exchange data only through
//! messages delivered in the next superstep, contribute to global
//! [`Aggregates`], and may vote to halt. The
//! master evaluates [`VertexProgram::master_halt`] — the algorithm's global
//! convergence condition — after every superstep.

use crate::aggregator::Aggregates;
use crate::combiner::MessageCombiner;
use predict_graph::{CsrGraph, VertexId};

/// What a vertex program may observe while initializing one vertex's value:
/// global graph totals plus the vertex's own out-adjacency.
///
/// This is deliberately *not* a full [`CsrGraph`]: under sharded storage
/// (see [`crate::storage::GraphStorage`]) a worker holds only its own
/// [`ShardedCsr`](predict_graph::ShardedCsr) slice, so initialization — like
/// [`VertexProgram::compute`] — can only read the local adjacency of the
/// vertex being initialized. Every algorithm in `predict_algorithms` needs
/// exactly this much (PageRank reads `num_vertices`, semi-clustering reads
/// the vertex's incident weights).
pub struct InitContext<'a> {
    /// Number of vertices in the whole graph.
    pub num_vertices: usize,
    /// Number of edges in the whole graph.
    pub num_edges: usize,
    /// Out-neighbors of the vertex being initialized.
    pub out_neighbors: &'a [VertexId],
    /// Weights aligned with `out_neighbors` (`None` for unweighted graphs).
    pub out_weights: Option<&'a [f32]>,
}

impl<'a> InitContext<'a> {
    /// The context for vertex `v` of a unified graph. Handy in tests and in
    /// direct [`VertexProgram::init_vertex`] invocations outside the engine.
    pub fn for_vertex(graph: &'a CsrGraph, v: VertexId) -> Self {
        Self {
            num_vertices: graph.num_vertices(),
            num_edges: graph.num_edges(),
            out_neighbors: graph.out_neighbors(v),
            out_weights: graph.out_weights(v),
        }
    }

    /// Out-degree of the vertex being initialized.
    pub fn out_degree(&self) -> usize {
        self.out_neighbors.len()
    }
}

/// A vertex-centric iterative algorithm.
///
/// Implementations must be deterministic: the engine may execute workers in
/// parallel and relies on per-vertex computation not depending on execution
/// order within a superstep.
pub trait VertexProgram: Sync {
    /// Per-vertex state.
    type VertexValue: Clone + Send + Sync;
    /// Message exchanged between vertices.
    type Message: Clone + Send + Sync;

    /// Human-readable algorithm name (used in run profiles and reports).
    fn name(&self) -> &'static str;

    /// Initial value of vertex `v`. Called once per vertex before superstep 0;
    /// `ctx` exposes the graph totals and the vertex's own out-adjacency
    /// (all a worker can see under sharded storage).
    fn init_vertex(&self, vertex: VertexId, ctx: &InitContext<'_>) -> Self::VertexValue;

    /// The compute function executed for every active vertex in every
    /// superstep. `messages` contains the messages sent to this vertex during
    /// the previous superstep.
    fn compute(
        &self,
        ctx: &mut ComputeContext<'_, Self::VertexValue, Self::Message>,
        messages: &[Self::Message],
    );

    /// Size in bytes of a message on the (simulated) wire. Drives the
    /// `LocMsgSize` / `RemMsgSize` features of Table 1; implementations should
    /// return the serialized payload size, not `size_of::<Message>()`, for
    /// variable-length messages.
    fn message_size_bytes(&self, msg: &Self::Message) -> u64;

    /// Global convergence condition evaluated by the master after every
    /// superstep over the merged aggregates. Returning `true` terminates the
    /// run. The default never terminates early (the run still stops when all
    /// vertices halt or the superstep cap is reached).
    fn master_halt(&self, _superstep: usize, _aggregates: &Aggregates) -> bool {
        false
    }

    /// Optional message combiner applied by the runtime's delivery phase:
    /// when `Some`, every vertex inbox is reduced to at most one message
    /// before the next compute phase (see [`crate::combiner`]). Table 1
    /// counters are recorded at send time and are unaffected.
    ///
    /// Only opt in when the program's semantics are combine-safe — i.e. its
    /// compute function only consumes the combined reduction of its messages,
    /// never their count or individual values. The default is no combining,
    /// which preserves exact message multisets.
    fn combiner(&self) -> Option<&dyn MessageCombiner<Self::Message>> {
        None
    }
}

/// Everything a vertex can see and do during one invocation of `compute`.
pub struct ComputeContext<'a, V, M> {
    /// Id of the vertex being computed.
    pub vertex: VertexId,
    /// Current superstep number (0-based).
    pub superstep: usize,
    /// Mutable per-vertex state.
    pub value: &'a mut V,
    /// Out-neighbors of the vertex.
    pub out_neighbors: &'a [VertexId],
    /// Weights aligned with `out_neighbors` (`None` for unweighted graphs).
    pub out_weights: Option<&'a [f32]>,
    /// Number of vertices in the graph the program is running on.
    pub num_vertices: usize,
    /// Number of edges in the graph the program is running on.
    pub num_edges: usize,
    /// Aggregates computed during the *previous* superstep (empty in
    /// superstep 0).
    pub previous_aggregates: &'a Aggregates,
    pub(crate) outbox: &'a mut Vec<(VertexId, M)>,
    pub(crate) partial_aggregates: &'a mut Aggregates,
    pub(crate) halted: &'a mut bool,
}

impl<'a, V, M: Clone> ComputeContext<'a, V, M> {
    /// Out-degree of this vertex.
    pub fn out_degree(&self) -> usize {
        self.out_neighbors.len()
    }

    /// Sends `msg` to vertex `dst`, to be delivered in the next superstep.
    pub fn send(&mut self, dst: VertexId, msg: M) {
        self.outbox.push((dst, msg));
    }

    /// Sends a copy of `msg` to every out-neighbor of this vertex.
    pub fn send_to_all_neighbors(&mut self, msg: M) {
        for i in 0..self.out_neighbors.len() {
            let dst = self.out_neighbors[i];
            self.outbox.push((dst, msg.clone()));
        }
    }

    /// Contributes `value` to the global sum-aggregator `name`.
    pub fn aggregate(&mut self, name: &str, value: f64) {
        self.partial_aggregates.add(name, value);
    }

    /// Votes to halt: the vertex becomes inactive and will not execute
    /// `compute` again unless it receives a message.
    pub fn vote_to_halt(&mut self) {
        *self.halted = true;
    }

    /// Revokes a vote to halt issued earlier in the same compute call.
    pub fn stay_active(&mut self) {
        *self.halted = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predict_graph::EdgeList;

    /// A trivial program used to exercise the context plumbing: every vertex
    /// forwards its id to all neighbors once and halts.
    struct Broadcast;

    impl VertexProgram for Broadcast {
        type VertexValue = u32;
        type Message = u32;

        fn name(&self) -> &'static str {
            "broadcast"
        }

        fn init_vertex(&self, vertex: VertexId, _ctx: &InitContext<'_>) -> u32 {
            vertex
        }

        fn compute(&self, ctx: &mut ComputeContext<'_, u32, u32>, _messages: &[u32]) {
            if ctx.superstep == 0 {
                let v = ctx.vertex;
                ctx.send_to_all_neighbors(v);
                ctx.aggregate("sent", ctx.out_degree() as f64);
            }
            ctx.vote_to_halt();
        }

        fn message_size_bytes(&self, _msg: &u32) -> u64 {
            4
        }
    }

    #[test]
    fn context_send_and_aggregate_work() {
        let el: EdgeList = [(0u32, 1u32), (0, 2), (1, 2)].into_iter().collect();
        let g = CsrGraph::from_edge_list(&el);
        let program = Broadcast;
        let prev = Aggregates::new();
        let mut outbox = Vec::new();
        let mut partial = Aggregates::new();
        let mut halted = false;
        let mut value = program.init_vertex(0, &InitContext::for_vertex(&g, 0));

        let mut ctx = ComputeContext {
            vertex: 0,
            superstep: 0,
            value: &mut value,
            out_neighbors: g.out_neighbors(0),
            out_weights: g.out_weights(0),
            num_vertices: g.num_vertices(),
            num_edges: g.num_edges(),
            previous_aggregates: &prev,
            outbox: &mut outbox,
            partial_aggregates: &mut partial,
            halted: &mut halted,
        };
        program.compute(&mut ctx, &[]);

        assert_eq!(outbox.len(), 2);
        assert!(outbox.iter().all(|(_, m)| *m == 0));
        assert_eq!(partial.get("sent"), Some(2.0));
        assert!(halted);
    }

    #[test]
    fn stay_active_revokes_halt() {
        let el: EdgeList = [(0u32, 1u32)].into_iter().collect();
        let g = CsrGraph::from_edge_list(&el);
        let prev = Aggregates::new();
        let mut outbox: Vec<(VertexId, u32)> = Vec::new();
        let mut partial = Aggregates::new();
        let mut halted = false;
        let mut value = 0u32;
        let mut ctx = ComputeContext {
            vertex: 0,
            superstep: 0,
            value: &mut value,
            out_neighbors: g.out_neighbors(0),
            out_weights: None,
            num_vertices: 2,
            num_edges: 1,
            previous_aggregates: &prev,
            outbox: &mut outbox,
            partial_aggregates: &mut partial,
            halted: &mut halted,
        };
        ctx.vote_to_halt();
        ctx.stay_active();
        assert!(!halted);
    }
}
