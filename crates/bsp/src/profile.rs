//! Run profiles: the measurements PREDIcT consumes.
//!
//! A [`RunProfile`] records everything a sample run or an actual run exposes
//! to the predictor: the phase breakdown the paper describes in section 2.2
//! (setup / read / superstep / write) and, for every superstep, the per-worker
//! Table 1 counters together with the per-worker and wall-clock times of the
//! simulated cluster. The prediction crate trains its cost model directly on
//! these profiles.

use crate::aggregator::Aggregates;
use crate::counters::{sum_counters, WorkerCounters};
use serde::{Deserialize, Serialize};

/// Counters and timings of a single superstep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuperstepProfile {
    /// Superstep number (0-based).
    pub superstep: usize,
    /// Per-worker Table 1 counters.
    pub workers: Vec<WorkerCounters>,
    /// Simulated per-worker processing times in milliseconds (aligned with
    /// `workers`).
    pub worker_times_ms: Vec<f64>,
    /// Simulated wall time of the superstep (overhead + slowest worker +
    /// barrier).
    pub wall_time_ms: f64,
    /// Global aggregates computed during this superstep.
    pub aggregates: Aggregates,
}

impl SuperstepProfile {
    /// Graph-level totals of the per-worker counters.
    pub fn totals(&self) -> WorkerCounters {
        sum_counters(&self.workers)
    }

    /// Index of the worker with the largest simulated processing time.
    pub fn slowest_worker(&self) -> usize {
        self.worker_times_ms
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("times are finite"))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Counters of the worker with the most outbound work this superstep —
    /// the per-superstep critical-path worker.
    pub fn critical_path_counters(&self) -> WorkerCounters {
        self.workers
            .get(self.slowest_worker())
            .copied()
            .unwrap_or_default()
    }
}

/// Complete profile of one BSP run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunProfile {
    /// Name of the algorithm that was executed.
    pub algorithm: String,
    /// Number of vertices of the graph the run executed on.
    pub num_vertices: usize,
    /// Number of edges of the graph the run executed on.
    pub num_edges: usize,
    /// Number of workers.
    pub num_workers: usize,
    /// Simulated duration of the setup phase.
    pub setup_ms: f64,
    /// Simulated duration of the read phase.
    pub read_ms: f64,
    /// Simulated duration of the write phase.
    pub write_ms: f64,
    /// One entry per executed superstep.
    pub supersteps: Vec<SuperstepProfile>,
    /// Measured wall-clock and wire-byte timings when the run executed over
    /// a real transport (`predict_cluster`'s driver fills this); `None` on
    /// in-memory runs. Deliberately excluded from serialization: measured
    /// times differ run to run, while serialized profiles are pinned
    /// byte-for-byte by the golden scenarios and the history store, so this
    /// field must never reach the JSON (see [`crate::remote`]).
    #[serde(skip)]
    pub measured: Option<crate::remote::MeasuredRun>,
}

impl RunProfile {
    /// Number of supersteps the run executed (the `NumIter` feature).
    pub fn num_iterations(&self) -> usize {
        self.supersteps.len()
    }

    /// Simulated duration of the superstep phase (the phase the paper's
    /// methodology predicts).
    pub fn superstep_phase_ms(&self) -> f64 {
        self.supersteps.iter().map(|s| s.wall_time_ms).sum()
    }

    /// Simulated end-to-end runtime: setup + read + supersteps + write.
    pub fn total_ms(&self) -> f64 {
        self.setup_ms + self.read_ms + self.superstep_phase_ms() + self.write_ms
    }

    /// Graph-level counter totals per superstep, in superstep order.
    pub fn per_superstep_totals(&self) -> Vec<WorkerCounters> {
        self.supersteps.iter().map(|s| s.totals()).collect()
    }

    /// Ratio between the longest and shortest superstep wall time; the
    /// paper's "runtime variability among consecutive iterations" (up to
    /// ~100x for top-k ranking and connected components).
    pub fn runtime_variability(&self) -> f64 {
        let mut min = f64::INFINITY;
        let mut max: f64 = 0.0;
        for s in &self.supersteps {
            min = min.min(s.wall_time_ms);
            max = max.max(s.wall_time_ms);
        }
        if !min.is_finite() || min <= 0.0 {
            1.0
        } else {
            max / min
        }
    }

    /// Serializes the profile to a JSON string (used by the historical-run
    /// store and the experiment harness).
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Deserializes a profile from JSON.
    pub fn from_json(json: &str) -> serde_json::Result<Self> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> RunProfile {
        let worker = |active: u64, bytes: u64| WorkerCounters {
            active_vertices: active,
            total_vertices: active,
            local_messages: 1,
            remote_messages: 2,
            local_message_bytes: bytes / 4,
            remote_message_bytes: bytes,
        };
        RunProfile {
            algorithm: "test".to_string(),
            num_vertices: 100,
            num_edges: 400,
            num_workers: 2,
            setup_ms: 10.0,
            read_ms: 20.0,
            write_ms: 5.0,
            supersteps: vec![
                SuperstepProfile {
                    superstep: 0,
                    workers: vec![worker(10, 100), worker(20, 400)],
                    worker_times_ms: vec![1.0, 4.0],
                    wall_time_ms: 6.0,
                    aggregates: Aggregates::new(),
                },
                SuperstepProfile {
                    superstep: 1,
                    workers: vec![worker(5, 50), worker(2, 20)],
                    worker_times_ms: vec![0.5, 0.2],
                    wall_time_ms: 2.5,
                    aggregates: Aggregates::new(),
                },
            ],
            measured: None,
        }
    }

    #[test]
    fn phase_sums_add_up() {
        let p = sample_profile();
        assert_eq!(p.num_iterations(), 2);
        assert!((p.superstep_phase_ms() - 8.5).abs() < 1e-9);
        assert!((p.total_ms() - 43.5).abs() < 1e-9);
    }

    #[test]
    fn superstep_totals_sum_workers() {
        let p = sample_profile();
        let totals = p.supersteps[0].totals();
        assert_eq!(totals.active_vertices, 30);
        assert_eq!(totals.remote_message_bytes, 500);
        assert_eq!(p.per_superstep_totals().len(), 2);
    }

    #[test]
    fn slowest_worker_is_identified() {
        let p = sample_profile();
        assert_eq!(p.supersteps[0].slowest_worker(), 1);
        assert_eq!(p.supersteps[1].slowest_worker(), 0);
        assert_eq!(p.supersteps[0].critical_path_counters().active_vertices, 20);
    }

    #[test]
    fn runtime_variability_is_max_over_min() {
        let p = sample_profile();
        assert!((p.runtime_variability() - 6.0 / 2.5).abs() < 1e-9);
    }

    #[test]
    fn json_roundtrip_preserves_profile() {
        let p = sample_profile();
        let json = p.to_json().unwrap();
        let back = RunProfile::from_json(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn empty_profile_is_well_behaved() {
        let p = RunProfile {
            algorithm: "noop".into(),
            num_vertices: 0,
            num_edges: 0,
            num_workers: 1,
            setup_ms: 0.0,
            read_ms: 0.0,
            write_ms: 0.0,
            supersteps: vec![],
            measured: None,
        };
        assert_eq!(p.num_iterations(), 0);
        assert_eq!(p.superstep_phase_ms(), 0.0);
        assert_eq!(p.runtime_variability(), 1.0);
    }
}
