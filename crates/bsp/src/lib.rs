//! A Giraph-like Bulk Synchronous Parallel (BSP) engine with a simulated
//! cluster clock.
//!
//! The paper executes its iterative algorithms on Apache Giraph (BSP on top of
//! Hadoop). This crate reproduces the parts of that stack PREDIcT interacts
//! with:
//!
//! * a vertex-centric programming model ([`VertexProgram`], [`ComputeContext`])
//!   with messages, global [`Aggregates`] and vote-to-halt semantics;
//! * a master/worker execution structure with hash partitioning
//!   ([`Partitioning`]) and per-worker, per-superstep Table 1 feature counters
//!   ([`WorkerCounters`]);
//! * a **parallel deterministic runtime** ([`runtime`]) that shards all
//!   per-vertex state by worker ([`WorkerShard`], cached [`ShardLayout`]s)
//!   and fans superstep phases out over a persistent work-stealing
//!   [`WorkerPool`] ([`ExecutionMode`], [`PoolMode`]) while producing
//!   byte-identical profiles at every thread count, pool on or off;
//! * **per-worker graph storage** ([`storage`]): a run executes against
//!   either one unified CSR allocation or one
//!   [`ShardedCsr`](predict_graph::ShardedCsr) per worker
//!   ([`GraphStorage`], [`StorageMode`]) — byte-identical results under
//!   both, so a graph never needs to exist as one allocation;
//! * the phase breakdown of a Giraph job (setup / read / superstep / write)
//!   recorded in a [`RunProfile`];
//! * a **simulated cluster clock** ([`ClusterClock`]) that converts worker
//!   counters into superstep wall times with a hidden, network-dominant cost
//!   function — the stand-in for the paper's 10-node cluster (see
//!   `docs/ARCHITECTURE.md` for why this substitution preserves the
//!   evaluation).
//!
//! # Example
//!
//! ```
//! use predict_bsp::{BspConfig, BspEngine, ComputeContext, InitContext, VertexProgram};
//! use predict_graph::{CsrGraph, EdgeList, VertexId};
//!
//! /// Count the in-degree of every vertex by messaging over each edge once.
//! struct InDegree;
//!
//! impl VertexProgram for InDegree {
//!     type VertexValue = u64;
//!     type Message = u8;
//!
//!     fn name(&self) -> &'static str { "in-degree" }
//!     fn init_vertex(&self, _v: VertexId, _ctx: &InitContext<'_>) -> u64 { 0 }
//!     fn compute(&self, ctx: &mut ComputeContext<'_, u64, u8>, messages: &[u8]) {
//!         if ctx.superstep == 0 {
//!             ctx.send_to_all_neighbors(1);
//!         } else {
//!             *ctx.value = messages.len() as u64;
//!         }
//!         ctx.vote_to_halt();
//!     }
//!     fn message_size_bytes(&self, _m: &u8) -> u64 { 1 }
//! }
//!
//! let el: EdgeList = [(0u32, 1u32), (2, 1)].into_iter().collect();
//! let graph = CsrGraph::from_edge_list(&el);
//! let result = BspEngine::new(BspConfig::default()).run(&graph, &InDegree);
//! assert_eq!(result.values[1], 2);
//! ```

pub mod aggregator;
pub mod combiner;
pub mod config;
pub mod cost;
pub mod counters;
pub mod engine;
pub mod knobs;
pub mod partition;
pub mod profile;
pub mod program;
pub mod remote;
pub mod runtime;
pub mod storage;
pub mod worker;

pub use aggregator::{Aggregates, AggregatorKind};
pub use combiner::{combine_all, combine_in_place, MessageCombiner, MinCombiner, SumCombiner};
pub use config::{BspConfig, ExecutionMode, PoolMode};
pub use cost::{ClusterClock, ClusterCostConfig};
pub use counters::{sum_counters, WorkerCounters};
pub use engine::{BspEngine, BspRunResult, HaltReason};
pub use knobs::{env_store_path, env_trace_path, env_transport, TransportChoice};
pub use partition::{PartitionStrategy, Partitioning};
pub use profile::{RunProfile, SuperstepProfile};
pub use program::{ComputeContext, InitContext, VertexProgram};
pub use remote::{MeasuredRun, MeasuredSuperstep, TransportMode};
pub use runtime::{
    process_threads_spawned, record_external_spawn, LayoutCache, ShardLayout, WorkerPool,
    WorkerShard,
};
pub use storage::{GraphStorage, StorageMode};
