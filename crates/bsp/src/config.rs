//! Engine configuration.

use crate::cost::ClusterCostConfig;
use crate::knobs;
use crate::partition::PartitionStrategy;
use crate::remote::TransportMode;
use crate::storage::StorageMode;
use serde::{Deserialize, Serialize};

/// Default number of workers. The paper's deployment runs 29 workers plus one
/// master on 10 physical nodes; the default here is smaller so tests and
/// examples stay fast, and the experiment harness raises it explicitly when a
/// paper-faithful worker count matters.
pub const DEFAULT_NUM_WORKERS: usize = 8;

/// Hard cap on supersteps so a mis-specified convergence threshold can never
/// hang a run.
pub const DEFAULT_MAX_SUPERSTEPS: usize = 500;

/// Below this many vertices-plus-edges, automatic thread selection keeps a
/// run on the calling thread regardless of available parallelism: PREDIcT
/// executes thousands of tiny sample runs, and per-phase thread spawns
/// (~tens of µs each) would dwarf the microseconds of per-shard work. An
/// explicit `PREDICT_THREADS` or [`ExecutionMode::Parallel`] request always
/// wins over this heuristic. Purely a scheduling decision — results are
/// thread-count independent either way.
pub const MIN_PARALLEL_WORK: usize = 1 << 14;

/// How the runtime executes the compute phase of each superstep.
///
/// Execution mode is a pure performance knob: the runtime guarantees that a
/// run produces byte-identical values, counters and simulated timings under
/// every mode and thread count (see [`crate::runtime`] for the determinism
/// contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// Pick automatically: honor the `PREDICT_THREADS` environment variable
    /// when set (`1` means sequential), otherwise use the machine's available
    /// parallelism, capped at the worker count — except for runs smaller
    /// than [`MIN_PARALLEL_WORK`], which stay on the calling thread.
    #[default]
    Auto,
    /// Run every worker's compute phase on the calling thread.
    Sequential,
    /// Run worker compute phases on `threads` scoped OS threads
    /// (`threads == 0` behaves like [`ExecutionMode::Auto`] without the
    /// environment override).
    Parallel {
        /// Number of OS threads the superstep phases are spread over.
        threads: usize,
    },
}

impl ExecutionMode {
    /// Resolves the mode to a concrete thread count for a run over
    /// `num_workers` workers with `run_work` total vertices-plus-edges.
    /// Always at least 1 and never more than `num_workers` (extra threads
    /// would have no worker to execute).
    ///
    /// Priority under [`ExecutionMode::Auto`]: an explicitly-set
    /// `PREDICT_THREADS` wins unconditionally; otherwise runs below
    /// [`MIN_PARALLEL_WORK`] stay on the calling thread; otherwise the
    /// machine's available parallelism is used.
    pub fn resolve_threads(self, num_workers: usize, run_work: usize) -> usize {
        let available = || {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        };
        let auto_no_env = || {
            if run_work < MIN_PARALLEL_WORK {
                1
            } else {
                available()
            }
        };
        let threads = match self {
            Self::Sequential => 1,
            Self::Auto => knobs::env_threads().unwrap_or_else(auto_no_env),
            Self::Parallel { threads: 0 } => auto_no_env(),
            Self::Parallel { threads } => threads,
        };
        threads.clamp(1, num_workers.max(1))
    }
}

/// Whether parallel phases run on the engine's persistent
/// [`WorkerPool`](crate::runtime::WorkerPool) or on per-use scoped threads.
///
/// Like [`ExecutionMode`], this is a pure scheduling knob: runs are
/// byte-identical pool on or off (see [`crate::runtime`] for the determinism
/// contract). The scoped-thread path exists as an escape hatch and as the
/// baseline the pool's spawn-counter benches compare against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PoolMode {
    /// Honor the `PREDICT_POOL` environment variable: `off`, `0` or `false`
    /// (case-insensitive) selects scoped threads; anything else — including
    /// the variable being unset — selects the persistent pool.
    #[default]
    Auto,
    /// Always schedule parallel phases on the persistent worker pool.
    On,
    /// Always spawn scoped OS threads per parallel phase (pre-pool behavior).
    Off,
}

impl PoolMode {
    /// Resolves the mode to "use the persistent pool?".
    pub fn resolve_enabled(self) -> bool {
        match self {
            Self::On => true,
            Self::Off => false,
            Self::Auto => knobs::env_pool_enabled(),
        }
    }
}

/// Configuration of a [`BspEngine`](crate::engine::BspEngine).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BspConfig {
    /// Number of BSP workers the graph is partitioned over.
    pub num_workers: usize,
    /// Vertex-to-worker assignment strategy.
    pub partition_strategy: PartitionStrategy,
    /// Maximum number of supersteps before the engine aborts the run.
    pub max_supersteps: usize,
    /// Cost coefficients of the simulated cluster clock.
    pub cost: ClusterCostConfig,
    /// How superstep phases are executed (sequentially or on OS threads).
    /// Never affects results — see [`crate::runtime`]. Defaults to
    /// [`ExecutionMode::Auto`] when absent from serialized configs (configs
    /// written before this field existed keep deserializing).
    #[serde(default)]
    pub execution: ExecutionMode,
    /// How [`BspEngine::run`](crate::BspEngine::run) stores the graph: one
    /// unified CSR allocation or one [`ShardedCsr`](predict_graph::ShardedCsr)
    /// per worker. Never affects results — see [`crate::storage`]. Defaults
    /// to [`StorageMode::Auto`] (honor `PREDICT_STORAGE`) when absent from
    /// serialized configs.
    #[serde(default)]
    pub storage: StorageMode,
    /// Whether parallel phases use the engine's persistent worker pool or
    /// per-use scoped threads. Never affects results — see
    /// [`crate::runtime`]. Defaults to [`PoolMode::Auto`] (honor
    /// `PREDICT_POOL`) when absent from serialized configs.
    #[serde(default)]
    pub pool: PoolMode,
    /// Which executor runs the supersteps: the in-memory runtime or a
    /// transport-backed worker cluster (interpreted by `predict_cluster`,
    /// which sits above this crate). Never affects results — see
    /// [`crate::remote`]. Defaults to [`TransportMode::Auto`] (honor
    /// `PREDICT_TRANSPORT`) when absent from serialized configs.
    #[serde(default)]
    pub transport: TransportMode,
}

impl Default for BspConfig {
    fn default() -> Self {
        Self {
            num_workers: DEFAULT_NUM_WORKERS,
            partition_strategy: PartitionStrategy::Hash,
            max_supersteps: DEFAULT_MAX_SUPERSTEPS,
            cost: ClusterCostConfig::default(),
            execution: ExecutionMode::Auto,
            storage: StorageMode::Auto,
            pool: PoolMode::Auto,
            transport: TransportMode::Auto,
        }
    }
}

impl BspConfig {
    /// Creates a configuration with `num_workers` workers and defaults for
    /// everything else.
    pub fn with_workers(num_workers: usize) -> Self {
        Self {
            num_workers,
            ..Self::default()
        }
    }

    /// Replaces the cluster cost configuration.
    pub fn with_cost(mut self, cost: ClusterCostConfig) -> Self {
        self.cost = cost;
        self
    }

    /// Replaces the partition strategy.
    pub fn with_partition_strategy(mut self, strategy: PartitionStrategy) -> Self {
        self.partition_strategy = strategy;
        self
    }

    /// Replaces the superstep cap.
    pub fn with_max_supersteps(mut self, max: usize) -> Self {
        self.max_supersteps = max;
        self
    }

    /// Replaces the execution mode.
    pub fn with_execution(mut self, execution: ExecutionMode) -> Self {
        self.execution = execution;
        self
    }

    /// Replaces the graph storage mode.
    pub fn with_storage(mut self, storage: StorageMode) -> Self {
        self.storage = storage;
        self
    }

    /// Replaces the worker-pool mode.
    pub fn with_pool(mut self, pool: PoolMode) -> Self {
        self.pool = pool;
        self
    }

    /// Replaces the transport mode.
    pub fn with_transport(mut self, transport: TransportMode) -> Self {
        self.transport = transport;
        self
    }

    /// A paper-like configuration: 29 workers (the paper's Giraph setup) and
    /// default costs.
    pub fn paper_cluster() -> Self {
        Self::with_workers(29)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = BspConfig::default();
        assert_eq!(c.num_workers, DEFAULT_NUM_WORKERS);
        assert_eq!(c.max_supersteps, DEFAULT_MAX_SUPERSTEPS);
        assert_eq!(c.partition_strategy, PartitionStrategy::Hash);
    }

    #[test]
    fn builders_override_fields() {
        let c = BspConfig::with_workers(4)
            .with_max_supersteps(10)
            .with_partition_strategy(PartitionStrategy::Modulo);
        assert_eq!(c.num_workers, 4);
        assert_eq!(c.max_supersteps, 10);
        assert_eq!(c.partition_strategy, PartitionStrategy::Modulo);
    }

    #[test]
    fn paper_cluster_has_29_workers() {
        assert_eq!(BspConfig::paper_cluster().num_workers, 29);
    }

    /// A run large enough that the small-run heuristic never triggers.
    const BIG_RUN: usize = MIN_PARALLEL_WORK * 2;

    #[test]
    fn execution_mode_resolves_to_bounded_thread_counts() {
        assert_eq!(ExecutionMode::Sequential.resolve_threads(8, BIG_RUN), 1);
        assert_eq!(
            ExecutionMode::Parallel { threads: 4 }.resolve_threads(8, BIG_RUN),
            4
        );
        // Never more threads than workers, never zero.
        assert_eq!(
            ExecutionMode::Parallel { threads: 9 }.resolve_threads(3, BIG_RUN),
            3
        );
        assert_eq!(
            ExecutionMode::Parallel { threads: 0 }.resolve_threads(1, BIG_RUN),
            1
        );
        let auto = ExecutionMode::Auto.resolve_threads(64, BIG_RUN);
        assert!((1..=64).contains(&auto));
        assert_eq!(ExecutionMode::Sequential.resolve_threads(0, BIG_RUN), 1);
    }

    #[test]
    fn small_runs_stay_sequential_unless_explicitly_parallel() {
        // Below the work cutoff, Auto (without PREDICT_THREADS) and
        // Parallel{0} stay on the calling thread...
        assert_eq!(
            ExecutionMode::Parallel { threads: 0 }.resolve_threads(8, MIN_PARALLEL_WORK - 1),
            1
        );
        // ...but an explicit thread request is honored as given.
        assert_eq!(
            ExecutionMode::Parallel { threads: 4 }.resolve_threads(8, MIN_PARALLEL_WORK - 1),
            4
        );
    }

    #[test]
    fn predict_threads_env_wins_over_the_small_run_heuristic() {
        // Mutating the env var can race with concurrently running tests, but
        // thread resolution only affects scheduling, never results (the
        // runtime's determinism contract), so the brief override is safe.
        let prev = std::env::var("PREDICT_THREADS").ok();
        std::env::set_var("PREDICT_THREADS", "4");
        let resolved = ExecutionMode::Auto.resolve_threads(8, MIN_PARALLEL_WORK - 1);
        match prev {
            Some(v) => std::env::set_var("PREDICT_THREADS", v),
            None => std::env::remove_var("PREDICT_THREADS"),
        }
        assert_eq!(resolved, 4, "explicit PREDICT_THREADS must win");
    }

    #[test]
    fn configs_serialized_before_the_execution_field_still_deserialize() {
        let config = BspConfig::with_workers(2);
        let json = serde_json::to_string(&config).unwrap();
        let stripped = json.replace(",\"execution\":\"Auto\"", "");
        assert_ne!(stripped, json, "execution field must be present and Auto");
        let back: BspConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back, config, "missing execution must default to Auto");
    }

    #[test]
    fn configs_serialized_before_the_storage_field_still_deserialize() {
        let config = BspConfig::with_workers(2);
        let json = serde_json::to_string(&config).unwrap();
        let stripped = json.replace(",\"storage\":\"Auto\"", "");
        assert_ne!(stripped, json, "storage field must be present and Auto");
        let back: BspConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back, config, "missing storage must default to Auto");
    }

    #[test]
    fn configs_serialized_before_the_pool_field_still_deserialize() {
        let config = BspConfig::with_workers(2);
        let json = serde_json::to_string(&config).unwrap();
        let stripped = json.replace(",\"pool\":\"Auto\"", "");
        assert_ne!(stripped, json, "pool field must be present and Auto");
        let back: BspConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back, config, "missing pool must default to Auto");
    }

    #[test]
    fn configs_serialized_before_the_transport_field_still_deserialize() {
        let config = BspConfig::with_workers(2);
        let json = serde_json::to_string(&config).unwrap();
        let stripped = json.replace(",\"transport\":\"Auto\"", "");
        assert_ne!(stripped, json, "transport field must be present and Auto");
        let back: BspConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back, config, "missing transport must default to Auto");
    }

    #[test]
    fn transport_mode_round_trips_with_the_config() {
        let config = BspConfig::with_workers(2).with_transport(TransportMode::InProc);
        let json = serde_json::to_string(&config).unwrap();
        let back: BspConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.transport, TransportMode::InProc);
    }

    #[test]
    fn pool_mode_forced_variants_ignore_the_environment() {
        assert!(PoolMode::On.resolve_enabled());
        assert!(!PoolMode::Off.resolve_enabled());
    }

    #[test]
    fn pool_mode_round_trips_with_the_config() {
        let config = BspConfig::with_workers(2).with_pool(PoolMode::Off);
        let json = serde_json::to_string(&config).unwrap();
        let back: BspConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.pool, PoolMode::Off);
    }

    #[test]
    fn storage_mode_round_trips_with_the_config() {
        let config = BspConfig::with_workers(2).with_storage(StorageMode::Sharded);
        let json = serde_json::to_string(&config).unwrap();
        let back: BspConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.storage, StorageMode::Sharded);
    }

    #[test]
    fn execution_mode_serializes_with_the_config() {
        let config =
            BspConfig::with_workers(2).with_execution(ExecutionMode::Parallel { threads: 3 });
        let json = serde_json::to_string(&config).unwrap();
        let back: BspConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, config);
        assert_eq!(back.execution, ExecutionMode::Parallel { threads: 3 });
    }
}
