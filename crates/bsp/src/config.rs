//! Engine configuration.

use crate::cost::ClusterCostConfig;
use crate::partition::PartitionStrategy;
use serde::{Deserialize, Serialize};

/// Default number of workers. The paper's deployment runs 29 workers plus one
/// master on 10 physical nodes; the default here is smaller so tests and
/// examples stay fast, and the experiment harness raises it explicitly when a
/// paper-faithful worker count matters.
pub const DEFAULT_NUM_WORKERS: usize = 8;

/// Hard cap on supersteps so a mis-specified convergence threshold can never
/// hang a run.
pub const DEFAULT_MAX_SUPERSTEPS: usize = 500;

/// Configuration of a [`BspEngine`](crate::engine::BspEngine).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BspConfig {
    /// Number of BSP workers the graph is partitioned over.
    pub num_workers: usize,
    /// Vertex-to-worker assignment strategy.
    pub partition_strategy: PartitionStrategy,
    /// Maximum number of supersteps before the engine aborts the run.
    pub max_supersteps: usize,
    /// Cost coefficients of the simulated cluster clock.
    pub cost: ClusterCostConfig,
}

impl Default for BspConfig {
    fn default() -> Self {
        Self {
            num_workers: DEFAULT_NUM_WORKERS,
            partition_strategy: PartitionStrategy::Hash,
            max_supersteps: DEFAULT_MAX_SUPERSTEPS,
            cost: ClusterCostConfig::default(),
        }
    }
}

impl BspConfig {
    /// Creates a configuration with `num_workers` workers and defaults for
    /// everything else.
    pub fn with_workers(num_workers: usize) -> Self {
        Self {
            num_workers,
            ..Self::default()
        }
    }

    /// Replaces the cluster cost configuration.
    pub fn with_cost(mut self, cost: ClusterCostConfig) -> Self {
        self.cost = cost;
        self
    }

    /// Replaces the partition strategy.
    pub fn with_partition_strategy(mut self, strategy: PartitionStrategy) -> Self {
        self.partition_strategy = strategy;
        self
    }

    /// Replaces the superstep cap.
    pub fn with_max_supersteps(mut self, max: usize) -> Self {
        self.max_supersteps = max;
        self
    }

    /// A paper-like configuration: 29 workers (the paper's Giraph setup) and
    /// default costs.
    pub fn paper_cluster() -> Self {
        Self::with_workers(29)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = BspConfig::default();
        assert_eq!(c.num_workers, DEFAULT_NUM_WORKERS);
        assert_eq!(c.max_supersteps, DEFAULT_MAX_SUPERSTEPS);
        assert_eq!(c.partition_strategy, PartitionStrategy::Hash);
    }

    #[test]
    fn builders_override_fields() {
        let c = BspConfig::with_workers(4)
            .with_max_supersteps(10)
            .with_partition_strategy(PartitionStrategy::Modulo);
        assert_eq!(c.num_workers, 4);
        assert_eq!(c.max_supersteps, 10);
        assert_eq!(c.partition_strategy, PartitionStrategy::Modulo);
    }

    #[test]
    fn paper_cluster_has_29_workers() {
        assert_eq!(BspConfig::paper_cluster().num_workers, 29);
    }
}
