//! The simulated cluster clock.
//!
//! The paper measures wall-clock superstep times on a 10-node Hadoop/Giraph
//! cluster. That hardware is not available here, so the engine attaches a
//! *simulated cluster clock*: the wall time of a superstep is computed from
//! the per-worker Table 1 counters with a network-dominant cost function plus
//! per-superstep fixed overhead, barrier cost and bounded deterministic noise.
//!
//! Two properties make this a faithful substitute for the paper's testbed:
//!
//! 1. PREDIcT only ever observes (a) the per-worker feature counters and
//!    (b) the resulting superstep wall times. Both are produced here with the
//!    same granularity as the real cluster produced them.
//! 2. The *true* cost coefficients are configuration of the simulator and are
//!    never shown to the predictor — PREDIcT has to recover them by regression
//!    from sample-run profiles, exactly as it has to on real hardware. The
//!    fixed per-superstep overhead reproduces the paper's observation
//!    (section 5.2) that cost factors get over-estimated when the training
//!    data consists of very short sample runs on small graphs.

use crate::counters::WorkerCounters;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Cost coefficients of the simulated cluster.
///
/// All times are in (simulated) milliseconds. The defaults model a
/// network-bound Giraph deployment: remote bytes are the dominant cost,
/// local delivery is cheaper, per-vertex compute is small, and every
/// superstep pays a fixed coordination overhead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterCostConfig {
    /// Fixed coordination overhead paid by every superstep regardless of the
    /// amount of work (master bookkeeping, task scheduling).
    pub superstep_overhead_ms: f64,
    /// Cost of the synchronization barrier closing each superstep.
    pub barrier_ms: f64,
    /// Cost per active vertex (executing the compute function).
    pub active_vertex_ms: f64,
    /// Cost per message initiated (serialization, queueing).
    pub message_ms: f64,
    /// Cost per byte delivered to a vertex on the same worker.
    pub local_byte_ms: f64,
    /// Cost per byte delivered across workers (the simulated network).
    pub remote_byte_ms: f64,
    /// One-off master setup cost (the paper's "setup phase").
    pub setup_ms: f64,
    /// Cost per edge of loading the input graph ("read phase").
    pub read_edge_ms: f64,
    /// Cost per vertex of writing the output ("write phase").
    pub write_vertex_ms: f64,
    /// Relative amplitude of the multiplicative noise applied to every
    /// worker's superstep time (e.g. `0.03` = ±3%). Noise is deterministic
    /// for a fixed [`ClusterCostConfig::noise_seed`].
    pub noise_fraction: f64,
    /// Seed of the deterministic noise stream.
    pub noise_seed: u64,
}

impl Default for ClusterCostConfig {
    fn default() -> Self {
        Self {
            superstep_overhead_ms: 6.0,
            barrier_ms: 2.0,
            active_vertex_ms: 0.002,
            message_ms: 0.008,
            local_byte_ms: 0.000_05,
            remote_byte_ms: 0.000_2,
            setup_ms: 80.0,
            read_edge_ms: 0.000_5,
            write_vertex_ms: 0.001,
            noise_fraction: 0.03,
            noise_seed: 0xC05F,
        }
    }
}

impl ClusterCostConfig {
    /// A configuration with all noise removed; useful for tests that verify
    /// exact cost arithmetic.
    pub fn noiseless() -> Self {
        Self {
            noise_fraction: 0.0,
            ..Self::default()
        }
    }

    /// Scales every variable cost coefficient by `factor`, keeping overheads
    /// fixed. Used by ablation benchmarks that explore slower/faster networks.
    pub fn with_network_scale(mut self, factor: f64) -> Self {
        self.message_ms *= factor;
        self.local_byte_ms *= factor;
        self.remote_byte_ms *= factor;
        self
    }
}

/// The simulated cluster clock attached to a BSP run.
#[derive(Debug, Clone)]
pub struct ClusterClock {
    config: ClusterCostConfig,
    rng: StdRng,
}

impl ClusterClock {
    /// Creates a clock with the given cost configuration.
    pub fn new(config: ClusterCostConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.noise_seed);
        Self { config, rng }
    }

    /// The configuration of this clock.
    pub fn config(&self) -> &ClusterCostConfig {
        &self.config
    }

    /// Noise-free processing time of one worker given its superstep counters.
    pub fn worker_time_ms(&self, counters: &WorkerCounters) -> f64 {
        let c = &self.config;
        counters.active_vertices as f64 * c.active_vertex_ms
            + counters.total_messages() as f64 * c.message_ms
            + counters.local_message_bytes as f64 * c.local_byte_ms
            + counters.remote_message_bytes as f64 * c.remote_byte_ms
    }

    /// Simulated wall time of a superstep: fixed overhead plus the slowest
    /// worker (the critical path) plus the barrier, with multiplicative noise
    /// applied per worker. Returns `(superstep_wall_ms, per_worker_ms)`.
    pub fn superstep_time_ms(&mut self, workers: &[WorkerCounters]) -> (f64, Vec<f64>) {
        let mut per_worker = Vec::with_capacity(workers.len());
        let mut slowest = 0.0f64;
        for w in workers {
            let base = self.worker_time_ms(w);
            let noisy = base * (1.0 + self.noise());
            per_worker.push(noisy);
            slowest = slowest.max(noisy);
        }
        let wall = self.config.superstep_overhead_ms + slowest + self.config.barrier_ms;
        (wall, per_worker)
    }

    /// Simulated duration of the setup phase.
    pub fn setup_time_ms(&mut self) -> f64 {
        self.config.setup_ms * (1.0 + self.noise())
    }

    /// Simulated duration of the read phase for a graph with `num_edges`
    /// edges, split across `num_workers` workers.
    pub fn read_time_ms(&mut self, num_edges: usize, num_workers: usize) -> f64 {
        let per_worker_edges = num_edges as f64 / num_workers.max(1) as f64;
        per_worker_edges * self.config.read_edge_ms * (1.0 + self.noise())
    }

    /// Simulated duration of the write phase for `num_vertices` vertices,
    /// split across `num_workers` workers.
    pub fn write_time_ms(&mut self, num_vertices: usize, num_workers: usize) -> f64 {
        let per_worker_vertices = num_vertices as f64 / num_workers.max(1) as f64;
        per_worker_vertices * self.config.write_vertex_ms * (1.0 + self.noise())
    }

    fn noise(&mut self) -> f64 {
        if self.config.noise_fraction == 0.0 {
            0.0
        } else {
            self.rng
                .gen_range(-self.config.noise_fraction..=self.config.noise_fraction)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(
        active: u64,
        local: u64,
        remote: u64,
        local_bytes: u64,
        remote_bytes: u64,
    ) -> WorkerCounters {
        WorkerCounters {
            active_vertices: active,
            total_vertices: active,
            local_messages: local,
            remote_messages: remote,
            local_message_bytes: local_bytes,
            remote_message_bytes: remote_bytes,
        }
    }

    #[test]
    fn worker_time_is_linear_in_counters() {
        let clock = ClusterClock::new(ClusterCostConfig::noiseless());
        let single = clock.worker_time_ms(&counters(10, 5, 5, 40, 40));
        let double = clock.worker_time_ms(&counters(20, 10, 10, 80, 80));
        assert!((double - 2.0 * single).abs() < 1e-9);
    }

    #[test]
    fn remote_bytes_cost_more_than_local_bytes() {
        let clock = ClusterClock::new(ClusterCostConfig::noiseless());
        let local_heavy = clock.worker_time_ms(&counters(0, 1, 0, 10_000, 0));
        let remote_heavy = clock.worker_time_ms(&counters(0, 0, 1, 0, 10_000));
        assert!(remote_heavy > local_heavy);
    }

    #[test]
    fn superstep_time_tracks_slowest_worker() {
        let mut clock = ClusterClock::new(ClusterCostConfig::noiseless());
        let light = counters(10, 10, 10, 80, 80);
        let heavy = counters(1_000, 10_000, 10_000, 80_000, 80_000);
        let (wall, per_worker) = clock.superstep_time_ms(&[light, heavy]);
        let cfg = ClusterCostConfig::noiseless();
        assert_eq!(per_worker.len(), 2);
        assert!(per_worker[1] > per_worker[0]);
        assert!((wall - (cfg.superstep_overhead_ms + per_worker[1] + cfg.barrier_ms)).abs() < 1e-9);
    }

    #[test]
    fn empty_superstep_costs_only_overhead_and_barrier() {
        let mut clock = ClusterClock::new(ClusterCostConfig::noiseless());
        let (wall, per_worker) = clock.superstep_time_ms(&[WorkerCounters::default()]);
        let cfg = ClusterCostConfig::noiseless();
        assert_eq!(per_worker, vec![0.0]);
        assert!((wall - (cfg.superstep_overhead_ms + cfg.barrier_ms)).abs() < 1e-9);
    }

    #[test]
    fn noise_is_bounded_and_deterministic() {
        let cfg = ClusterCostConfig {
            noise_fraction: 0.05,
            ..ClusterCostConfig::default()
        };
        let heavy = counters(1_000, 10_000, 10_000, 80_000, 80_000);
        let mut clock_a = ClusterClock::new(cfg.clone());
        let mut clock_b = ClusterClock::new(cfg.clone());
        let noiseless = ClusterClock::new(ClusterCostConfig::noiseless()).worker_time_ms(&heavy);
        for _ in 0..10 {
            let (wall_a, per_a) = clock_a.superstep_time_ms(&[heavy]);
            let (wall_b, _) = clock_b.superstep_time_ms(&[heavy]);
            assert_eq!(wall_a, wall_b, "same seed must give identical times");
            assert!((per_a[0] - noiseless).abs() <= noiseless * 0.05 + 1e-9);
        }
    }

    #[test]
    fn phase_times_scale_with_input_size_and_workers() {
        let mut clock = ClusterClock::new(ClusterCostConfig::noiseless());
        let read_small = clock.read_time_ms(10_000, 4);
        let read_big = clock.read_time_ms(100_000, 4);
        assert!(read_big > read_small);
        let read_more_workers = clock.read_time_ms(100_000, 8);
        assert!(read_more_workers < read_big);
        assert!(clock.write_time_ms(10_000, 4) > 0.0);
        assert!(clock.setup_time_ms() > 0.0);
    }

    #[test]
    fn network_scale_multiplies_network_costs_only() {
        let base = ClusterCostConfig::noiseless();
        let scaled = ClusterCostConfig::noiseless().with_network_scale(2.0);
        assert_eq!(scaled.message_ms, base.message_ms * 2.0);
        assert_eq!(scaled.remote_byte_ms, base.remote_byte_ms * 2.0);
        assert_eq!(scaled.superstep_overhead_ms, base.superstep_overhead_ms);
        assert_eq!(scaled.active_vertex_ms, base.active_vertex_ms);
    }
}
