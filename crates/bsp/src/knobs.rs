//! Centralized parsing of the `PREDICT_*` environment knobs.
//!
//! Six environment variables tune how the engine executes a run without
//! changing its results: `PREDICT_THREADS` (superstep-phase thread count),
//! `PREDICT_STORAGE` (unified vs sharded graph layout), `PREDICT_POOL`
//! (persistent worker pool vs scoped threads), `PREDICT_TRANSPORT`
//! (in-memory executor vs the out-of-process cluster driver),
//! `PREDICT_TRACE` (Chrome-trace span export path) and `PREDICT_STORE`
//! (persistent artifact-store directory). They used to
//! be parsed ad hoc at each `resolve_*` site, and an invalid value —
//! `PREDICT_THREADS=fast`, `PREDICT_STORAGE=shard` — was silently ignored,
//! which made typos indistinguishable from defaults. This module is the one
//! place the knobs are read: every parser falls back to the documented
//! default on an unrecognized value *and* warns once per process per
//! variable on stderr, so a typo'd CI line shows up in the log instead of
//! quietly benchmarking the wrong configuration.
//!
//! The parsing core is pure (`value` comes in as an argument), so the unit
//! tests below never touch the real process environment and cannot race
//! concurrently running tests.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Mutex;

/// Thread-count knob honored by
/// [`ExecutionMode::Auto`](crate::config::ExecutionMode).
pub const THREADS_VAR: &str = "PREDICT_THREADS";
/// Storage-layout knob honored by
/// [`StorageMode::Auto`](crate::storage::StorageMode).
pub const STORAGE_VAR: &str = "PREDICT_STORAGE";
/// Worker-pool knob honored by [`PoolMode::Auto`](crate::config::PoolMode).
pub const POOL_VAR: &str = "PREDICT_POOL";
/// Transport knob honored by
/// [`TransportMode::Auto`](crate::remote::TransportMode).
pub const TRANSPORT_VAR: &str = "PREDICT_TRANSPORT";
/// Trace-output knob honored by `predict_bench::observability_guard`: a
/// file path that, when set, receives a Chrome trace-event JSON dump of
/// every span recorded during the process.
pub const TRACE_VAR: &str = "PREDICT_TRACE";
/// Artifact-store knob honored by `predict_core`'s
/// `PredictServiceConfig`: a directory that, when set, persists stage
/// artifacts (samples, sample runs, models, actual runs) across process
/// restarts so a restarted service answers warm.
pub const STORE_VAR: &str = "PREDICT_STORE";

/// Variables that have already produced an invalid-value warning in this
/// process. One warning per variable keeps a scenario sweep (thousands of
/// resolve calls) from flooding stderr while still surfacing the typo.
fn warned() -> &'static Mutex<BTreeSet<String>> {
    static WARNED: std::sync::OnceLock<Mutex<BTreeSet<String>>> = std::sync::OnceLock::new();
    WARNED.get_or_init(|| Mutex::new(BTreeSet::new()))
}

/// Emits the invalid-value warning for `var` unless it was already warned
/// about in this process.
fn warn_invalid(var: &str, value: &str, expected: &str) {
    let mut seen = warned().lock().unwrap_or_else(|e| e.into_inner());
    if seen.insert(var.to_string()) {
        predict_obs::diag!(
            Warn,
            "ignoring invalid {var}={value:?} (expected {expected}); \
             using the default"
        );
    }
}

/// Parses a positive thread count from `value`; `None` when the variable is
/// unset, `Err` semantics folded into `None` + warning on garbage (`0`,
/// `fast`, …).
fn parse_threads(var: &str, value: Option<&str>) -> Option<usize> {
    let raw = value?;
    match raw.trim().parse::<usize>() {
        Ok(t) if t > 0 => Some(t),
        _ => {
            warn_invalid(var, raw, "a positive integer");
            None
        }
    }
}

/// Parses the storage knob: `sharded` selects sharded storage, unset or
/// `unified` selects unified; anything else warns and selects unified.
fn parse_storage(var: &str, value: Option<&str>) -> bool {
    let Some(raw) = value else { return false };
    match raw.trim().to_ascii_lowercase().as_str() {
        "sharded" => true,
        "" | "unified" => false,
        _ => {
            warn_invalid(var, raw, "`sharded` or `unified`");
            false
        }
    }
}

/// Parses the pool knob: `off`/`0`/`false` disables the persistent pool,
/// unset or `on`/`1`/`true` enables it; anything else warns and enables it
/// (the historical "anything else means enabled" behavior, now loud).
fn parse_pool(var: &str, value: Option<&str>) -> bool {
    let Some(raw) = value else { return true };
    match raw.trim().to_ascii_lowercase().as_str() {
        "off" | "0" | "false" => false,
        "" | "on" | "1" | "true" => true,
        _ => {
            warn_invalid(var, raw, "`on`/`1`/`true` or `off`/`0`/`false`");
            true
        }
    }
}

/// The transport choices `PREDICT_TRANSPORT` can select between (the
/// resolved form of [`TransportMode`](crate::remote::TransportMode)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportChoice {
    /// The in-memory executor (no transport boundary at all).
    #[default]
    InMemory,
    /// Channel-connected in-process worker threads speaking the wire format.
    InProc,
    /// Long-lived OS worker processes speaking the wire format over pipes.
    Process,
    /// Long-lived OS worker processes speaking the wire format over
    /// length-prefixed frame streams on Unix-domain sockets.
    Socket,
}

impl TransportChoice {
    /// The knob spelling of this choice, for reports and log lines.
    pub fn name(self) -> &'static str {
        match self {
            Self::InMemory => "inmem",
            Self::InProc => "inproc",
            Self::Process => "process",
            Self::Socket => "socket",
        }
    }
}

/// Parses the transport knob: `inmem`/`inmemory` (or unset) selects the
/// in-memory executor, `inproc` the channel transport, `process` the OS
/// process transport, `socket` the Unix-domain socket transport; anything
/// else warns and stays in memory.
fn parse_transport(var: &str, value: Option<&str>) -> TransportChoice {
    let Some(raw) = value else {
        return TransportChoice::InMemory;
    };
    match raw.trim().to_ascii_lowercase().as_str() {
        "" | "inmem" | "inmemory" => TransportChoice::InMemory,
        "inproc" => TransportChoice::InProc,
        "process" => TransportChoice::Process,
        "socket" => TransportChoice::Socket,
        _ => {
            warn_invalid(var, raw, "`inmem`, `inproc`, `process` or `socket`");
            TransportChoice::InMemory
        }
    }
}

/// Parses the trace knob: a non-empty path selects Chrome-trace export to
/// that file; unset or blank disables tracing. Any non-blank string is a
/// legal path, so this parser has no invalid-value warning.
fn parse_trace(value: Option<&str>) -> Option<PathBuf> {
    let raw = value?.trim();
    if raw.is_empty() {
        return None;
    }
    Some(PathBuf::from(raw))
}

/// Parses the store knob: a non-empty path selects a persistent artifact
/// store rooted at that directory; unset or blank keeps artifacts in memory
/// only. Like the trace knob, any non-blank string is a legal path, so
/// there is no invalid-value warning.
fn parse_store(value: Option<&str>) -> Option<PathBuf> {
    let raw = value?.trim();
    if raw.is_empty() {
        return None;
    }
    Some(PathBuf::from(raw))
}

fn env(var: &str) -> Option<String> {
    std::env::var(var).ok()
}

/// `PREDICT_THREADS` as a positive thread count, `None` when unset or
/// invalid (invalid values warn once).
pub fn env_threads() -> Option<usize> {
    parse_threads(THREADS_VAR, env(THREADS_VAR).as_deref())
}

/// Whether `PREDICT_STORAGE` selects sharded storage.
pub fn env_storage_sharded() -> bool {
    parse_storage(STORAGE_VAR, env(STORAGE_VAR).as_deref())
}

/// Whether `PREDICT_POOL` leaves the persistent worker pool enabled.
pub fn env_pool_enabled() -> bool {
    parse_pool(POOL_VAR, env(POOL_VAR).as_deref())
}

/// The transport `PREDICT_TRANSPORT` selects.
pub fn env_transport() -> TransportChoice {
    parse_transport(TRANSPORT_VAR, env(TRANSPORT_VAR).as_deref())
}

/// The Chrome-trace output path `PREDICT_TRACE` selects, `None` when
/// tracing is disabled.
pub fn env_trace_path() -> Option<PathBuf> {
    parse_trace(env(TRACE_VAR).as_deref())
}

/// The artifact-store directory `PREDICT_STORE` selects, `None` when
/// persistence is disabled.
pub fn env_store_path() -> Option<PathBuf> {
    parse_store(env(STORE_VAR).as_deref())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each test uses a unique fake variable name so the warn-once set never
    // couples two tests, and no test mutates the real process environment.

    #[test]
    fn threads_accepts_positive_integers() {
        assert_eq!(parse_threads("T_OK", Some("4")), Some(4));
        assert_eq!(parse_threads("T_OK2", Some(" 12 ")), Some(12));
        assert_eq!(parse_threads("T_UNSET", None), None);
    }

    #[test]
    fn threads_rejects_zero_and_garbage() {
        assert_eq!(parse_threads("T_ZERO", Some("0")), None);
        assert_eq!(parse_threads("T_WORD", Some("fast")), None);
        assert_eq!(parse_threads("T_NEG", Some("-3")), None);
    }

    #[test]
    fn storage_recognizes_sharded_and_unified() {
        assert!(parse_storage("S_OK", Some("sharded")));
        assert!(parse_storage("S_CASE", Some(" ShArDeD ")));
        assert!(!parse_storage("S_UNI", Some("unified")));
        assert!(!parse_storage("S_UNSET", None));
        assert!(!parse_storage("S_TYPO", Some("shard")));
    }

    #[test]
    fn pool_recognizes_both_polarities() {
        assert!(!parse_pool("P_OFF", Some("off")));
        assert!(!parse_pool("P_ZERO", Some("0")));
        assert!(!parse_pool("P_FALSE", Some("FALSE")));
        assert!(parse_pool("P_ON", Some("on")));
        assert!(parse_pool("P_ONE", Some("1")));
        assert!(parse_pool("P_UNSET", None));
        // Unrecognized values keep the historical "enabled" default.
        assert!(parse_pool("P_TYPO", Some("offf")));
    }

    #[test]
    fn transport_recognizes_all_four_backends() {
        assert_eq!(
            parse_transport("X_MEM", Some("inmem")),
            TransportChoice::InMemory
        );
        assert_eq!(
            parse_transport("X_MEM2", Some("InMemory")),
            TransportChoice::InMemory
        );
        assert_eq!(
            parse_transport("X_PROC", Some("inproc")),
            TransportChoice::InProc
        );
        assert_eq!(
            parse_transport("X_OS", Some("process")),
            TransportChoice::Process
        );
        assert_eq!(
            parse_transport("X_SOCK", Some("socket")),
            TransportChoice::Socket
        );
        assert_eq!(TransportChoice::Socket.name(), "socket");
        assert_eq!(parse_transport("X_UNSET", None), TransportChoice::InMemory);
        assert_eq!(
            parse_transport("X_TYPO", Some("processes")),
            TransportChoice::InMemory
        );
    }

    #[test]
    fn trace_accepts_paths_and_ignores_blanks() {
        assert_eq!(parse_trace(None), None);
        assert_eq!(parse_trace(Some("")), None);
        assert_eq!(parse_trace(Some("   ")), None);
        assert_eq!(
            parse_trace(Some("trace.json")),
            Some(PathBuf::from("trace.json"))
        );
        assert_eq!(
            parse_trace(Some(" target/out.trace.json ")),
            Some(PathBuf::from("target/out.trace.json"))
        );
    }

    #[test]
    fn store_accepts_paths_and_ignores_blanks() {
        assert_eq!(parse_store(None), None);
        assert_eq!(parse_store(Some("")), None);
        assert_eq!(parse_store(Some("  ")), None);
        assert_eq!(
            parse_store(Some(" target/store ")),
            Some(PathBuf::from("target/store"))
        );
    }

    #[test]
    fn warnings_fire_once_per_variable() {
        // The pure parsers route through the shared warn-once set; calling
        // twice with the same variable must not re-insert.
        assert_eq!(parse_threads("W_ONCE", Some("junk")), None);
        let before = warned().lock().unwrap().len();
        assert_eq!(parse_threads("W_ONCE", Some("junk")), None);
        assert_eq!(warned().lock().unwrap().len(), before);
        assert!(warned().lock().unwrap().contains("W_ONCE"));
    }
}
