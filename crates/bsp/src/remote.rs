//! The remote-execution knob and measured-timing types.
//!
//! The engine's in-memory executor shares one address space between all
//! workers; the `predict_cluster` crate provides the alternative — workers
//! behind an explicit transport boundary exchanging serialized superstep
//! message batches. This module holds the pieces of that subsystem that
//! must live *in* the engine crate so they can ride [`BspConfig`] and
//! [`RunProfile`] without a dependency cycle:
//!
//! * [`TransportMode`] — the `ExecutionMode`-style knob selecting which
//!   executor a run uses. The engine itself only stores and resolves it
//!   (`Auto` honors `PREDICT_TRANSPORT` through [`crate::knobs`]); the
//!   dispatch to a remote transport happens in `predict_cluster`, which
//!   sits above this crate.
//! * [`MeasuredRun`] / [`MeasuredSuperstep`] — *measured* wall-clock and
//!   bytes-on-the-wire timings the cluster driver attaches to the profile
//!   of a remote run, alongside the simulated [`ClusterClock`] timings.
//!   These are the first real timings in the stack, and they let the
//!   paper's simulated cluster model be compared against an actual
//!   message-passing execution. They are intentionally **not serialized**
//!   with the profile (`#[serde(skip)]` on
//!   [`RunProfile::measured`](crate::profile::RunProfile::measured)):
//!   measured times differ run to run, while serialized profiles are pinned
//!   byte-for-byte by the golden scenarios and the history store.
//!
//! Like execution, storage and pool modes, the transport is a pure
//! performance/topology knob: the runtime's determinism contract extends
//! across the transport boundary (see `crate::runtime` point 8), so values,
//! serialized profiles and halt reasons are byte-identical under every
//! transport.
//!
//! [`ClusterClock`]: crate::cost::ClusterClock
//! [`BspConfig`]: crate::config::BspConfig
//! [`RunProfile`]: crate::profile::RunProfile

use crate::knobs::{self, TransportChoice};
use serde::{Deserialize, Serialize};

/// Which executor a run uses: the in-memory runtime or a transport-backed
/// cluster of workers (driven by `predict_cluster`).
///
/// Never affects results — only where workers live and how messages travel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TransportMode {
    /// Honor the `PREDICT_TRANSPORT` environment variable (`inmem`,
    /// `inproc`, `process` or `socket`; unset or invalid values fall back
    /// to the in-memory executor, invalid ones with a warning).
    #[default]
    Auto,
    /// The in-memory executor (`crate::runtime`) — no transport boundary.
    InMemory,
    /// One worker thread per shard, connected by in-process channels
    /// carrying serialized wire-format frames.
    InProc,
    /// One long-lived OS worker process per shard (the `cluster_worker`
    /// binary), speaking the wire format over pipes.
    Process,
    /// One long-lived OS worker process per shard, speaking the wire
    /// format over a Unix-domain socket stream instead of pipes.
    Socket,
}

impl TransportMode {
    /// Resolves the mode to a concrete transport choice.
    pub fn resolve(self) -> TransportChoice {
        match self {
            Self::InMemory => TransportChoice::InMemory,
            Self::InProc => TransportChoice::InProc,
            Self::Process => TransportChoice::Process,
            Self::Socket => TransportChoice::Socket,
            Self::Auto => knobs::env_transport(),
        }
    }
}

/// Measured timings of one superstep of a transport-backed run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MeasuredSuperstep {
    /// Wall-clock time of the whole superstep round as seen by the driver:
    /// from broadcasting the step frame until the last worker's step-done
    /// frame was collected.
    pub wall_ns: u64,
    /// Per-worker compute-phase time in nanoseconds, measured inside each
    /// worker (aligned with worker index).
    pub worker_compute_ns: Vec<u64>,
    /// Serialized bytes each worker put on the wire this superstep (the
    /// encoded outbound message batches, aligned with worker index).
    pub wire_bytes: Vec<u64>,
}

/// Measured timings of a whole transport-backed run, attached to
/// [`RunProfile::measured`](crate::profile::RunProfile::measured) by the
/// cluster driver. `None` on in-memory runs.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MeasuredRun {
    /// Name of the transport that executed the run (`"inproc"` or
    /// `"process"`).
    pub transport: String,
    /// One entry per executed superstep, aligned with
    /// [`RunProfile::supersteps`](crate::profile::RunProfile::supersteps).
    pub supersteps: Vec<MeasuredSuperstep>,
    /// Measured wall-clock time of the whole run (worker setup through
    /// value collection).
    pub total_wall_ns: u64,
}

impl MeasuredRun {
    /// Measured wall time of the superstep phase in milliseconds — the
    /// measured counterpart of
    /// [`RunProfile::superstep_phase_ms`](crate::profile::RunProfile::superstep_phase_ms).
    pub fn superstep_phase_ms(&self) -> f64 {
        self.supersteps.iter().map(|s| s.wall_ns).sum::<u64>() as f64 / 1e6
    }

    /// Total serialized bytes that crossed the wire during the run.
    pub fn total_wire_bytes(&self) -> u64 {
        self.supersteps
            .iter()
            .map(|s| s.wire_bytes.iter().sum::<u64>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forced_modes_ignore_the_environment() {
        assert_eq!(TransportMode::InMemory.resolve(), TransportChoice::InMemory);
        assert_eq!(TransportMode::InProc.resolve(), TransportChoice::InProc);
        assert_eq!(TransportMode::Process.resolve(), TransportChoice::Process);
        assert_eq!(TransportMode::Socket.resolve(), TransportChoice::Socket);
    }

    #[test]
    fn measured_run_aggregates() {
        let run = MeasuredRun {
            transport: "inproc".to_string(),
            supersteps: vec![
                MeasuredSuperstep {
                    wall_ns: 2_000_000,
                    worker_compute_ns: vec![1, 2],
                    wire_bytes: vec![10, 20],
                },
                MeasuredSuperstep {
                    wall_ns: 1_000_000,
                    worker_compute_ns: vec![3, 4],
                    wire_bytes: vec![30, 0],
                },
            ],
            total_wall_ns: 5_000_000,
        };
        assert!((run.superstep_phase_ms() - 3.0).abs() < 1e-9);
        assert_eq!(run.total_wire_bytes(), 60);
    }
}
