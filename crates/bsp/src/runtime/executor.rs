//! The superstep executor: master loop, phase scheduling and thread fan-out.
//!
//! [`execute`] drives a full BSP run over sharded worker state. Each
//! superstep is two phases:
//!
//! 1. **compute** — every shard runs [`WorkerShard::run_superstep`]; shards
//!    are disjoint, so the executor spreads them over scoped OS threads;
//! 2. **delivery** — the master transposes the per-worker routed outboxes
//!    into per-destination inbound rows (an `O(workers²)` pointer swap, no
//!    message is copied), then every shard runs [`WorkerShard::deliver`],
//!    again in parallel.
//!
//! Everything order-sensitive stays on the master thread between phases:
//! counters are collected, aggregates merged and the [`ClusterClock`] advanced
//! in ascending worker order, exactly as the old sequential loop did. See
//! [`crate::runtime`] for the resulting determinism contract.

use crate::aggregator::Aggregates;
use crate::config::BspConfig;
use crate::cost::ClusterClock;
use crate::engine::{BspRunResult, HaltReason};
use crate::profile::{RunProfile, SuperstepProfile};
use crate::program::VertexProgram;
use crate::runtime::layout::ShardLayout;
use crate::runtime::pool::{self, WorkerPool};
use crate::runtime::shard::WorkerShard;
use crate::storage::StorageRef;
use predict_graph::{CsrGraph, VertexId};

/// One row of the inbound transpose matrix: the message buffers destined for
/// (or produced by) one worker, one buffer per peer worker.
type MessageRow<M> = Vec<Vec<(VertexId, M)>>;

/// Splits `items` into at most `threads` contiguous chunks and runs `f` on
/// every item. With a pool, the chunks are scheduled as one scope on the
/// persistent workers (zero spawns once warm); without one, they fan out
/// over per-phase scoped OS threads — the pre-pool behavior, kept as the
/// `PoolMode::Off` escape hatch and counted so spawn-based benches can
/// compare the two. `threads == 1` degenerates to a plain in-place loop
/// with no spawn and no pool interaction at all.
///
/// `f` must be safe to run concurrently on distinct items; chunk boundaries
/// never affect results, only wall-clock time.
fn for_each_chunked<T: Send, F: Fn(&mut T) + Sync>(
    items: &mut [T],
    threads: usize,
    pool: Option<&WorkerPool>,
    f: F,
) {
    if threads <= 1 || items.len() <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let chunk_size = items.len().div_ceil(threads);
    match pool {
        Some(pool) => {
            let f = &f;
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = items
                .chunks_mut(chunk_size)
                .map(|chunk| {
                    Box::new(move || {
                        for item in chunk {
                            f(item);
                        }
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_scoped(threads, tasks);
        }
        None => std::thread::scope(|scope| {
            let mut chunks = items.chunks_mut(chunk_size);
            let first = chunks.next();
            let f = &f;
            for chunk in chunks {
                pool::record_external_spawn();
                scope.spawn(move || {
                    for item in chunk {
                        f(item);
                    }
                });
            }
            if let Some(chunk) = first {
                for item in chunk {
                    f(item);
                }
            }
        }),
    }
}

/// Executes `program` on a unified `graph` over the sharded state described
/// by `layout`, spreading per-shard phases over `threads` OS threads.
///
/// Storage-generic callers use [`execute_on`]; this thin wrapper keeps the
/// original unified-graph signature for direct runtime users and tests.
pub fn execute<P: VertexProgram>(
    program: &P,
    graph: &CsrGraph,
    layout: &ShardLayout,
    config: &BspConfig,
    threads: usize,
) -> BspRunResult<P::VertexValue> {
    execute_on(program, StorageRef::Unified(graph), layout, config, threads)
}

/// Executes `program` against `storage` — the unified CSR or one
/// [`ShardedCsr`](predict_graph::ShardedCsr) per worker — over the sharded
/// state described by `layout`, spreading per-shard phases over `threads` OS
/// threads.
///
/// This is the engine's whole run loop; [`crate::BspEngine::run`] and
/// [`crate::BspEngine::run_storage`] are thin facades over it. The output is
/// byte-identical for every `threads` value *and* for both storage layouts:
/// under sharded storage each worker's phases read only its own shard's
/// adjacency, which holds exactly the bytes the unified CSR holds for the
/// worker's owned vertices.
pub fn execute_on<P: VertexProgram>(
    program: &P,
    storage: StorageRef<'_>,
    layout: &ShardLayout,
    config: &BspConfig,
    threads: usize,
) -> BspRunResult<P::VertexValue> {
    execute_pooled(program, storage, layout, config, threads, None)
}

/// [`execute_on`], with parallel phases scheduled on `pool` when one is
/// given. The engine resolves its [`PoolMode`](crate::config::PoolMode) and
/// passes its persistent pool here; `None` falls back to per-phase scoped
/// threads. Pool or not, the output is byte-identical — the pool only
/// changes which OS thread runs a chunk, never the chunking, the merge
/// order, or anything else the determinism contract pins.
pub fn execute_pooled<P: VertexProgram>(
    program: &P,
    storage: StorageRef<'_>,
    layout: &ShardLayout,
    config: &BspConfig,
    threads: usize,
    pool: Option<&WorkerPool>,
) -> BspRunResult<P::VertexValue> {
    let num_workers = layout.num_workers();
    let _run_span = predict_obs::trace::span("bsp.run")
        .arg("algorithm", program.name())
        .arg("workers", num_workers)
        .arg("threads", threads);
    let superstep_ns = predict_obs::registry().histogram("bsp.superstep_ns");
    let mut clock = ClusterClock::new(config.cost.clone());

    // Setup and read phases.
    let setup_ms = clock.setup_time_ms();
    let read_ms = clock.read_time_ms(storage.num_edges(), num_workers);

    // Per-worker sharded state; value initialization fans out like a phase.
    let mut shards: Vec<WorkerShard<P>> = (0..num_workers)
        .map(|w| WorkerShard::init_empty(w, layout))
        .collect();
    for_each_chunked(&mut shards, threads, pool, |shard| {
        shard.init_values(program, storage.worker_graph(shard.worker), layout);
    });

    // Inbound matrix: `inbound[dst][src]` buffers circulate between the
    // shards' routed outboxes and the delivery phase, so message buffers are
    // pooled across supersteps rather than reallocated.
    let mut inbound: Vec<MessageRow<P::Message>> = (0..num_workers)
        .map(|_| (0..num_workers).map(|_| Vec::new()).collect())
        .collect();

    let combiner = program.combiner();
    let mut previous_aggregates = Aggregates::new();
    let mut supersteps: Vec<SuperstepProfile> = Vec::new();
    let mut halt_reason = HaltReason::MaxSupersteps;

    for superstep in 0..config.max_supersteps {
        let _superstep_span =
            predict_obs::trace::span("bsp.superstep").arg("superstep", superstep as u64);
        let superstep_start = std::time::Instant::now();
        // Compute phase: every shard processes its vertices against its own
        // view of the graph. Shards are disjoint; the fan-out cannot reorder
        // anything observable.
        {
            let _compute_span = predict_obs::trace::span("bsp.compute");
            let previous_aggregates = &previous_aggregates;
            for_each_chunked(&mut shards, threads, pool, |shard| {
                shard.run_superstep(
                    program,
                    storage.worker_graph(shard.worker),
                    layout,
                    superstep,
                    previous_aggregates,
                );
            });
        }

        // Master: merge worker outputs in ascending worker order — the same
        // order the sequential loop used, which pins counter vectors, float
        // aggregate sums and message delivery order bit-for-bit.
        let mut worker_counters = Vec::with_capacity(num_workers);
        let mut aggregates = Aggregates::new();
        let mut messages_sent = 0u64;
        for shard in &shards {
            worker_counters.push(shard.counters);
            aggregates.merge(&shard.partial_aggregates);
            messages_sent += shard.counters.total_messages();
        }

        // Transpose routed outboxes into inbound rows by swapping buffers.
        for (w, shard) in shards.iter_mut().enumerate() {
            for (d, buf) in shard.routed.iter_mut().enumerate() {
                std::mem::swap(buf, &mut inbound[d][w]);
            }
        }

        // Delivery phase: every destination shard pulls its inbound row
        // (ascending source worker, production order within a source).
        {
            let _deliver_span = predict_obs::trace::span("bsp.deliver");
            let mut pairs: Vec<(&mut WorkerShard<P>, &mut MessageRow<P::Message>)> =
                shards.iter_mut().zip(inbound.iter_mut()).collect();
            for_each_chunked(&mut pairs, threads, pool, |(shard, row)| {
                shard.deliver(layout, row, combiner);
            });
        }

        // Synchronization phase: the simulated clock charges the critical
        // path (slowest worker) plus fixed overhead and barrier.
        let (wall_time_ms, worker_times_ms) = clock.superstep_time_ms(&worker_counters);
        supersteps.push(SuperstepProfile {
            superstep,
            workers: worker_counters,
            worker_times_ms,
            wall_time_ms,
            aggregates: aggregates.clone(),
        });
        superstep_ns.record(superstep_start.elapsed().as_nanos() as u64);

        // Termination checks, in the same priority order as Giraph: the
        // algorithm's global convergence condition first, then the
        // "all halted and silent" default.
        if program.master_halt(superstep, &aggregates) {
            halt_reason = HaltReason::MasterConverged;
            break;
        }
        if messages_sent == 0 && shards.iter().all(|s| s.all_halted()) {
            halt_reason = HaltReason::AllVerticesHalted;
            break;
        }
        previous_aggregates = aggregates;
    }
    predict_obs::registry()
        .counter("bsp.supersteps")
        .add(supersteps.len() as u64);

    let n = storage.num_vertices();
    let write_ms = clock.write_time_ms(n, num_workers);

    // Scatter shard values back into a dense vertex-indexed vector. Shard
    // slots ascend with vertex id, so walking one cursor per shard moves
    // every value without cloning it.
    let mut cursors: Vec<_> = shards.into_iter().map(|s| s.values.into_iter()).collect();
    let mut values: Vec<P::VertexValue> = Vec::with_capacity(n);
    for v in 0..n {
        values.push(
            cursors[layout.owner_of(v as VertexId)]
                .next()
                .expect("every vertex has a shard value"),
        );
    }

    let profile = RunProfile {
        algorithm: program.name().to_string(),
        num_vertices: n,
        num_edges: storage.num_edges(),
        num_workers,
        setup_ms,
        read_ms,
        write_ms,
        supersteps,
        measured: None,
    };
    BspRunResult {
        values,
        profile,
        halt_reason,
    }
}
