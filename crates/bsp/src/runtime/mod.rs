//! The parallel deterministic BSP runtime.
//!
//! This subsystem replaces the old sequential superstep loop inside
//! [`BspEngine::run`](crate::engine::BspEngine::run). It owns three things:
//!
//! * **sharded worker state** ([`WorkerShard`]) — per-worker vertex values,
//!   halt flags, inboxes and outbox buffers, laid out by a cached
//!   [`ShardLayout`]. Layouts depend only on `(num_vertices, num_workers,
//!   strategy)` (vertex assignment never inspects edges), so the engine's
//!   [`LayoutCache`] shares them across runs and across graphs of equal size
//!   instead of rebuilding a `Partitioning` scan per run;
//! * **a parallel executor** ([`execute`]) that fans each superstep's
//!   compute and delivery phases out over OS threads — onto the engine's
//!   persistent [`WorkerPool`] by default, or per-phase scoped threads under
//!   [`PoolMode::Off`](crate::config::PoolMode) — with per-worker outboxes
//!   routed by destination worker and merged in a fixed order;
//! * **a persistent worker pool** ([`WorkerPool`]) — long-lived threads with
//!   per-worker injector deques, work stealing and scoped task latches, so a
//!   warm service batch runs its supersteps with zero thread spawns (see
//!   [`pool`](self) module docs for lifecycle and barrier semantics);
//! * **buffer reuse** — inboxes, outboxes and the inbound transpose matrix
//!   are allocated once per run and cleared in place; counter and aggregate
//!   accumulators are reset, never reallocated.
//!
//! # Determinism contract
//!
//! A run's observable output — final vertex values, [`RunProfile`] (Table 1
//! counters, aggregates, simulated [`ClusterClock`] timings) and halt reason
//! — is **byte-identical for every [`ExecutionMode`], thread count and
//! [`PoolMode`](crate::config::PoolMode)**, given the same graph, program and
//! [`BspConfig`] seeds. Threads — pooled or scoped — only change wall-clock
//! time. This holds because every order-sensitive step is pinned:
//!
//! 1. within a shard, vertices compute in increasing vertex-id order (shard
//!    slots follow vertex-id order by construction);
//! 2. shards are disjoint: a worker's compute phase touches only its own
//!    values, halt flags, inboxes and outboxes, so phase fan-out cannot race;
//! 3. the master merges counters, float aggregate sums and `messages_sent`
//!    in ascending worker order between phases, on one thread;
//! 4. a vertex's inbox receives messages ordered by (source worker asc,
//!    source vertex asc, send order) — exactly the order the old sequential
//!    delivery produced;
//! 5. the simulated clock consumes its deterministic noise stream in a fixed
//!    call order (setup, read, per-superstep workers in ascending order,
//!    write) on the master thread;
//! 6. optional message combining ([`VertexProgram::combiner`]) folds each
//!    inbox left-to-right in delivery order, after delivery, so it is
//!    insensitive to phase scheduling too;
//! 7. the worker pool only changes *which OS thread* executes a chunk
//!    closure: chunk boundaries still come from the resolved thread count,
//!    chunks write disjoint state, and the scope latch joins all of them
//!    before the master proceeds — so pooled and scoped scheduling are
//!    observationally identical;
//! 8. the contract extends across the process boundary: the cluster
//!    transports (`predict_cluster`, selected by
//!    [`TransportMode`](crate::remote::TransportMode)) replay this exact
//!    loop with each shard behind a message channel or an OS pipe. Message
//!    batches are sequenced by (source worker, batch sequence number) and
//!    runs within a batch are stably grouped by destination vertex, so every
//!    inbox sees the order of point (4); the master merges `StepDone`
//!    replies in ascending worker order and drives the same clock call
//!    order, so values, [`RunProfile`] and halt reason stay byte-identical
//!    under in-memory, in-process-channel and spawned-process execution
//!    (pinned by the golden scenarios run under `PREDICT_TRANSPORT`).
//!
//! Property (2) is also why the runtime exists at all: PREDIcT executes
//! thousands of sample runs (see `PredictService::submit_batch`), and the
//! compute phase dominates them end to end.
//!
//! [`BspConfig`]: crate::config::BspConfig
//! [`ExecutionMode`]: crate::config::ExecutionMode
//! [`ClusterClock`]: crate::cost::ClusterClock
//! [`RunProfile`]: crate::profile::RunProfile
//! [`VertexProgram::combiner`]: crate::program::VertexProgram::combiner

mod executor;
mod layout;
mod pool;
mod shard;

pub use executor::{execute, execute_on, execute_pooled};
pub use layout::{LayoutCache, ShardLayout};
pub use pool::{process_threads_spawned, record_external_spawn, WorkerPool, DEFAULT_POOL_CAPACITY};
pub use shard::WorkerShard;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BspConfig, ExecutionMode};
    use crate::cost::ClusterCostConfig;
    use crate::program::{ComputeContext, InitContext, VertexProgram};
    use predict_graph::generators::{generate_rmat, RmatConfig};
    use predict_graph::VertexId;

    /// Flood-style program exercising messages, aggregates and halting.
    struct Ripple;

    impl VertexProgram for Ripple {
        type VertexValue = u64;
        type Message = u32;

        fn name(&self) -> &'static str {
            "ripple"
        }

        fn init_vertex(&self, v: VertexId, _ctx: &InitContext<'_>) -> u64 {
            v as u64
        }

        fn compute(&self, ctx: &mut ComputeContext<'_, u64, u32>, messages: &[u32]) {
            *ctx.value += messages.len() as u64;
            ctx.aggregate("touched", 1.0);
            if ctx.superstep < 3 {
                let v = ctx.vertex;
                ctx.send_to_all_neighbors(v);
            }
            ctx.vote_to_halt();
        }

        fn message_size_bytes(&self, _m: &u32) -> u64 {
            4
        }
    }

    #[test]
    fn thread_count_never_changes_the_run() {
        let graph = generate_rmat(&RmatConfig::new(9, 6).with_seed(11));
        let config = BspConfig::with_workers(7);
        let layout = ShardLayout::build(graph.num_vertices(), 7, config.partition_strategy);
        let baseline = execute(&Ripple, &graph, &layout, &config, 1);
        for threads in [2usize, 3, 7] {
            let run = execute(&Ripple, &graph, &layout, &config, threads);
            assert_eq!(baseline.values, run.values, "{threads} threads");
            assert_eq!(baseline.profile, run.profile, "{threads} threads");
            assert_eq!(baseline.halt_reason, run.halt_reason, "{threads} threads");
        }
    }

    #[test]
    fn execution_mode_resolution_is_plumbed_through_the_engine() {
        let graph = generate_rmat(&RmatConfig::new(8, 5).with_seed(3));
        let seq = crate::engine::BspEngine::new(
            BspConfig::with_workers(4)
                .with_cost(ClusterCostConfig::default())
                .with_execution(ExecutionMode::Sequential),
        );
        let par = crate::engine::BspEngine::new(
            BspConfig::with_workers(4)
                .with_cost(ClusterCostConfig::default())
                .with_execution(ExecutionMode::Parallel { threads: 4 }),
        );
        let a = seq.run(&graph, &Ripple);
        let b = par.run(&graph, &Ripple);
        assert_eq!(a.values, b.values);
        assert_eq!(a.profile, b.profile);
    }

    #[test]
    fn sharded_storage_is_byte_identical_to_unified() {
        let graph = generate_rmat(&RmatConfig::new(9, 6).with_seed(13));
        let engine = crate::engine::BspEngine::new(
            BspConfig::with_workers(5).with_cost(ClusterCostConfig::default()),
        );
        let unified = engine.run(&graph, &Ripple);
        let sharded_engine = engine.with_storage(crate::storage::StorageMode::Sharded);
        let sharded = sharded_engine.run(&graph, &Ripple);
        assert_eq!(unified.values, sharded.values);
        assert_eq!(unified.profile, sharded.profile);
        assert_eq!(unified.halt_reason, sharded.halt_reason);
        // Pre-built storage takes the same path.
        let storage = crate::storage::GraphStorage::shard_graph(
            &graph,
            5,
            engine.config().partition_strategy,
        );
        let prebuilt = engine.run_storage(&storage, &Ripple);
        assert_eq!(unified.values, prebuilt.values);
        assert_eq!(unified.profile, prebuilt.profile);
    }

    #[test]
    fn sharded_storage_is_thread_count_independent() {
        let graph = generate_rmat(&RmatConfig::new(9, 6).with_seed(17));
        let config = BspConfig::with_workers(6);
        let storage =
            crate::storage::GraphStorage::shard_graph(&graph, 6, config.partition_strategy);
        let layout = ShardLayout::build(graph.num_vertices(), 6, config.partition_strategy);
        let baseline = execute_on(&Ripple, storage.as_storage_ref(), &layout, &config, 1);
        for threads in [2usize, 4, 6] {
            let run = execute_on(&Ripple, storage.as_storage_ref(), &layout, &config, threads);
            assert_eq!(baseline.values, run.values, "{threads} threads");
            assert_eq!(baseline.profile, run.profile, "{threads} threads");
        }
    }

    #[test]
    #[should_panic(expected = "ownership does not match")]
    fn mismatched_partition_strategy_is_rejected() {
        use crate::partition::PartitionStrategy;
        let graph = generate_rmat(&RmatConfig::new(7, 4).with_seed(1));
        let engine = crate::engine::BspEngine::new(
            BspConfig::with_workers(4).with_partition_strategy(PartitionStrategy::Range),
        );
        // Same worker count, different strategy: shard sizes can coincide,
        // but ownership cannot — the engine must reject it even in release
        // builds instead of silently misrouting adjacency.
        let storage =
            crate::storage::GraphStorage::shard_graph(&graph, 4, PartitionStrategy::Modulo);
        let _ = engine.run_storage(&storage, &Ripple);
    }

    #[test]
    #[should_panic(expected = "sharded over")]
    fn mismatched_shard_count_is_rejected() {
        let graph = generate_rmat(&RmatConfig::new(7, 4).with_seed(1));
        let engine = crate::engine::BspEngine::new(BspConfig::with_workers(4));
        let storage = crate::storage::GraphStorage::shard_graph(
            &graph,
            3,
            engine.config().partition_strategy,
        );
        let _ = engine.run_storage(&storage, &Ripple);
    }

    #[test]
    fn pooled_execution_is_byte_identical_to_scoped_threads() {
        let graph = generate_rmat(&RmatConfig::new(9, 6).with_seed(19));
        let config = BspConfig::with_workers(6);
        let layout = ShardLayout::build(graph.num_vertices(), 6, config.partition_strategy);
        let scoped = execute_pooled(
            &Ripple,
            crate::storage::StorageRef::Unified(&graph),
            &layout,
            &config,
            4,
            None,
        );
        let pool = WorkerPool::new(4);
        for threads in [1usize, 2, 4] {
            let pooled = execute_pooled(
                &Ripple,
                crate::storage::StorageRef::Unified(&graph),
                &layout,
                &config,
                threads,
                Some(&pool),
            );
            assert_eq!(scoped.values, pooled.values, "{threads} pooled threads");
            assert_eq!(scoped.profile, pooled.profile, "{threads} pooled threads");
            assert_eq!(scoped.halt_reason, pooled.halt_reason);
        }
        // Repeated pooled runs reuse the warm workers instead of spawning.
        let warm = pool.threads_spawned();
        for _ in 0..3 {
            let _ = execute_pooled(
                &Ripple,
                crate::storage::StorageRef::Unified(&graph),
                &layout,
                &config,
                4,
                Some(&pool),
            );
        }
        assert_eq!(pool.threads_spawned(), warm, "warm runs must not spawn");
    }

    #[test]
    fn engine_reuses_cached_layouts_across_runs() {
        let graph = generate_rmat(&RmatConfig::new(8, 5).with_seed(3));
        let engine = crate::engine::BspEngine::new(BspConfig::with_workers(4));
        engine.run(&graph, &Ripple);
        engine.run(&graph, &Ripple);
        let clone = engine.clone();
        clone.run(&graph, &Ripple);
        let (hits, misses) = engine.layout_cache_stats();
        assert_eq!(misses, 1, "layout must be built exactly once");
        assert_eq!(hits, 2, "subsequent runs (and clones) must hit the cache");
    }
}
