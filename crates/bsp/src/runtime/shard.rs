//! Per-worker sharded state of one BSP run.
//!
//! A [`WorkerShard`] owns every piece of mutable per-vertex state of the
//! vertices assigned to one worker — values, halt flags, inboxes — plus the
//! worker's outbox buffers, counters and partial aggregates. Shards are
//! disjoint by construction, which is what lets the executor run compute and
//! delivery phases of different workers on different OS threads without
//! synchronization. All buffers are allocated once per run and reused across
//! supersteps (cleared, never dropped), replacing the per-superstep
//! allocations of the old sequential loop.
//!
//! The phase logic itself — compute and delivery — lives in
//! [`crate::worker`], which operates on shards.

use crate::aggregator::Aggregates;
use crate::counters::WorkerCounters;
use crate::program::{InitContext, VertexProgram};
use crate::runtime::layout::ShardLayout;
use crate::storage::WorkerGraph;
use predict_graph::VertexId;

/// All mutable state of one worker during a run, indexed by shard slot
/// (see [`ShardLayout::slot_of`]).
pub struct WorkerShard<P: VertexProgram> {
    /// Index of the worker this shard belongs to.
    pub worker: usize,
    /// Per-vertex values of the owned vertices.
    pub values: Vec<P::VertexValue>,
    /// Per-vertex halt flags of the owned vertices.
    pub halted: Vec<bool>,
    /// Per-vertex inboxes: messages delivered at the end of the previous
    /// superstep, consumed (and cleared in place, keeping capacity) by the
    /// compute phase.
    pub inboxes: Vec<Vec<P::Message>>,
    /// Compute-phase scratch: messages in production order before routing.
    /// Cleared (capacity kept) every superstep.
    pub outbox: Vec<(VertexId, P::Message)>,
    /// Routed outboxes, one per destination worker, in production order.
    /// Swapped with the executor's inbound matrix between phases; capacity
    /// circulates across supersteps instead of being reallocated.
    pub routed: Vec<Vec<(VertexId, P::Message)>>,
    /// Table 1 counters of the current superstep (reset in place).
    pub counters: WorkerCounters,
    /// Partial aggregates of the current superstep (cleared in place).
    pub partial_aggregates: Aggregates,
}

impl<P: VertexProgram> WorkerShard<P> {
    /// Creates the shard of worker `worker` with every buffer allocated but
    /// no vertex values yet; [`WorkerShard::init_values`] fills them (the
    /// executor fans value initialization out like any other phase).
    pub fn init_empty(worker: usize, layout: &ShardLayout) -> Self {
        let vertices = layout.shard_vertices(worker);
        Self {
            worker,
            values: Vec::with_capacity(vertices.len()),
            halted: vec![false; vertices.len()],
            inboxes: (0..vertices.len()).map(|_| Vec::new()).collect(),
            outbox: Vec::new(),
            routed: (0..layout.num_workers()).map(|_| Vec::new()).collect(),
            counters: WorkerCounters::new(vertices.len() as u64),
            partial_aggregates: Aggregates::new(),
        }
    }

    /// Initializes every owned vertex's value via
    /// [`VertexProgram::init_vertex`], in increasing vertex-id order. The
    /// `graph` view resolves adjacency from the unified CSR or from this
    /// worker's own [`ShardedCsr`](predict_graph::ShardedCsr) slice.
    pub fn init_values(&mut self, program: &P, graph: WorkerGraph<'_>, layout: &ShardLayout) {
        self.values.clear();
        self.values
            .extend(
                layout
                    .shard_vertices(self.worker)
                    .iter()
                    .enumerate()
                    .map(|(slot, &v)| {
                        let ctx = InitContext {
                            num_vertices: graph.num_vertices(),
                            num_edges: graph.num_edges(),
                            out_neighbors: graph.out_neighbors(slot, v),
                            out_weights: graph.out_weights(slot, v),
                        };
                        program.init_vertex(v, &ctx)
                    }),
            );
    }

    /// Creates the fully-initialized shard of worker `worker`.
    pub fn init(program: &P, graph: WorkerGraph<'_>, layout: &ShardLayout, worker: usize) -> Self {
        let mut shard = Self::init_empty(worker, layout);
        shard.init_values(program, graph, layout);
        shard
    }

    /// True when every owned vertex has voted to halt.
    pub fn all_halted(&self) -> bool {
        self.halted.iter().all(|&h| h)
    }
}
