//! Cached shard layouts: the topology-independent half of a partitioning.
//!
//! Vertex-to-worker assignment is a pure function of `(num_vertices,
//! num_workers, strategy)` — it never inspects edges (see
//! [`crate::partition::assign_vertex`]). A [`ShardLayout`] therefore captures
//! everything the runtime needs to shard per-vertex state — owner and
//! shard-slot of every vertex plus the sorted vertex list of every shard —
//! and can be cached and shared between runs, graphs of equal size, and
//! engine clones. This replaces the per-run `Partitioning` scan the
//! sequential engine used to redo on every invocation.

use crate::partition::{assign_vertex, PartitionStrategy};
use predict_graph::VertexId;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Per-worker decomposition of the vertex id space.
///
/// For every vertex `v` the layout knows its owning worker
/// ([`ShardLayout::owner_of`]) and its dense index within that worker's shard
/// ([`ShardLayout::slot_of`]); for every worker it knows the owned vertices in
/// increasing id order ([`ShardLayout::shard_vertices`]). Shard-local slots
/// follow vertex id order, which is what keeps sharded execution
/// byte-identical to the old single-vector engine.
#[derive(Debug)]
pub struct ShardLayout {
    num_vertices: usize,
    num_workers: usize,
    strategy: PartitionStrategy,
    /// Vertex -> owning worker.
    owner: Vec<u32>,
    /// Vertex -> dense index within its owner's shard.
    slot: Vec<u32>,
    /// Worker -> owned vertices, ascending.
    shards: Vec<Vec<VertexId>>,
}

impl ShardLayout {
    /// Builds the layout for `num_vertices` vertices over `num_workers`
    /// workers.
    ///
    /// # Panics
    ///
    /// Panics if `num_workers == 0`.
    pub fn build(num_vertices: usize, num_workers: usize, strategy: PartitionStrategy) -> Self {
        assert!(num_workers > 0, "at least one worker is required");
        let mut owner = vec![0u32; num_vertices];
        let mut slot = vec![0u32; num_vertices];
        let mut shards: Vec<Vec<VertexId>> = vec![Vec::new(); num_workers];
        for v in 0..num_vertices {
            let w = assign_vertex(v, num_vertices, num_workers, strategy);
            owner[v] = w;
            let shard = &mut shards[w as usize];
            slot[v] = shard.len() as u32;
            shard.push(v as VertexId);
        }
        Self {
            num_vertices,
            num_workers,
            strategy,
            owner,
            slot,
            shards,
        }
    }

    /// Number of vertices the layout covers.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of workers the layout shards over.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// The strategy the layout was built with.
    pub fn strategy(&self) -> PartitionStrategy {
        self.strategy
    }

    /// Worker that owns vertex `v`.
    #[inline]
    pub fn owner_of(&self, v: VertexId) -> usize {
        self.owner[v as usize] as usize
    }

    /// Dense index of vertex `v` within its owner's shard.
    #[inline]
    pub fn slot_of(&self, v: VertexId) -> usize {
        self.slot[v as usize] as usize
    }

    /// Vertices owned by worker `w`, in increasing id order.
    pub fn shard_vertices(&self, w: usize) -> &[VertexId] {
        &self.shards[w]
    }
}

/// Key of one cached layout.
type LayoutKey = (usize, usize, PartitionStrategy);

/// Bound on cached layouts per engine; beyond it the least-recently-used
/// entry is evicted (layouts are cheap to rebuild — the bound only caps
/// memory for engines fed many distinct graph sizes).
const LAYOUT_CACHE_CAP: usize = 32;

/// A small LRU-bounded cache of [`ShardLayout`]s, shared between clones of
/// one engine (the engine holds it behind an [`Arc`], like its run counter).
/// Hits refresh an entry's position, so a layout in steady use — the sample
/// graphs a prediction service replays constantly — survives a flood of
/// one-off sizes past the cap (FIFO, the original policy, evicted exactly
/// the hottest entries first under that mix).
#[derive(Debug, Default)]
pub struct LayoutCache {
    inner: Mutex<LayoutCacheInner>,
}

#[derive(Debug, Default)]
struct LayoutCacheInner {
    map: HashMap<LayoutKey, Arc<ShardLayout>>,
    order: VecDeque<LayoutKey>,
    hits: u64,
    misses: u64,
}

impl LayoutCache {
    /// Returns the cached layout for the key, building and inserting it on a
    /// miss.
    pub fn get_or_build(
        &self,
        num_vertices: usize,
        num_workers: usize,
        strategy: PartitionStrategy,
    ) -> Arc<ShardLayout> {
        let key = (num_vertices, num_workers, strategy);
        let mut inner = self.inner.lock().unwrap();
        if let Some(hit) = inner.map.get(&key).map(Arc::clone) {
            inner.hits += 1;
            // LRU touch: move the key to the back of the eviction order.
            if let Some(pos) = inner.order.iter().position(|k| *k == key) {
                inner.order.remove(pos);
                inner.order.push_back(key);
            }
            return hit;
        }
        inner.misses += 1;
        let layout = Arc::new(ShardLayout::build(num_vertices, num_workers, strategy));
        while inner.order.len() >= LAYOUT_CACHE_CAP {
            if let Some(oldest) = inner.order.pop_front() {
                inner.map.remove(&oldest);
            }
        }
        inner.order.push_back(key);
        inner.map.insert(key, Arc::clone(&layout));
        layout
    }

    /// `(hits, misses)` of the cache since construction. Tests use this to
    /// assert that repeated runs stop rebuilding shard layouts.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock().unwrap();
        (inner.hits, inner.misses)
    }

    /// Number of layouts currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Partitioning;
    use predict_graph::generators::{generate_rmat, RmatConfig};

    #[test]
    fn layout_matches_partitioning_assignment() {
        let g = generate_rmat(&RmatConfig::new(8, 4).with_seed(1));
        for strategy in [
            PartitionStrategy::Hash,
            PartitionStrategy::Range,
            PartitionStrategy::Modulo,
        ] {
            let p = Partitioning::new(&g, 5, strategy);
            let l = ShardLayout::build(g.num_vertices(), 5, strategy);
            for v in g.vertices() {
                assert_eq!(l.owner_of(v), p.worker_of(v), "vertex {v}");
            }
        }
    }

    #[test]
    fn slots_are_dense_and_ordered_within_each_shard() {
        let l = ShardLayout::build(100, 4, PartitionStrategy::Hash);
        let mut seen = 0;
        for w in 0..4 {
            let vs = l.shard_vertices(w);
            assert!(vs.windows(2).all(|p| p[0] < p[1]), "shard not sorted");
            for (i, &v) in vs.iter().enumerate() {
                assert_eq!(l.owner_of(v), w);
                assert_eq!(l.slot_of(v), i);
            }
            seen += vs.len();
        }
        assert_eq!(seen, 100);
    }

    #[test]
    fn cache_hits_on_repeated_keys_and_evicts_least_recently_used() {
        let cache = LayoutCache::default();
        let a = cache.get_or_build(10, 2, PartitionStrategy::Hash);
        let b = cache.get_or_build(10, 2, PartitionStrategy::Hash);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), (1, 1));
        // Distinct keys are distinct entries.
        cache.get_or_build(10, 3, PartitionStrategy::Hash);
        cache.get_or_build(10, 2, PartitionStrategy::Modulo);
        assert_eq!(cache.len(), 3);
        // Flood past the cap with one-off keys, never touching the first
        // three again: they are now the least recently used and get evicted.
        for n in 0..LAYOUT_CACHE_CAP {
            cache.get_or_build(1000 + n, 2, PartitionStrategy::Hash);
        }
        assert_eq!(cache.len(), LAYOUT_CACHE_CAP);
        let (_, misses_before) = cache.stats();
        cache.get_or_build(10, 2, PartitionStrategy::Hash);
        let (_, misses_after) = cache.stats();
        assert_eq!(misses_after, misses_before + 1, "evicted key must rebuild");
    }

    #[test]
    fn a_repeatedly_used_layout_survives_inserts_past_the_cap() {
        // The prediction-service access pattern: one hot sample-graph layout
        // interleaved with a stream of one-off sizes. Under the old FIFO
        // policy the hot key aged out purely by insertion time; under LRU
        // every touch refreshes it.
        let cache = LayoutCache::default();
        let hot = (10usize, 2usize, PartitionStrategy::Hash);
        let first = cache.get_or_build(hot.0, hot.1, hot.2);
        for n in 0..(3 * LAYOUT_CACHE_CAP) {
            cache.get_or_build(1000 + n, 2, PartitionStrategy::Hash);
            let again = cache.get_or_build(hot.0, hot.1, hot.2);
            assert!(
                Arc::ptr_eq(&first, &again),
                "hot layout must never be evicted (insert {n})"
            );
        }
        let (_, misses) = cache.stats();
        assert_eq!(
            misses as usize,
            1 + 3 * LAYOUT_CACHE_CAP,
            "the hot layout must have been built exactly once"
        );
    }

    #[test]
    fn empty_layout_is_valid() {
        let l = ShardLayout::build(0, 3, PartitionStrategy::Range);
        assert_eq!(l.num_vertices(), 0);
        for w in 0..3 {
            assert!(l.shard_vertices(w).is_empty());
        }
    }
}
