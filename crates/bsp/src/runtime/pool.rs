//! Persistent work-stealing worker pool shared by the superstep executor
//! and the prediction service.
//!
//! Before this module existed the runtime paid an OS thread spawn for every
//! parallel superstep *phase* (`std::thread::scope` in the executor) and for
//! every service *batch* (`std::thread::scope` in
//! `PredictService::submit_batch`). On small PREDIcT sample graphs that spawn
//! cost dominated the work itself — the PR 3 benches measured a sequential
//! run at 10.4 ms against a "parallel" run at 16.0 ms. The [`WorkerPool`]
//! keeps a fixed set of long-lived threads instead; a warm pool schedules a
//! whole request batch, supersteps and all, with **zero** thread spawns
//! (asserted by counter-based tests, since wall-clock is meaningless on a
//! 1-core CI container).
//!
//! # Design
//!
//! - **Per-worker injector deques.** Each worker slot owns a
//!   `Mutex<VecDeque<Task>>`. Producers inject round-robin across the live
//!   slots; a worker pops its own deque from the front and steals from other
//!   deques at the back, so batches fan out even when one deque backs up.
//! - **Epoch-style scope latches.** [`WorkerPool::run_scoped`] groups tasks
//!   under a [`ScopeState`] latch (a pending-count plus a first-panic slot).
//!   The call returns only after the latch reaches zero, which is what makes
//!   the lifetime-erasing `transmute` below sound: borrowed closures never
//!   outlive the call that submitted them.
//! - **Caller participation.** The submitting thread does not park-and-wait:
//!   it drains tasks (its own scope's or any other in-flight scope's) until
//!   its latch opens. Nested scopes — a service request task that itself runs
//!   pooled superstep phases — therefore cannot deadlock even on a pool with
//!   a single live worker, because every waiter is also an executor.
//! - **Lazy spawning, counted.** Threads spawn on first demand up to the slot
//!   count, never per task. Every spawn increments both a per-pool counter
//!   ([`WorkerPool::threads_spawned`]) and a process-global one
//!   ([`process_threads_spawned`]); the legacy scoped-thread fallbacks report
//!   to the global counter too via [`record_external_spawn`], so a test can
//!   assert a warm path spawned nothing anywhere.
//! - **Panic isolation.** Each task runs under `catch_unwind`; the first
//!   payload is stashed in the scope latch and re-thrown to the *submitting*
//!   thread after the scope completes, mirroring `std::thread::scope`
//!   semantics without poisoning the pool. Pool-internal locks recover from
//!   poison (`unwrap_or_else(|e| e.into_inner())`) so a panicked task cannot
//!   wedge later scopes.
//!
//! Determinism is unaffected: the pool only changes *which OS thread* runs a
//! chunk closure, never how work is partitioned or merged. Chunk boundaries
//! are still derived from the resolved thread count, each chunk writes
//! disjoint state, and the executor's master thread still merges in
//! ascending worker order (see the determinism contract in
//! [`crate::runtime`]).

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Default number of worker slots (upper bound on pool threads). Generous
/// relative to `BspConfig::paper_cluster()`'s 29 workers; empty slots cost
/// one idle mutex-wrapped deque each.
pub const DEFAULT_POOL_CAPACITY: usize = 32;

/// Sleeping workers re-check for work at least this often, as a lost-wakeup
/// belt-and-braces; correctness never depends on the timeout firing.
const PARK_TIMEOUT: Duration = Duration::from_millis(50);

/// Process-wide count of OS threads spawned by the parallel runtime — pool
/// workers plus every legacy scoped-thread fallback that reports through
/// [`record_external_spawn`]. Counter-based perf tests assert this stays
/// flat across warm batches.
static PROCESS_SPAWNS: AtomicU64 = AtomicU64::new(0);

/// Total OS threads the parallel runtime has spawned in this process.
pub fn process_threads_spawned() -> u64 {
    PROCESS_SPAWNS.load(Ordering::SeqCst)
}

/// Reports one OS-thread spawn performed outside the pool (the scoped-thread
/// fallback paths), so [`process_threads_spawned`] covers every spawn site.
pub fn record_external_spawn() {
    PROCESS_SPAWNS.fetch_add(1, Ordering::SeqCst);
}

/// Acquires a mutex, recovering the guard if a previous holder panicked.
/// Pool state is kept consistent by atomics, not by guard scopes, so a
/// poisoned lock carries no torn invariants worth propagating.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

type TaskFn = Box<dyn FnOnce() + Send + 'static>;

/// One unit of scheduled work plus the scope latch it reports to.
struct Task {
    run: TaskFn,
    scope: Arc<ScopeState>,
}

/// Completion latch for one `run_scoped` call.
struct ScopeState {
    /// Tasks submitted and not yet finished; the scope is open while > 0.
    pending: AtomicUsize,
    /// First panic payload raised by any task in this scope; re-thrown on
    /// the submitting thread once the scope closes.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl ScopeState {
    fn new(tasks: usize) -> Arc<Self> {
        Arc::new(Self {
            pending: AtomicUsize::new(tasks),
            panic: Mutex::new(None),
        })
    }

    fn done(&self) -> bool {
        self.pending.load(Ordering::Acquire) == 0
    }
}

/// State shared between the pool handle and its worker threads.
struct PoolState {
    /// Fixed worker slots; `live` of them have a running thread.
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Monitor for parking idle workers and scope waiters. Pushers notify
    /// while holding it, waiters re-check their predicate under it, so
    /// wakeups cannot be lost.
    idle: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
    /// Number of spawned worker threads (prefix of `deques`).
    live: AtomicUsize,
    /// Round-robin injection cursor.
    next_inject: AtomicUsize,
    /// Threads this pool has spawned over its lifetime.
    spawned: AtomicU64,
}

impl PoolState {
    fn inject(&self, task: Task) {
        let live = self
            .live
            .load(Ordering::Acquire)
            .clamp(1, self.deques.len());
        let slot = self.next_inject.fetch_add(1, Ordering::Relaxed) % live;
        lock(&self.deques[slot]).push_back(task);
        self.notify();
    }

    /// Wakes parked workers/waiters. Taking the monitor first pairs with the
    /// waiters' re-check-then-wait under the same lock.
    fn notify(&self) {
        let _monitor = lock(&self.idle);
        self.wake.notify_all();
    }

    /// Pops local work first (FIFO from `me`), then steals (LIFO from the
    /// others). `me` is `None` for scope waiters, which only steal.
    fn try_pop(&self, me: Option<usize>) -> Option<Task> {
        if let Some(i) = me {
            if let Some(task) = lock(&self.deques[i]).pop_front() {
                return Some(task);
            }
        }
        let n = self.deques.len();
        let start = me.map_or(0, |i| i + 1);
        for k in 0..n {
            let j = (start + k) % n;
            if Some(j) == me {
                continue;
            }
            if let Some(task) = lock(&self.deques[j]).pop_back() {
                return Some(task);
            }
        }
        None
    }

    fn has_work(&self) -> bool {
        self.deques.iter().any(|d| !lock(d).is_empty())
    }

    /// Runs one task, catching its panic into the scope latch, then closes
    /// its slot in the latch (notifying if that completed the scope).
    fn run_task(&self, task: Task) {
        // The counter handle is cached process-wide: this is the pool's
        // hottest path and must not take the registry lock per task.
        static TASKS: std::sync::OnceLock<std::sync::Arc<predict_obs::metrics::Counter>> =
            std::sync::OnceLock::new();
        TASKS
            .get_or_init(|| predict_obs::registry().counter("pool.tasks"))
            .incr();
        let _task_span = predict_obs::trace::span("pool.task");
        let Task { run, scope } = task;
        if let Err(payload) = catch_unwind(AssertUnwindSafe(run)) {
            let mut slot = lock(&scope.panic);
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        if scope.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.notify();
        }
    }

    /// Executes tasks until `scope` completes. Run by the submitting thread,
    /// which makes nested scopes deadlock-free: a waiter is also a worker.
    fn help_until(&self, scope: &ScopeState) {
        loop {
            if scope.done() {
                return;
            }
            if let Some(task) = self.try_pop(None) {
                self.run_task(task);
                continue;
            }
            let monitor = lock(&self.idle);
            if scope.done() || self.has_work() {
                continue;
            }
            let _ = self.wake.wait_timeout(monitor, PARK_TIMEOUT);
        }
    }
}

fn worker_loop(state: Arc<PoolState>, me: usize) {
    loop {
        if state.shutdown.load(Ordering::Acquire) {
            return;
        }
        if let Some(task) = state.try_pop(Some(me)) {
            state.run_task(task);
            continue;
        }
        let monitor = lock(&state.idle);
        if state.shutdown.load(Ordering::Acquire) {
            return;
        }
        if state.has_work() {
            continue;
        }
        let _ = state.wake.wait_timeout(monitor, PARK_TIMEOUT);
    }
}

/// A persistent pool of worker threads with per-worker injector deques,
/// work stealing, and scoped task latches. See the module docs for the
/// full design rationale.
pub struct WorkerPool {
    state: Arc<PoolState>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    capacity: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("capacity", &self.capacity)
            .field("live", &self.live_threads())
            .field("spawned", &self.threads_spawned())
            .finish()
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::new(DEFAULT_POOL_CAPACITY)
    }
}

impl WorkerPool {
    /// Creates an empty pool with `capacity` worker slots. No threads are
    /// spawned until the first scope that wants parallelism.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.clamp(1, 256);
        let state = Arc::new(PoolState {
            deques: (0..capacity).map(|_| Mutex::new(VecDeque::new())).collect(),
            idle: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            live: AtomicUsize::new(0),
            next_inject: AtomicUsize::new(0),
            spawned: AtomicU64::new(0),
        });
        Self {
            state,
            handles: Mutex::new(Vec::new()),
            capacity,
        }
    }

    /// Worker slots (upper bound on pool threads).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently running worker threads.
    pub fn live_threads(&self) -> usize {
        self.state.live.load(Ordering::Acquire)
    }

    /// OS threads this pool has spawned over its lifetime. Flat across warm
    /// scopes — the basis of the zero-spawn warm-batch assertion.
    pub fn threads_spawned(&self) -> u64 {
        self.state.spawned.load(Ordering::SeqCst)
    }

    /// Spawns workers until `target` are live (capped at capacity). A failed
    /// spawn degrades gracefully: the submitting thread still executes every
    /// task itself via [`PoolState::help_until`].
    fn ensure_workers(&self, target: usize) {
        let target = target.min(self.capacity);
        if self.state.live.load(Ordering::Acquire) >= target {
            return;
        }
        let mut handles = lock(&self.handles);
        while self.state.live.load(Ordering::Acquire) < target {
            let me = self.state.live.load(Ordering::Acquire);
            let state = Arc::clone(&self.state);
            let spawned = std::thread::Builder::new()
                .name(format!("predict-pool-{me}"))
                .spawn(move || worker_loop(state, me));
            match spawned {
                Ok(handle) => {
                    self.state.spawned.fetch_add(1, Ordering::SeqCst);
                    PROCESS_SPAWNS.fetch_add(1, Ordering::SeqCst);
                    handles.push(handle);
                    self.state.live.fetch_add(1, Ordering::Release);
                }
                Err(_) => break,
            }
        }
    }

    /// Runs `tasks` to completion with up to `threads`-way parallelism and
    /// returns once all have finished. With `threads <= 1` or a single task,
    /// everything runs inline on the caller — no pool interaction, no
    /// spawns, identical to the sequential paths elsewhere in the runtime.
    ///
    /// The first panicking task's payload is re-thrown here after the whole
    /// scope completes; the pool itself survives.
    pub fn run_scoped<'scope>(
        &self,
        threads: usize,
        tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>,
    ) {
        if tasks.len() <= 1 || threads <= 1 {
            for task in tasks {
                task();
            }
            return;
        }
        // The caller participates, so `threads - 1` pool workers suffice.
        self.ensure_workers(threads - 1);
        let scope = ScopeState::new(tasks.len());
        for task in tasks {
            // SAFETY: `help_until` below blocks until `scope.pending` hits
            // zero, i.e. until every task has run (or panicked) — tasks
            // cannot outlive `'scope`, so erasing the lifetime to `'static`
            // for storage in the deques is sound. Same argument as
            // `std::thread::scope`, with the latch standing in for join.
            let run: TaskFn =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, TaskFn>(task) };
            self.state.inject(Task {
                run,
                scope: Arc::clone(&scope),
            });
        }
        self.state.help_until(&scope);
        let payload = lock(&scope.panic).take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // No scope can be in flight here (`run_scoped` borrows the pool),
        // so the deques are empty and workers exit at the shutdown check.
        self.state.shutdown.store(true, Ordering::Release);
        self.state.notify();
        let handles = std::mem::take(&mut *lock(&self.handles));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn boxed<'a>(f: impl FnOnce() + Send + 'a) -> Box<dyn FnOnce() + Send + 'a> {
        Box::new(f)
    }

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = WorkerPool::new(4);
        let counter = AtomicUsize::new(0);
        let tasks = (0..64)
            .map(|_| {
                boxed(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        pool.run_scoped(4, tasks);
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn borrowed_results_are_visible_after_the_scope() {
        let pool = WorkerPool::new(4);
        let mut results = [0usize; 16];
        let tasks = results
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| boxed(move || *slot = i * i))
            .collect();
        pool.run_scoped(3, tasks);
        for (i, value) in results.iter().enumerate() {
            assert_eq!(*value, i * i);
        }
    }

    #[test]
    fn sequential_scopes_never_spawn() {
        let pool = WorkerPool::new(4);
        let counter = AtomicUsize::new(0);
        let tasks = (0..8)
            .map(|_| {
                boxed(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        pool.run_scoped(1, tasks);
        assert_eq!(counter.load(Ordering::SeqCst), 8);
        assert_eq!(pool.threads_spawned(), 0);
        assert_eq!(pool.live_threads(), 0);
    }

    #[test]
    fn warm_scopes_spawn_zero_new_threads() {
        let pool = WorkerPool::new(4);
        let run_batch = || {
            let counter = AtomicUsize::new(0);
            let tasks = (0..32)
                .map(|_| {
                    boxed(|| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            pool.run_scoped(3, tasks);
            counter.load(Ordering::SeqCst)
        };
        assert_eq!(run_batch(), 32);
        let after_warmup = pool.threads_spawned();
        assert!(
            after_warmup <= 2,
            "caller participates, so at most threads-1 spawns"
        );
        for _ in 0..10 {
            assert_eq!(run_batch(), 32);
        }
        assert_eq!(
            pool.threads_spawned(),
            after_warmup,
            "warm scopes must not spawn"
        );
    }

    #[test]
    fn nested_scopes_complete_even_with_one_worker() {
        let pool = WorkerPool::new(1);
        let counter = AtomicUsize::new(0);
        let pool_ref = &pool;
        let counter_ref = &counter;
        let outer = (0..4)
            .map(|_| {
                boxed(move || {
                    let inner = (0..4)
                        .map(|_| {
                            boxed(move || {
                                counter_ref.fetch_add(1, Ordering::SeqCst);
                            })
                        })
                        .collect();
                    pool_ref.run_scoped(2, inner);
                })
            })
            .collect();
        pool.run_scoped(2, outer);
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn a_panicking_task_reaches_the_caller_and_the_pool_survives() {
        let pool = WorkerPool::new(2);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![
            boxed(|| {}),
            boxed(|| panic!("task exploded")),
            boxed(|| {}),
        ];
        let caught = catch_unwind(AssertUnwindSafe(|| pool.run_scoped(2, tasks)));
        let payload = caught.expect_err("the scope should re-throw the task panic");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .expect("panic payload should be the original message");
        assert_eq!(message, "task exploded");

        // The pool keeps serving after the panic.
        let counter = AtomicUsize::new(0);
        let tasks = (0..8)
            .map(|_| {
                boxed(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        pool.run_scoped(2, tasks);
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn capacity_caps_spawned_threads() {
        let pool = WorkerPool::new(2);
        let tasks = (0..64).map(|_| boxed(|| {})).collect();
        pool.run_scoped(16, tasks);
        assert!(pool.live_threads() <= 2);
        assert!(pool.threads_spawned() <= 2);
    }
}
