//! The BSP engine: the public facade over the parallel runtime.
//!
//! [`BspEngine::run`] executes a [`VertexProgram`] on a graph the way Giraph
//! does (section 2.2 of the paper): the master shards the graph over workers,
//! then repeats supersteps — compute phase on every worker, message delivery,
//! barrier — until a termination condition holds. Every superstep is profiled
//! with the per-worker Table 1 counters and timed with the simulated cluster
//! clock, producing the [`RunProfile`] PREDIcT trains and predicts on.
//!
//! The loop itself lives in [`crate::runtime`]: the engine resolves its
//! [`ExecutionMode`](crate::config::ExecutionMode) to a thread count, fetches
//! the cached [`ShardLayout`](crate::runtime::ShardLayout) for
//! `(num_vertices, num_workers, strategy)` and hands both to
//! [`execute`](crate::runtime::execute). Results are byte-identical for every
//! execution mode.

use crate::config::BspConfig;
use crate::profile::RunProfile;
use crate::program::VertexProgram;
use crate::runtime::{self, LayoutCache, WorkerPool};
use crate::storage::{GraphStorage, StorageRef};
use predict_graph::CsrGraph;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Why a BSP run terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HaltReason {
    /// The program's global convergence condition
    /// ([`VertexProgram::master_halt`]) was satisfied.
    MasterConverged,
    /// Every vertex voted to halt and no messages were in flight.
    AllVerticesHalted,
    /// The configured superstep cap was reached before convergence.
    MaxSupersteps,
}

/// Result of executing a vertex program.
#[derive(Debug, Clone)]
pub struct BspRunResult<V> {
    /// Final per-vertex values, indexed by vertex id.
    pub values: Vec<V>,
    /// Full profile of the run (phase times, per-superstep counters and
    /// simulated timings).
    pub profile: RunProfile,
    /// Why the run stopped.
    pub halt_reason: HaltReason,
}

impl<V> BspRunResult<V> {
    /// Number of supersteps the run executed.
    pub fn num_iterations(&self) -> usize {
        self.profile.num_iterations()
    }
}

/// A Giraph-like BSP execution engine with a simulated cluster clock.
///
/// The engine keeps a cumulative count of executed runs, a cache of shard
/// layouts and a persistent [`WorkerPool`] behind [`Arc`]s, so clones share
/// all three. The prediction layer relies on the run counter to measure how
/// many engine invocations a cached prediction session actually performed
/// (its amortization guarantee); the layout cache means repeated runs over
/// same-sized graphs skip the per-run partitioning scan entirely; the shared
/// pool means warm parallel runs — and whole service batches scheduled onto
/// it — spawn zero OS threads.
#[derive(Debug, Clone, Default)]
pub struct BspEngine {
    config: BspConfig,
    /// Number of [`BspEngine::run`] invocations, shared across clones.
    runs: Arc<AtomicU64>,
    /// Shard layouts keyed by `(num_vertices, num_workers, strategy)`,
    /// shared across clones.
    layouts: Arc<LayoutCache>,
    /// Persistent worker pool for parallel phases, shared across clones.
    pool: Arc<WorkerPool>,
}

impl BspEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: BspConfig) -> Self {
        Self {
            config,
            runs: Arc::new(AtomicU64::new(0)),
            layouts: Arc::new(LayoutCache::default()),
            pool: Arc::new(WorkerPool::default()),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &BspConfig {
        &self.config
    }

    /// A clone of this engine with a different execution mode, sharing the
    /// run counter and layout cache. This is how the prediction layer plumbs
    /// an execution override down without re-keying any cache.
    pub fn with_execution(&self, execution: crate::config::ExecutionMode) -> Self {
        Self {
            config: BspConfig {
                execution,
                ..self.config.clone()
            },
            runs: Arc::clone(&self.runs),
            layouts: Arc::clone(&self.layouts),
            pool: Arc::clone(&self.pool),
        }
    }

    /// A clone of this engine with a different graph storage mode, sharing
    /// the run counter and layout cache — the storage counterpart of
    /// [`BspEngine::with_execution`].
    pub fn with_storage(&self, storage: crate::storage::StorageMode) -> Self {
        Self {
            config: BspConfig {
                storage,
                ..self.config.clone()
            },
            runs: Arc::clone(&self.runs),
            layouts: Arc::clone(&self.layouts),
            pool: Arc::clone(&self.pool),
        }
    }

    /// A clone of this engine with a different worker-pool mode, sharing the
    /// run counter, layout cache and pool — the pool counterpart of
    /// [`BspEngine::with_execution`].
    pub fn with_pool(&self, pool_mode: crate::config::PoolMode) -> Self {
        Self {
            config: BspConfig {
                pool: pool_mode,
                ..self.config.clone()
            },
            runs: Arc::clone(&self.runs),
            layouts: Arc::clone(&self.layouts),
            pool: Arc::clone(&self.pool),
        }
    }

    /// A clone of this engine with a different transport mode, sharing the
    /// run counter, layout cache and pool — the transport counterpart of
    /// [`BspEngine::with_execution`]. The engine itself never reads the
    /// transport knob (its own runs are always in-memory); the cluster
    /// runner (`predict_cluster`) resolves it to decide whether a workload
    /// executes in-process or over spawned worker processes.
    pub fn with_transport(&self, transport: crate::remote::TransportMode) -> Self {
        Self {
            config: BspConfig {
                transport,
                ..self.config.clone()
            },
            runs: Arc::clone(&self.runs),
            layouts: Arc::clone(&self.layouts),
            pool: Arc::clone(&self.pool),
        }
    }

    /// Counts one engine run that was executed outside [`BspEngine::run`] —
    /// the cluster runner drives supersteps through its own transport but
    /// still reports each drive here, so
    /// [`runs_executed`](BspEngine::runs_executed) keeps its meaning (and the
    /// prediction layer's cache-amortization accounting stays comparable)
    /// across transports.
    pub fn record_external_run(&self) {
        self.runs.fetch_add(1, Ordering::Relaxed);
    }

    /// The engine's persistent worker pool when [`BspConfig::pool`] resolves
    /// to enabled, `None` under [`PoolMode::Off`](crate::config::PoolMode).
    /// The prediction service schedules whole request batches onto this same
    /// pool, so request stages and superstep phases interleave on one set of
    /// warm threads.
    pub fn worker_pool(&self) -> Option<&Arc<WorkerPool>> {
        self.config.pool.resolve_enabled().then_some(&self.pool)
    }

    /// OS threads the engine's pool has spawned over its lifetime (flat
    /// across warm runs — the basis of the zero-spawn warm-batch tests).
    pub fn pool_threads_spawned(&self) -> u64 {
        self.pool.threads_spawned()
    }

    /// Total number of runs this engine (and every clone sharing its counter)
    /// has executed. Used by tests and benchmarks to assert how many engine
    /// invocations a prediction-session cache saved.
    pub fn runs_executed(&self) -> u64 {
        self.runs.load(Ordering::Relaxed)
    }

    /// `(hits, misses)` of the shared shard-layout cache.
    pub fn layout_cache_stats(&self) -> (u64, u64) {
        self.layouts.stats()
    }

    /// Executes `program` on `graph` until convergence, full halt or the
    /// superstep cap, and returns the per-vertex values together with the run
    /// profile.
    ///
    /// The graph is stored according to [`BspConfig::storage`]: under
    /// [`StorageMode::Sharded`](crate::storage::StorageMode::Sharded) (or
    /// `Auto` with `PREDICT_STORAGE=sharded`) the engine first splits `graph`
    /// into one [`ShardedCsr`](predict_graph::ShardedCsr) per worker and runs
    /// against the shards — byte-identical results, per-worker memory shape
    /// (see [`crate::storage`]). Callers that execute many runs over one
    /// graph should pre-build a [`GraphStorage`] and use
    /// [`BspEngine::run_storage`] to pay the shard construction once.
    ///
    /// This is a thin facade over [`runtime::execute_on`]; see
    /// [`crate::runtime`] for the execution model and its determinism
    /// contract.
    pub fn run<P: VertexProgram>(
        &self,
        graph: &CsrGraph,
        program: &P,
    ) -> BspRunResult<P::VertexValue> {
        if self.config.storage.resolve_sharded() {
            let storage = GraphStorage::shard_graph(
                graph,
                self.config.num_workers.max(1),
                self.config.partition_strategy,
            );
            return self.run_storage(&storage, program);
        }
        self.run_on(StorageRef::Unified(graph), program)
    }

    /// Executes `program` against pre-built [`GraphStorage`] — the unified
    /// CSR or one shard per worker.
    ///
    /// Sharded storage must have been built for this engine's worker count
    /// and partition strategy (e.g. via [`GraphStorage::shard_graph`] with
    /// the same settings); the engine validates shard ownership against its
    /// layout and panics on a mismatch rather than run a partition that
    /// would silently misroute messages.
    pub fn run_storage<P: VertexProgram>(
        &self,
        storage: &GraphStorage,
        program: &P,
    ) -> BspRunResult<P::VertexValue> {
        self.run_on(storage.as_storage_ref(), program)
    }

    fn run_on<P: VertexProgram>(
        &self,
        storage: StorageRef<'_>,
        program: &P,
    ) -> BspRunResult<P::VertexValue> {
        self.runs.fetch_add(1, Ordering::Relaxed);
        predict_obs::registry().counter("bsp.runs").incr();
        let num_workers = self.config.num_workers.max(1);
        let layout = self.layouts.get_or_build(
            storage.num_vertices(),
            num_workers,
            self.config.partition_strategy,
        );
        if let StorageRef::Sharded(shards) = storage {
            assert_eq!(
                shards.len(),
                num_workers,
                "storage sharded over {} workers, engine configured for {num_workers}",
                shards.len(),
            );
            for (w, shard) in shards.iter().enumerate() {
                // Full ownership comparison, not just counts: two strategies
                // can produce equal shard sizes with different vertex sets,
                // and running such storage would silently misroute adjacency.
                // O(V) once per run, dwarfed by the run itself.
                assert_eq!(
                    shard.owned(),
                    layout.shard_vertices(w),
                    "shard {w} ownership does not match the engine's partition strategy",
                );
            }
        }
        let threads = self
            .config
            .execution
            .resolve_threads(num_workers, storage.num_vertices() + storage.num_edges());
        let pool = self
            .config
            .pool
            .resolve_enabled()
            .then_some(self.pool.as_ref());
        runtime::execute_pooled(program, storage, &layout, &self.config, threads, pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregator::Aggregates;
    use crate::cost::ClusterCostConfig;
    use crate::program::{ComputeContext, InitContext};
    use predict_graph::generators::{chain, generate_rmat, RmatConfig};
    use predict_graph::{CsrGraph, EdgeList, VertexId};

    /// Propagates the maximum vertex id through the graph: each vertex keeps
    /// the largest id it has heard of and forwards increases to neighbors.
    struct MaxId;

    impl VertexProgram for MaxId {
        type VertexValue = u32;
        type Message = u32;

        fn name(&self) -> &'static str {
            "max-id"
        }

        fn init_vertex(&self, v: VertexId, _ctx: &InitContext<'_>) -> u32 {
            v
        }

        fn compute(&self, ctx: &mut ComputeContext<'_, u32, u32>, messages: &[u32]) {
            let incoming_max = messages.iter().copied().max().unwrap_or(0);
            let current = *ctx.value;
            let best = current.max(incoming_max);
            if ctx.superstep == 0 || best > current {
                *ctx.value = best;
                ctx.send_to_all_neighbors(best);
            }
            ctx.vote_to_halt();
        }

        fn message_size_bytes(&self, _m: &u32) -> u64 {
            4
        }
    }

    /// Counts active vertices per superstep and stops via the master when the
    /// count drops below a threshold (a toy global convergence condition).
    struct CountDown {
        threshold: f64,
    }

    impl VertexProgram for CountDown {
        type VertexValue = u32;
        type Message = u32;

        fn name(&self) -> &'static str {
            "count-down"
        }

        fn init_vertex(&self, _v: VertexId, _ctx: &InitContext<'_>) -> u32 {
            0
        }

        fn compute(&self, ctx: &mut ComputeContext<'_, u32, u32>, _messages: &[u32]) {
            ctx.aggregate("active", 1.0);
            // Vertices whose id is below the superstep stay silent; the rest
            // keep themselves alive by messaging themselves.
            if (ctx.vertex as usize) > ctx.superstep {
                let v = ctx.vertex;
                ctx.send(v, v);
            }
            ctx.vote_to_halt();
        }

        fn message_size_bytes(&self, _m: &u32) -> u64 {
            4
        }

        fn master_halt(&self, _superstep: usize, aggregates: &Aggregates) -> bool {
            aggregates.get_or("active", 0.0) < self.threshold
        }
    }

    fn engine() -> BspEngine {
        BspEngine::new(BspConfig::with_workers(4).with_cost(ClusterCostConfig::noiseless()))
    }

    #[test]
    fn max_id_converges_to_global_maximum_on_a_cycle() {
        // Directed cycle 0 -> 1 -> 2 -> ... -> 9 -> 0: the maximum id must
        // propagate all the way around.
        let mut el = EdgeList::new();
        for i in 0..10u32 {
            el.push(i, (i + 1) % 10);
        }
        let g = CsrGraph::from_edge_list(&el);
        let result = engine().run(&g, &MaxId);
        assert!(result.values.iter().all(|&v| v == 9));
        assert_eq!(result.halt_reason, HaltReason::AllVerticesHalted);
        // Propagation around a 10-cycle needs about 10 supersteps.
        assert!(result.num_iterations() >= 9 && result.num_iterations() <= 12);
    }

    #[test]
    fn master_convergence_stops_the_run() {
        let g = chain(50);
        let result = engine().run(&g, &CountDown { threshold: 25.0 });
        assert_eq!(result.halt_reason, HaltReason::MasterConverged);
        // Active vertices shrink by one per superstep starting from 50.
        let last = result.profile.supersteps.last().unwrap();
        assert!(last.aggregates.get_or("active", 0.0) < 25.0);
    }

    #[test]
    fn superstep_cap_is_enforced() {
        let g = chain(50);
        let capped = BspEngine::new(
            BspConfig::with_workers(2)
                .with_max_supersteps(3)
                .with_cost(ClusterCostConfig::noiseless()),
        );
        let result = capped.run(&g, &CountDown { threshold: 0.0 });
        assert_eq!(result.halt_reason, HaltReason::MaxSupersteps);
        assert_eq!(result.num_iterations(), 3);
    }

    #[test]
    fn profile_counters_match_graph_structure() {
        let g = generate_rmat(&RmatConfig::new(8, 4).with_seed(1));
        let result = engine().run(&g, &MaxId);
        let first = &result.profile.supersteps[0];
        let totals = first.totals();
        // In superstep 0 every vertex is active and sends to all neighbors.
        assert_eq!(totals.active_vertices as usize, g.num_vertices());
        assert_eq!(totals.total_vertices as usize, g.num_vertices());
        assert_eq!(totals.total_messages() as usize, g.num_edges());
        assert_eq!(totals.total_message_bytes() as usize, g.num_edges() * 4);
        // Worker vertex counts partition the graph.
        assert_eq!(first.workers.len(), 4);
    }

    #[test]
    fn run_is_deterministic() {
        let g = generate_rmat(&RmatConfig::new(8, 4).with_seed(1));
        let a = engine().run(&g, &MaxId);
        let b = engine().run(&g, &MaxId);
        assert_eq!(a.values, b.values);
        assert_eq!(a.profile, b.profile);
    }

    #[test]
    fn worker_count_does_not_change_results_only_locality() {
        let g = generate_rmat(&RmatConfig::new(8, 4).with_seed(2));
        let one =
            BspEngine::new(BspConfig::with_workers(1).with_cost(ClusterCostConfig::noiseless()))
                .run(&g, &MaxId);
        let many =
            BspEngine::new(BspConfig::with_workers(8).with_cost(ClusterCostConfig::noiseless()))
                .run(&g, &MaxId);
        assert_eq!(one.values, many.values);
        assert_eq!(one.num_iterations(), many.num_iterations());
        // With a single worker every message is local.
        for s in &one.profile.supersteps {
            assert_eq!(s.totals().remote_messages, 0);
        }
        // With 8 workers most messages are remote.
        let totals_many: u64 = many
            .profile
            .supersteps
            .iter()
            .map(|s| s.totals().remote_messages)
            .sum();
        assert!(totals_many > 0);
    }

    #[test]
    fn phase_times_are_populated() {
        let g = generate_rmat(&RmatConfig::new(7, 4).with_seed(3));
        let result = engine().run(&g, &MaxId);
        let p = &result.profile;
        assert!(p.setup_ms > 0.0);
        assert!(p.read_ms > 0.0);
        assert!(p.write_ms > 0.0);
        assert!(p.superstep_phase_ms() > 0.0);
        assert!(p.total_ms() > p.superstep_phase_ms());
    }

    #[test]
    fn empty_graph_runs_a_single_silent_superstep() {
        let g = CsrGraph::from_edges(0, &[]);
        let result = engine().run(&g, &MaxId);
        assert!(result.values.is_empty());
        assert_eq!(result.halt_reason, HaltReason::AllVerticesHalted);
        assert_eq!(result.num_iterations(), 1);
    }
}
