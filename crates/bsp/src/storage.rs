//! Graph storage: one allocation or one shard per worker.
//!
//! The runtime can execute a vertex program against two physical layouts of
//! the same logical graph:
//!
//! * [`GraphStorage::Unified`] — the classic single
//!   [`CsrGraph`] allocation shared (read-only) by
//!   every worker;
//! * [`GraphStorage::Sharded`] — one [`ShardedCsr`] per worker, each holding
//!   only the out-adjacency of the vertices that worker owns plus the
//!   remote-edge cut lists. Compute phases read *only* their local shard;
//!   messages route across the cut exactly as under unified storage. This is
//!   the structural prerequisite for graphs that exceed one allocation.
//!
//! Both layouts hold byte-identical adjacency per vertex (shards preserve
//! per-source edge order), so the runtime's determinism contract extends
//! across storage: values, [`RunProfile`](crate::profile::RunProfile) and
//! halt reason are identical whichever layout a run uses, at every thread
//! count (pinned by the workspace's golden scenarios and proptests).
//!
//! Storage is selected per run: callers either hand the engine pre-built
//! storage ([`crate::BspEngine::run_storage`]) or set
//! [`BspConfig::storage`](crate::config::BspConfig::storage) to a
//! [`StorageMode`] and keep calling
//! [`BspEngine::run`](crate::BspEngine::run) — `Auto` honors the
//! `PREDICT_STORAGE` environment variable, which is how the scenario runner
//! replays every golden under sharded storage without touching any binary.

use crate::partition::{assign_vertex, PartitionStrategy};
use predict_graph::{CsrGraph, EdgeList, ShardedCsr, VertexId};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// How [`BspEngine::run`](crate::BspEngine::run) stores the graph for a run.
///
/// A pure layout knob: results are byte-identical under every mode (see the
/// [module documentation](self)); only memory shape and construction cost
/// differ. Sharded runs built through this knob pay one shard-construction
/// pass (`O(V + E)`) per run — callers that execute many runs over the same
/// graph should build a [`GraphStorage`] once and use
/// [`BspEngine::run_storage`](crate::BspEngine::run_storage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum StorageMode {
    /// Honor the `PREDICT_STORAGE` environment variable (`sharded` selects
    /// sharded storage; anything else, or unset, selects unified).
    #[default]
    Auto,
    /// One contiguous CSR allocation shared by all workers.
    Unified,
    /// One [`ShardedCsr`] per worker, built from the run's graph.
    Sharded,
}

impl StorageMode {
    /// Resolves the mode to a concrete layout choice (`true` = sharded).
    pub fn resolve_sharded(self) -> bool {
        match self {
            Self::Unified => false,
            Self::Sharded => true,
            Self::Auto => crate::knobs::env_storage_sharded(),
        }
    }
}

/// A graph in one of the two physical layouts the runtime executes against.
#[derive(Debug, Clone)]
pub enum GraphStorage {
    /// One contiguous CSR allocation shared by every worker.
    Unified(Arc<CsrGraph>),
    /// One shard per worker; shard `w` must belong to worker `w` of the
    /// partitioning the engine runs with.
    Sharded(Vec<ShardedCsr>),
}

impl GraphStorage {
    /// Wraps a unified graph.
    pub fn unified(graph: impl Into<Arc<CsrGraph>>) -> Self {
        Self::Unified(graph.into())
    }

    /// Shards a frozen CSR over `num_workers` workers under `strategy` —
    /// the same vertex assignment a [`crate::BspConfig`] with those settings
    /// produces, so the result is directly runnable by such an engine.
    pub fn shard_graph(graph: &CsrGraph, num_workers: usize, strategy: PartitionStrategy) -> Self {
        let n = graph.num_vertices();
        Self::Sharded(predict_graph::shard_csr(graph, num_workers, |v| {
            assign_vertex(v as usize, n, num_workers, strategy) as usize
        }))
    }

    /// Shards an edge list over `num_workers` workers under `strategy`
    /// without ever materializing the unified CSR — the graph goes from edge
    /// stream to per-worker shards directly.
    pub fn shard_edge_list(
        list: &EdgeList,
        num_workers: usize,
        strategy: PartitionStrategy,
    ) -> Self {
        let n = list.num_vertices();
        Self::Sharded(predict_graph::shard_edge_list(list, num_workers, |v| {
            assign_vertex(v as usize, n, num_workers, strategy) as usize
        }))
    }

    /// Number of vertices of the stored graph.
    pub fn num_vertices(&self) -> usize {
        match self {
            Self::Unified(g) => g.num_vertices(),
            Self::Sharded(shards) => shards.first().map(|s| s.global_vertices()).unwrap_or(0),
        }
    }

    /// Number of edges of the stored graph.
    pub fn num_edges(&self) -> usize {
        match self {
            Self::Unified(g) => g.num_edges(),
            Self::Sharded(shards) => shards.first().map(|s| s.global_edges()).unwrap_or(0),
        }
    }

    /// Number of shards, or `None` for unified storage.
    pub fn num_shards(&self) -> Option<usize> {
        match self {
            Self::Unified(_) => None,
            Self::Sharded(shards) => Some(shards.len()),
        }
    }

    /// Borrowed view the executor runs against.
    pub fn as_storage_ref(&self) -> StorageRef<'_> {
        match self {
            Self::Unified(g) => StorageRef::Unified(g),
            Self::Sharded(shards) => StorageRef::Sharded(shards),
        }
    }
}

/// Borrowed storage handed to the executor: either the shared unified graph
/// or the full shard set.
#[derive(Clone, Copy)]
pub enum StorageRef<'a> {
    Unified(&'a CsrGraph),
    Sharded(&'a [ShardedCsr]),
}

impl<'a> StorageRef<'a> {
    pub fn num_vertices(&self) -> usize {
        match self {
            Self::Unified(g) => g.num_vertices(),
            Self::Sharded(shards) => shards.first().map(|s| s.global_vertices()).unwrap_or(0),
        }
    }

    pub fn num_edges(&self) -> usize {
        match self {
            Self::Unified(g) => g.num_edges(),
            Self::Sharded(shards) => shards.first().map(|s| s.global_edges()).unwrap_or(0),
        }
    }

    /// The graph as seen by worker `w`: the whole graph under unified
    /// storage, only worker `w`'s shard under sharded storage.
    pub fn worker_graph(&self, w: usize) -> WorkerGraph<'a> {
        match self {
            Self::Unified(g) => WorkerGraph::Unified(g),
            Self::Sharded(shards) => WorkerGraph::Shard(&shards[w]),
        }
    }
}

/// One worker's read-only view of the graph during compute and
/// initialization phases. Vertices are addressed by `(slot, vertex)` pairs —
/// the dense shard slot plus the global id — which resolve to a direct index
/// under either layout.
#[derive(Clone, Copy)]
pub enum WorkerGraph<'a> {
    Unified(&'a CsrGraph),
    Shard(&'a ShardedCsr),
}

impl<'a> WorkerGraph<'a> {
    /// Vertices of the whole graph.
    pub fn num_vertices(&self) -> usize {
        match self {
            Self::Unified(g) => g.num_vertices(),
            Self::Shard(s) => s.global_vertices(),
        }
    }

    /// Edges of the whole graph.
    pub fn num_edges(&self) -> usize {
        match self {
            Self::Unified(g) => g.num_edges(),
            Self::Shard(s) => s.global_edges(),
        }
    }

    /// Out-neighbors of owned vertex `v` at shard slot `slot`.
    pub fn out_neighbors(&self, slot: usize, v: VertexId) -> &'a [VertexId] {
        match self {
            Self::Unified(g) => g.out_neighbors(v),
            Self::Shard(s) => {
                debug_assert_eq!(s.owned()[slot], v, "slot/vertex mismatch");
                s.out_neighbors_at(slot)
            }
        }
    }

    /// Out-edge weights of owned vertex `v` at shard slot `slot`.
    pub fn out_weights(&self, slot: usize, v: VertexId) -> Option<&'a [f32]> {
        match self {
            Self::Unified(g) => g.out_weights(v),
            Self::Shard(s) => {
                debug_assert_eq!(s.owned()[slot], v, "slot/vertex mismatch");
                s.out_weights_at(slot)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predict_graph::generators::{generate_rmat, RmatConfig};

    #[test]
    fn storage_totals_agree_across_layouts() {
        let g = generate_rmat(&RmatConfig::new(8, 4).with_seed(2));
        let unified = GraphStorage::unified(g.clone());
        let sharded = GraphStorage::shard_graph(&g, 4, PartitionStrategy::Hash);
        assert_eq!(unified.num_vertices(), sharded.num_vertices());
        assert_eq!(unified.num_edges(), sharded.num_edges());
        assert_eq!(unified.num_shards(), None);
        assert_eq!(sharded.num_shards(), Some(4));
    }

    #[test]
    fn shard_edge_list_matches_shard_graph() {
        let g = generate_rmat(&RmatConfig::new(8, 4).with_seed(3));
        let el = g.to_edge_list();
        let a = GraphStorage::shard_edge_list(&el, 3, PartitionStrategy::Range);
        let b = GraphStorage::shard_graph(&g, 3, PartitionStrategy::Range);
        let (GraphStorage::Sharded(a), GraphStorage::Sharded(b)) = (&a, &b) else {
            panic!("both must be sharded");
        };
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.owned(), y.owned());
            for slot in 0..x.num_local_vertices() {
                assert_eq!(x.out_neighbors_at(slot), y.out_neighbors_at(slot));
            }
        }
    }

    #[test]
    fn worker_graph_views_agree() {
        let g = generate_rmat(&RmatConfig::new(7, 4).with_seed(5));
        let sharded = GraphStorage::shard_graph(&g, 3, PartitionStrategy::Modulo);
        let unified = GraphStorage::unified(g.clone());
        let (su, ss) = (unified.as_storage_ref(), sharded.as_storage_ref());
        for w in 0..3 {
            let (vu, vs) = (su.worker_graph(w), ss.worker_graph(w));
            assert_eq!(vu.num_vertices(), vs.num_vertices());
            assert_eq!(vu.num_edges(), vs.num_edges());
            let GraphStorage::Sharded(shards) = &sharded else {
                unreachable!()
            };
            for (slot, &v) in shards[w].owned().iter().enumerate() {
                assert_eq!(vu.out_neighbors(slot, v), vs.out_neighbors(slot, v));
                assert_eq!(vu.out_weights(slot, v), vs.out_weights(slot, v));
            }
        }
    }

    #[test]
    fn storage_mode_resolves() {
        assert!(!StorageMode::Unified.resolve_sharded());
        assert!(StorageMode::Sharded.resolve_sharded());
        // Auto without the env var resolves to unified. (Mutating the env
        // var here could race other tests; the scenario runner exercises the
        // sharded Auto path end to end.)
        if std::env::var("PREDICT_STORAGE").is_err() {
            assert!(!StorageMode::Auto.resolve_sharded());
        }
    }

    #[test]
    fn empty_sharded_storage_is_well_formed() {
        let storage = GraphStorage::Sharded(Vec::new());
        assert_eq!(storage.num_vertices(), 0);
        assert_eq!(storage.num_edges(), 0);
        assert_eq!(storage.num_shards(), Some(0));
    }
}
