//! Criterion benchmark of the `PredictService` amortization win: repeated
//! prediction requests against one dataset through the cached session
//! (`service_repeated`) versus the uncached one-shot pipeline
//! (`oneshot_uncached`) that re-samples and re-trains on every call.
//!
//! The scheduler pattern the paper targets — many queries, same dataset —
//! hits the cached path, whose per-request cost collapses to extrapolation
//! plus model evaluation. Repeated-request throughput is expected to be well
//! above 2x the one-shot path (the acceptance bar for this redesign); the
//! `submit_batch` group additionally shows scoped-thread batching.

use criterion::{criterion_group, criterion_main, Criterion};
use predict_algorithms::{
    ConnectedComponentsWorkload, NeighborhoodWorkload, PageRankWorkload, TopKWorkload, Workload,
};
use predict_bsp::{BspConfig, BspEngine};
use predict_core::{HistoryStore, PredictRequest, PredictService, Predictor, PredictorConfig};
use predict_graph::datasets::{Dataset, DatasetConfig, DatasetScale};
use predict_graph::CsrGraph;
use predict_sampling::BiasedRandomJump;
use std::sync::Arc;

fn graph() -> Arc<CsrGraph> {
    Arc::new(DatasetConfig::new(Dataset::Wikipedia, DatasetScale::Small).generate())
}

fn workloads(n: usize) -> Vec<Arc<dyn Workload>> {
    vec![
        Arc::new(PageRankWorkload::with_epsilon(0.001, n)),
        Arc::new(TopKWorkload::default()),
        Arc::new(ConnectedComponentsWorkload),
        Arc::new(NeighborhoodWorkload::default()),
    ]
}

fn bench_service(c: &mut Criterion) {
    let graph = graph();
    let workloads = workloads(graph.num_vertices());
    let config = PredictorConfig::single_ratio(0.1);

    let mut group = c.benchmark_group("predict_service");
    group.sample_size(10);

    // Baseline: the uncached one-shot pipeline, once per workload.
    group.bench_function("oneshot_uncached", |b| {
        let engine = BspEngine::new(BspConfig::with_workers(8));
        let sampler = BiasedRandomJump::default();
        let history = HistoryStore::new();
        b.iter(|| {
            let mut total = 0.0;
            for workload in &workloads {
                let predictor = Predictor::new(&engine, &sampler, config.clone());
                total += predictor
                    .predict(workload.as_ref(), &graph, &history, "Wiki")
                    .unwrap()
                    .predicted_superstep_ms;
            }
            std::hint::black_box(total)
        })
    });

    // The service path: the first batch warms the caches, every measured
    // request reuses the sample runs and trained models.
    group.bench_function("service_repeated", |b| {
        let service = PredictService::new(
            BspEngine::new(BspConfig::with_workers(8)),
            Arc::new(BiasedRandomJump::default()),
        );
        let requests: Vec<PredictRequest> = workloads
            .iter()
            .map(|w| {
                PredictRequest::new("Wiki", Arc::clone(&graph), Arc::clone(w))
                    .with_config(config.clone())
            })
            .collect();
        for request in &requests {
            service.submit(request).unwrap(); // warm-up
        }
        b.iter(|| {
            let mut total = 0.0;
            for request in &requests {
                total += service.submit(request).unwrap().predicted_superstep_ms;
            }
            std::hint::black_box(total)
        })
    });

    // Batched submission over scoped threads (deterministic output order).
    group.bench_function("service_submit_batch", |b| {
        let service = PredictService::new(
            BspEngine::new(BspConfig::with_workers(8)),
            Arc::new(BiasedRandomJump::default()),
        );
        let requests: Vec<PredictRequest> = workloads
            .iter()
            .map(|w| {
                PredictRequest::new("Wiki", Arc::clone(&graph), Arc::clone(w))
                    .with_config(config.clone())
            })
            .collect();
        service.submit_batch(&requests, 4); // warm-up
        b.iter(|| {
            let results = service.submit_batch(&requests, 4);
            std::hint::black_box(results.len())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
