//! Criterion benchmark: sequential vs parallel BSP runtime on an R-MAT
//! graph, at 4 and 8 workers.
//!
//! The workload is a message-heavy flood (one 8-byte message per edge per
//! superstep for 5 supersteps), the regime where the compute phase dominates
//! and the scoped-thread executor should win. The parallel engine runs with
//! as many threads as workers. Outputs are byte-identical by the runtime's
//! determinism contract — this benchmark demonstrates that the *only*
//! difference is wall-clock time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use predict_bsp::{
    BspConfig, BspEngine, ClusterCostConfig, ComputeContext, ExecutionMode, InitContext,
    VertexProgram,
};
use predict_graph::generators::{generate_rmat, RmatConfig};
use predict_graph::VertexId;

/// Floods every edge with one 8-byte message for a fixed number of supersteps.
struct Flood {
    rounds: usize,
}

impl VertexProgram for Flood {
    type VertexValue = u64;
    type Message = u64;

    fn name(&self) -> &'static str {
        "flood"
    }

    fn init_vertex(&self, _v: VertexId, _ctx: &InitContext<'_>) -> u64 {
        0
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, u64, u64>, messages: &[u64]) {
        *ctx.value += messages.len() as u64;
        if ctx.superstep < self.rounds {
            let v = ctx.vertex as u64;
            ctx.send_to_all_neighbors(v);
        }
        ctx.vote_to_halt();
    }

    fn message_size_bytes(&self, _m: &u64) -> u64 {
        8
    }
}

fn bench_parallel_bsp(c: &mut Criterion) {
    let graph = generate_rmat(&RmatConfig::new(14, 8).with_seed(7));
    for workers in [4usize, 8] {
        let mut group = c.benchmark_group(format!("bsp_runtime_flood_{workers}_workers"));
        group.sample_size(10);
        for (label, mode) in [
            ("sequential", ExecutionMode::Sequential),
            ("parallel", ExecutionMode::Parallel { threads: workers }),
        ] {
            let engine = BspEngine::new(
                BspConfig::with_workers(workers)
                    .with_cost(ClusterCostConfig::noiseless())
                    .with_execution(mode),
            );
            group.bench_with_input(BenchmarkId::from_parameter(label), &graph, |b, graph| {
                b.iter(|| {
                    let result = engine.run(graph, &Flood { rounds: 5 });
                    std::hint::black_box(result.profile.num_iterations())
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_parallel_bsp);
criterion_main!(benches);
