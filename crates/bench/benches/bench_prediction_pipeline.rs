//! Criterion micro-benchmark: the full PREDIcT pipeline (sample, transform,
//! sample run, cost model training, extrapolation) for PageRank on a
//! small-scale dataset analog, executed cold — a fresh session per
//! iteration, so nothing is amortized. See `bench_predict_service` for the
//! cached/amortized path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use predict_algorithms::PageRankWorkload;
use predict_bsp::{BspConfig, BspEngine};
use predict_core::{Predictor, PredictorConfig};
use predict_graph::datasets::{Dataset, DatasetConfig, DatasetScale};
use predict_sampling::BiasedRandomJump;
use std::sync::Arc;

fn bench_pipeline(c: &mut Criterion) {
    let engine = Arc::new(BspEngine::new(BspConfig::with_workers(8)));

    let mut group = c.benchmark_group("prediction_pipeline_pagerank");
    group.sample_size(10);
    for ratio in [0.05f64, 0.1, 0.2] {
        let graph =
            Arc::new(DatasetConfig::new(Dataset::Wikipedia, DatasetScale::Small).generate());
        let workload = PageRankWorkload::with_epsilon(0.001, graph.num_vertices());
        group.bench_with_input(BenchmarkId::from_parameter(ratio), &graph, |b, graph| {
            b.iter(|| {
                // A fresh session per iteration: every stage executes.
                let session = Predictor::builder()
                    .engine(Arc::clone(&engine))
                    .sampler(BiasedRandomJump::default())
                    .config(PredictorConfig::single_ratio(ratio))
                    .bind(Arc::clone(graph), "Wiki");
                let p = session.predict(&workload).unwrap();
                std::hint::black_box(p.predicted_superstep_ms)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
