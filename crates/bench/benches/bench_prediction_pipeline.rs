//! Criterion micro-benchmark: the full PREDIcT pipeline (sample, transform,
//! sample run, cost model training, extrapolation) for PageRank on a
//! small-scale dataset analog.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use predict_algorithms::PageRankWorkload;
use predict_bsp::{BspConfig, BspEngine};
use predict_core::{HistoryStore, Predictor, PredictorConfig};
use predict_graph::datasets::{Dataset, DatasetConfig, DatasetScale};
use predict_sampling::BiasedRandomJump;

fn bench_pipeline(c: &mut Criterion) {
    let engine = BspEngine::new(BspConfig::with_workers(8));
    let sampler = BiasedRandomJump::default();
    let history = HistoryStore::new();

    let mut group = c.benchmark_group("prediction_pipeline_pagerank");
    group.sample_size(10);
    for ratio in [0.05f64, 0.1, 0.2] {
        let graph = DatasetConfig::new(Dataset::Wikipedia, DatasetScale::Small).generate();
        let workload = PageRankWorkload::with_epsilon(0.001, graph.num_vertices());
        let predictor = Predictor::new(&engine, &sampler, PredictorConfig::single_ratio(ratio));
        group.bench_with_input(BenchmarkId::from_parameter(ratio), &graph, |b, graph| {
            b.iter(|| {
                let p = predictor
                    .predict(&workload, graph, &history, "Wiki")
                    .unwrap();
                std::hint::black_box(p.predicted_superstep_ms)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
