//! Criterion micro-benchmark: raw BSP engine superstep throughput with a
//! minimal message-heavy vertex program, as a function of worker count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use predict_bsp::{
    BspConfig, BspEngine, ClusterCostConfig, ComputeContext, InitContext, VertexProgram,
};
use predict_graph::generators::{generate_rmat, RmatConfig};
use predict_graph::VertexId;

/// Floods every edge with one 8-byte message for a fixed number of supersteps.
struct Flood {
    rounds: usize,
}

impl VertexProgram for Flood {
    type VertexValue = u64;
    type Message = u64;

    fn name(&self) -> &'static str {
        "flood"
    }

    fn init_vertex(&self, _v: VertexId, _ctx: &InitContext<'_>) -> u64 {
        0
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, u64, u64>, messages: &[u64]) {
        *ctx.value += messages.len() as u64;
        if ctx.superstep < self.rounds {
            let v = ctx.vertex as u64;
            ctx.send_to_all_neighbors(v);
        }
        ctx.vote_to_halt();
    }

    fn message_size_bytes(&self, _m: &u64) -> u64 {
        8
    }
}

fn bench_engine(c: &mut Criterion) {
    let graph = generate_rmat(&RmatConfig::new(12, 8).with_seed(5));
    let mut group = c.benchmark_group("bsp_engine_flood_5_rounds");
    group.sample_size(10);
    for workers in [1usize, 4, 16] {
        let engine = BspEngine::new(
            BspConfig::with_workers(workers).with_cost(ClusterCostConfig::noiseless()),
        );
        group.bench_with_input(BenchmarkId::from_parameter(workers), &graph, |b, graph| {
            b.iter(|| {
                let result = engine.run(graph, &Flood { rounds: 5 });
                std::hint::black_box(result.profile.num_iterations())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
