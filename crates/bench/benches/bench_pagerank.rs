//! Criterion micro-benchmark: PageRank execution on the BSP engine as a
//! function of graph size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use predict_algorithms::{PageRank, PageRankParams};
use predict_bsp::{BspConfig, BspEngine, ClusterCostConfig};
use predict_graph::generators::{generate_rmat, RmatConfig};

fn bench_pagerank(c: &mut Criterion) {
    let engine =
        BspEngine::new(BspConfig::with_workers(8).with_cost(ClusterCostConfig::noiseless()));
    let mut group = c.benchmark_group("pagerank");
    group.sample_size(10);
    for scale in [8u32, 10, 12] {
        let graph = generate_rmat(&RmatConfig::new(scale, 8).with_seed(1));
        let params = PageRankParams::with_epsilon(0.001, graph.num_vertices());
        group.bench_with_input(BenchmarkId::new("rmat_scale", scale), &graph, |b, graph| {
            b.iter(|| {
                let result = PageRank::new(params).run(&engine, graph);
                std::hint::black_box(result.iterations)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pagerank);
criterion_main!(benches);
