//! Criterion micro-benchmark: cost model training (regression + forward
//! feature selection) as a function of the number of training observations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use predict_bsp::WorkerCounters;
use predict_core::{CostModel, CostModelConfig, FeatureSet, IterationObservation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn observations(n: usize) -> Vec<IterationObservation> {
    let mut rng = StdRng::seed_from_u64(11);
    (0..n)
        .map(|i| {
            let active = rng.gen_range(100u64..10_000);
            let remote_bytes = rng.gen_range(10_000u64..1_000_000);
            let counters = WorkerCounters {
                active_vertices: active,
                total_vertices: active * 2,
                local_messages: active,
                remote_messages: remote_bytes / 64,
                local_message_bytes: remote_bytes / 8,
                remote_message_bytes: remote_bytes,
            };
            IterationObservation {
                superstep: i,
                features: FeatureSet::from_counters(&counters),
                wall_time_ms: 10.0 + 0.0003 * remote_bytes as f64 + 0.001 * active as f64,
            }
        })
        .collect()
}

fn bench_cost_model_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost_model_training");
    for n in [20usize, 100, 500] {
        let obs = observations(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &obs, |b, obs| {
            b.iter(|| {
                let model = CostModel::train(obs, &CostModelConfig::default()).unwrap();
                std::hint::black_box(model.r_squared())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cost_model_training);
criterion_main!(benches);
