//! Criterion micro-benchmark: sampling techniques at a 10% ratio.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use predict_graph::generators::{generate_rmat, RmatConfig};
use predict_sampling::{BiasedRandomJump, ForestFire, Mhrw, RandomJump, RandomNode, Sampler};

fn bench_samplers(c: &mut Criterion) {
    let graph = generate_rmat(&RmatConfig::new(13, 8).with_seed(3));
    let brj = BiasedRandomJump::default();
    let rj = RandomJump::default();
    let mhrw = Mhrw::default();
    let ff = ForestFire::default();
    let rn = RandomNode;
    let samplers: [(&str, &dyn Sampler); 5] = [
        ("BRJ", &brj),
        ("RJ", &rj),
        ("MHRW", &mhrw),
        ("FF", &ff),
        ("RN", &rn),
    ];

    let mut group = c.benchmark_group("sampling_10pct");
    group.sample_size(20);
    for (name, sampler) in samplers {
        group.bench_with_input(BenchmarkId::from_parameter(name), &graph, |b, graph| {
            b.iter(|| {
                let sample = sampler.sample(graph, 0.1, 7);
                std::hint::black_box(sample.graph.num_edges())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_samplers);
criterion_main!(benches);
