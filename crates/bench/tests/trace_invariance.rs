//! Golden invariance of observability: `PREDICT_TRACE` on or off must
//! leave experiment output byte-identical, while the trace itself must be a
//! valid Chrome trace-event file with the full span nesting
//! (service → session → stage, run → superstep → phase).
//!
//! This lives in an integration test (own process) because it flips the
//! process-global tracer flag; unit tests sharing the test binary's threads
//! could otherwise observe each other's spans.

use predict_algorithms::PageRankWorkload;
use predict_bench::{prediction_sweep, HistoryMode, EXPERIMENT_SEED};
use predict_core::PredictorConfig;
use predict_graph::datasets::Dataset;
use predict_sampling::BiasedRandomJump;
use serde_json::Value;
use std::sync::Arc;

/// One small-scale sweep, serialized exactly as the experiment bins save it.
fn sweep_json() -> String {
    let points = prediction_sweep(
        &[Dataset::Wikipedia],
        &[0.1, 0.2],
        Arc::new(BiasedRandomJump::default()),
        HistoryMode::SampleRunsOnly,
        &|g| Box::new(PageRankWorkload::with_epsilon(0.01, g.num_vertices())),
        &|ratio| PredictorConfig::single_ratio(ratio).with_seed(EXPERIMENT_SEED),
    );
    serde_json::to_string_pretty(&points).expect("points serialize")
}

/// Decoded essentials of one trace event.
struct Span {
    name: String,
    tid: u64,
    start: f64,
    end: f64,
}

fn lookup<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn number(value: &Value) -> f64 {
    match value {
        Value::UInt(v) => *v as f64,
        Value::Int(v) => *v as f64,
        Value::Float(v) => *v,
        other => panic!("expected a number, got {other:?}"),
    }
}

fn decode_spans(trace: &Value) -> Vec<Span> {
    let Value::Map(root) = trace else {
        panic!("trace top level must be an object");
    };
    let Some(Value::Seq(events)) = lookup(root, "traceEvents") else {
        panic!("trace must have a traceEvents array");
    };
    events
        .iter()
        .map(|event| {
            let Value::Map(map) = event else {
                panic!("every trace event must be an object");
            };
            assert_eq!(
                lookup(map, "ph"),
                Some(&Value::Str("X".to_string())),
                "spans export as complete events"
            );
            let ts = number(lookup(map, "ts").expect("ts"));
            let dur = number(lookup(map, "dur").expect("dur"));
            Span {
                name: match lookup(map, "name").expect("name") {
                    Value::Str(s) => s.clone(),
                    other => panic!("name must be a string, got {other:?}"),
                },
                tid: number(lookup(map, "tid").expect("tid")) as u64,
                start: ts,
                end: ts + dur,
            }
        })
        .collect()
}

/// True when some `inner`-named span nests inside some `outer`-named span on
/// the same thread.
fn nests_within(spans: &[Span], inner: &str, outer: &str) -> bool {
    spans.iter().any(|i| {
        i.name == inner
            && spans
                .iter()
                .any(|o| o.name == outer && o.tid == i.tid && o.start <= i.start && i.end <= o.end)
    })
}

#[test]
fn tracing_on_and_off_produce_byte_identical_results() {
    std::env::set_var("PREDICT_SCALE", "small");
    let baseline = sweep_json();

    let dir = std::env::temp_dir().join(format!("predict_trace_invariance_{}", std::process::id()));
    let trace_path = dir.join("sweep.trace.json");
    let traced = {
        let _guard = predict_obs::trace::start_file(&trace_path);
        sweep_json()
    };
    std::env::remove_var("PREDICT_SCALE");

    // The tentpole contract: a traced run's experiment output is the same
    // bytes as an untraced run's.
    assert_eq!(baseline, traced, "PREDICT_TRACE changed experiment output");

    // The flushed file is valid Chrome trace JSON carrying the whole span
    // hierarchy plus the embedded metrics snapshot.
    let text = std::fs::read_to_string(&trace_path).expect("trace file written");
    let trace: Value = serde_json::from_str(&text).expect("trace file is valid JSON");
    let spans = decode_spans(&trace);
    assert!(!spans.is_empty(), "a traced sweep records spans");
    for (inner, outer) in [
        ("session.predict", "service.request"),
        ("predict.stage.sample", "session.predict"),
        ("predict.stage.sample_run", "session.predict"),
        ("predict.stage.train", "session.predict"),
        ("bsp.superstep", "bsp.run"),
        ("bsp.compute", "bsp.superstep"),
        ("bsp.deliver", "bsp.superstep"),
    ] {
        assert!(
            nests_within(&spans, inner, outer),
            "expected a `{inner}` span nested inside a `{outer}` span"
        );
    }
    let Value::Map(root) = &trace else {
        unreachable!()
    };
    assert!(
        lookup(root, "metrics").is_some(),
        "the trace embeds the metrics snapshot"
    );

    std::fs::remove_dir_all(&dir).ok();
}
