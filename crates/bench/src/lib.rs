//! Shared harness for the experiment binaries that regenerate every table and
//! figure of the paper.
//!
//! Each binary in `src/bin/` reproduces one table or figure (the
//! architecture book, `docs/ARCHITECTURE.md`, has the index). They all
//! follow the same protocol, which this library factors out:
//!
//! 1. build the dataset analogs (Table 2) at the scale selected by the
//!    `PREDICT_SCALE` environment variable (`small`, `default` or `large`);
//! 2. execute the **actual run** of the workload once per dataset;
//! 3. sweep sampling ratios, producing one PREDIcT prediction per point;
//! 4. report the paper's metrics (signed relative errors, R², overhead
//!    ratios) as a plain-text table on stdout and as JSON under
//!    `target/experiments/`.

use predict_algorithms::{Workload, WorkloadRun};
use predict_bsp::{BspConfig, BspEngine};
use predict_core::{
    observations_from_profile, PredictRequest, PredictService, Prediction, PredictorConfig,
    WorkerSelection,
};
use predict_graph::datasets::{Dataset, DatasetConfig, DatasetScale};
use predict_graph::CsrGraph;
use predict_sampling::Sampler;
use serde::Serialize;
use std::path::PathBuf;
use std::sync::Arc;

/// Sampling ratios swept by the paper's figures (x-axis of Figures 4–9).
pub const PAPER_SAMPLING_RATIOS: [f64; 6] = [0.01, 0.05, 0.1, 0.15, 0.2, 0.25];

/// Seed used by every experiment binary so results are reproducible.
pub const EXPERIMENT_SEED: u64 = 0xE9;

/// Scale selected through the `PREDICT_SCALE` environment variable
/// (`small` / `default` / `large`), defaulting to [`DatasetScale::Default`].
pub fn experiment_scale() -> DatasetScale {
    match std::env::var("PREDICT_SCALE")
        .unwrap_or_default()
        .to_lowercase()
        .as_str()
    {
        "small" => DatasetScale::Small,
        "large" => DatasetScale::Large,
        _ => DatasetScale::Default,
    }
}

/// The BSP engine configuration shared by all experiments: 8 workers and the
/// default (hidden) simulated cluster cost model.
pub fn experiment_engine() -> BspEngine {
    BspEngine::new(BspConfig::with_workers(8))
}

/// Honors the observability knobs for this process. Call first thing in
/// `main` and keep the guard alive for the whole run:
///
/// ```no_run
/// let _obs = predict_bench::observability_guard();
/// ```
///
/// * `PREDICT_TRACE=<path>` enables span tracing; the guard writes the
///   Chrome trace-event file (with the final metrics snapshot embedded)
///   when it drops. Unset, tracing stays disabled and spans cost one atomic
///   load.
/// * `PREDICT_STORE=<dir>` (artifact persistence, consumed by the service
///   layer) additionally makes the guard print one machine-readable
///   `[store-summary] {...}` line to stderr on drop, reporting the engine
///   runs this process executed and the store's read/hit/write/quarantine
///   counters — what the scenario runner's `--expect-warm` mode and the CI
///   warm-start step parse to assert a warm pass recomputed nothing.
///
/// This lives in the bench harness rather than `predict_obs` because the
/// knob parsers sit in `predict_bsp::knobs`, *above* `predict_obs` in the
/// dependency graph.
pub fn observability_guard() -> ObsGuard {
    ObsGuard {
        trace: predict_bsp::env_trace_path().map(predict_obs::trace::start_file),
        store_summary: predict_bsp::env_store_path().is_some(),
    }
}

/// Guard returned by [`observability_guard`]; emits the configured
/// end-of-run reports when dropped.
pub struct ObsGuard {
    trace: Option<predict_obs::TraceGuard>,
    store_summary: bool,
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        if self.store_summary {
            eprintln!("{}", store_summary_line());
        }
        // `trace` drops afterwards, writing the trace file (it embeds its
        // own metrics snapshot, taken after the summary above).
        self.trace.take();
    }
}

/// Renders the `[store-summary]` stderr line: a stable prefix plus a JSON
/// object of the process-global run and store counters.
pub fn store_summary_line() -> String {
    let snapshot = predict_obs::registry().snapshot();
    let counter = |name: &str| snapshot.counter(name).unwrap_or(0);
    format!(
        "[store-summary] {{\"bsp_runs\":{},\"store_reads\":{},\"store_hits\":{},\
         \"store_writes\":{},\"store_quarantined\":{}}}",
        counter("bsp.runs"),
        counter("store.reads"),
        counter("store.hits"),
        counter("store.writes"),
        counter("store.quarantined"),
    )
}

/// Loads one dataset analog at the experiment scale.
pub fn load_dataset(dataset: Dataset, scale: DatasetScale) -> CsrGraph {
    DatasetConfig::new(dataset, scale).generate()
}

/// Whether an experiment trains its cost model on sample runs only or also on
/// historical actual runs of the other datasets (the (a)/(b) variants of
/// Figures 7 and 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistoryMode {
    /// Train on sample runs only.
    SampleRunsOnly,
    /// Additionally train on the actual runs of every other dataset.
    WithHistory,
}

/// One prediction data point of a sweep: everything the figures plot.
#[derive(Debug, Clone, Serialize)]
pub struct PredictionPoint {
    /// Dataset prefix (LJ / Wiki / TW / UK).
    pub dataset: String,
    /// Sampling ratio of the sample run used for extrapolation.
    pub ratio: f64,
    /// Predicted number of iterations.
    pub predicted_iterations: usize,
    /// Iterations of the actual run.
    pub actual_iterations: usize,
    /// Signed relative error of the iteration prediction.
    pub iteration_error: f64,
    /// Predicted superstep-phase runtime (simulated ms).
    pub predicted_runtime_ms: f64,
    /// Actual superstep-phase runtime (simulated ms).
    pub actual_runtime_ms: f64,
    /// Signed relative error of the runtime prediction.
    pub runtime_error: f64,
    /// Signed relative error of the remote-message-bytes prediction.
    pub remote_bytes_error: f64,
    /// R² of the trained cost model on its training data.
    pub cost_model_r_squared: f64,
    /// R² of the trained cost model evaluated on the actual run's iterations.
    pub cost_model_r_squared_on_actual: f64,
    /// Simulated end-to-end runtime of the sample run.
    pub sample_total_ms: f64,
    /// Simulated end-to-end runtime of the actual run.
    pub actual_total_ms: f64,
}

impl PredictionPoint {
    fn from_prediction(
        dataset: Dataset,
        ratio: f64,
        prediction: &Prediction,
        actual: &WorkloadRun,
    ) -> Self {
        let actual_superstep_ms = actual.profile.superstep_phase_ms();
        let actual_remote_bytes: f64 = actual
            .profile
            .per_superstep_totals()
            .iter()
            .map(|t| t.remote_message_bytes as f64)
            .sum();
        let actual_obs = observations_from_profile(&actual.profile, WorkerSelection::SlowestWorker);
        Self {
            dataset: dataset.prefix().to_string(),
            ratio,
            predicted_iterations: prediction.predicted_iterations,
            actual_iterations: actual.iterations(),
            iteration_error: predict_core::signed_relative_error(
                prediction.predicted_iterations as f64,
                actual.iterations() as f64,
            ),
            predicted_runtime_ms: prediction.predicted_superstep_ms,
            actual_runtime_ms: actual_superstep_ms,
            runtime_error: predict_core::signed_relative_error(
                prediction.predicted_superstep_ms,
                actual_superstep_ms,
            ),
            remote_bytes_error: predict_core::signed_relative_error(
                prediction.predicted_remote_message_bytes,
                actual_remote_bytes,
            ),
            cost_model_r_squared: prediction.cost_model.r_squared(),
            cost_model_r_squared_on_actual: prediction.cost_model.r_squared_on(&actual_obs),
            sample_total_ms: prediction.sample_run_total_ms,
            actual_total_ms: actual.profile.total_ms(),
        }
    }
}

/// Runs a full prediction sweep: for every dataset, execute the actual run
/// once, then produce one PREDIcT prediction per sampling ratio.
///
/// The sweep goes through a [`PredictService`]: one cached
/// [`predict_core::PredictionSession`] per dataset executes and caches the
/// actual run, holds the leave-one-out history of the other datasets, and
/// shares sampling artifacts between sweep points with a common `(ratio,
/// seed)` draw. Outputs are identical to predicting each point with a fresh
/// predictor — every stage is deterministic — just without redundant engine
/// invocations.
///
/// `make_workload` builds the workload for a given graph (the threshold of
/// PageRank-style workloads depends on the graph size); `make_config` builds
/// the predictor configuration for a given sampling ratio.
pub fn prediction_sweep(
    datasets: &[Dataset],
    ratios: &[f64],
    sampler: Arc<dyn Sampler>,
    history_mode: HistoryMode,
    make_workload: &dyn Fn(&CsrGraph) -> Box<dyn Workload>,
    make_config: &dyn Fn(f64) -> PredictorConfig,
) -> Vec<PredictionPoint> {
    let scale = experiment_scale();
    let service = PredictService::new(experiment_engine(), sampler);

    // Sessions and actual runs, one per dataset. The actual run is executed
    // through the session so later evaluations of the same workload reuse it.
    // The graphs are kept so the per-point requests below clone the same
    // `Arc` — session reuse in the service is keyed on pointer identity.
    let mut sessions = Vec::new();
    let mut graphs = Vec::new();
    let mut actual_runs = Vec::new();
    for &dataset in datasets {
        let graph = Arc::new(load_dataset(dataset, scale));
        let session = service.session_for(dataset.prefix(), &graph);
        let workload = make_workload(session.graph());
        eprintln!("[actual run] {} on {}", workload.name(), dataset.prefix());
        actual_runs.push(session.actual_run(workload.as_ref()));
        sessions.push(session);
        graphs.push(graph);
    }

    // History: the actual runs of every *other* dataset.
    if history_mode == HistoryMode::WithHistory {
        for (i, session) in sessions.iter().enumerate() {
            let workload = make_workload(session.graph());
            for (j, &other) in datasets.iter().enumerate() {
                if i != j {
                    session.record_history(
                        workload.name(),
                        other.prefix(),
                        actual_runs[j].profile.clone(),
                    );
                }
            }
        }
    }

    let mut points = Vec::new();
    for (i, &dataset) in datasets.iter().enumerate() {
        let workload: Arc<dyn Workload> = Arc::from(make_workload(sessions[i].graph()));
        for &ratio in ratios {
            let config = make_config(ratio);
            eprintln!(
                "[prediction] {} on {} at ratio {:.2}",
                workload.name(),
                dataset.prefix(),
                ratio
            );
            // Through the service front door (not the raw session), so each
            // sweep point is a counted, traced `service.request`. The request
            // clones the dataset's own graph `Arc`, so the service cache-hits
            // on the session warmed above: identical bytes, no extra work.
            let request = PredictRequest::new(
                dataset.prefix(),
                Arc::clone(&graphs[i]),
                Arc::clone(&workload),
            )
            .with_config(config);
            match service.submit(&request) {
                Ok(prediction) => points.push(PredictionPoint::from_prediction(
                    dataset,
                    ratio,
                    &prediction,
                    &actual_runs[i],
                )),
                Err(e) => eprintln!(
                    "[prediction] skipped {} at ratio {ratio}: {e}",
                    dataset.prefix()
                ),
            }
        }
    }
    points
}

/// A plain-text result table printed by every experiment binary.
#[derive(Debug, Clone, Serialize)]
pub struct ResultTable {
    /// Title of the experiment (e.g. "Figure 4: ...").
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of formatted cells.
    pub rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// Creates an empty table.
    pub fn new(title: &str, columns: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of cells.
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
                .collect();
            out.push_str(&cells.join("  "));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout and saves it (plus `points`, when provided)
    /// as JSON under `target/experiments/<name>.json`.
    pub fn emit<T: Serialize>(&self, name: &str, points: &T) {
        println!("{}", self.render());
        let dir = output_dir();
        if std::fs::create_dir_all(&dir).is_ok() {
            #[derive(Serialize)]
            struct Payload<'a, T> {
                table: &'a ResultTable,
                points: &'a T,
            }
            let path = dir.join(format!("{name}.json"));
            match serde_json::to_string_pretty(&Payload {
                table: self,
                points,
            }) {
                Ok(json) => {
                    if let Err(e) = std::fs::write(&path, json) {
                        eprintln!("could not write {}: {e}", path.display());
                    } else {
                        eprintln!("[saved] {}", path.display());
                    }
                }
                Err(e) => eprintln!("could not serialize results: {e}"),
            }
        }
    }
}

/// Directory experiment JSON output is written to.
pub fn output_dir() -> PathBuf {
    PathBuf::from("target").join("experiments")
}

/// Formats a signed relative error as a percentage string.
pub fn pct(value: f64) -> String {
    if value.is_finite() {
        format!("{:+.1}%", value * 100.0)
    } else {
        "inf".to_string()
    }
}

/// Formats milliseconds with one decimal.
pub fn ms(value: f64) -> String {
    format!("{value:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use predict_algorithms::PageRankWorkload;
    use predict_sampling::BiasedRandomJump;

    #[test]
    fn result_table_renders_and_aligns() {
        let mut t = ResultTable::new("Test", &["dataset", "error"]);
        t.push_row(vec!["Wiki".into(), "+10.0%".into()]);
        t.push_row(vec!["UK".into(), "-3.2%".into()]);
        let rendered = t.render();
        assert!(rendered.contains("Test"));
        assert!(rendered.contains("Wiki"));
        assert!(rendered.contains("-3.2%"));
    }

    #[test]
    fn pct_and_ms_format() {
        assert_eq!(pct(0.123), "+12.3%");
        assert_eq!(pct(-0.05), "-5.0%");
        assert_eq!(pct(f64::INFINITY), "inf");
        assert_eq!(ms(12.34), "12.3");
    }

    #[test]
    fn small_scale_sweep_produces_points() {
        // A minimal end-to-end exercise of the sweep machinery at Small scale
        // with a single dataset and ratio, so the harness itself is covered by
        // `cargo test`.
        std::env::set_var("PREDICT_SCALE", "small");
        let points = prediction_sweep(
            &[Dataset::Wikipedia],
            &[0.1],
            Arc::new(BiasedRandomJump::default()),
            HistoryMode::SampleRunsOnly,
            &|g| Box::new(PageRankWorkload::with_epsilon(0.01, g.num_vertices())),
            &|ratio| PredictorConfig::single_ratio(ratio).with_seed(EXPERIMENT_SEED),
        );
        std::env::remove_var("PREDICT_SCALE");
        assert_eq!(points.len(), 1);
        let p = &points[0];
        assert_eq!(p.dataset, "Wiki");
        assert!(p.predicted_iterations > 0);
        assert!(p.actual_iterations > 0);
        assert!(p.predicted_runtime_ms > 0.0);
    }
}
