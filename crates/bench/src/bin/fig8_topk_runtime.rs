//! Figure 8: relative error of the predicted runtime for top-k ranking.
//!
//! Same protocol as Figure 7 (sample-runs-only versus history-augmented cost
//! model training), applied to the top-k ranking workload whose per-iteration
//! runtime varies with the number of messages sent.

use predict_algorithms::{TopKParams, TopKWorkload};
use predict_bench::{
    pct, prediction_sweep, HistoryMode, PredictionPoint, ResultTable, EXPERIMENT_SEED,
    PAPER_SAMPLING_RATIOS,
};
use predict_core::PredictorConfig;
use predict_graph::datasets::Dataset;
use predict_sampling::{BiasedRandomJump, Sampler};
use std::sync::Arc;

fn sweep(history: HistoryMode) -> Vec<PredictionPoint> {
    let sampler: Arc<dyn Sampler> = Arc::new(BiasedRandomJump::default());
    let datasets = [Dataset::LiveJournal, Dataset::Wikipedia, Dataset::Uk2002];
    prediction_sweep(
        &datasets,
        &PAPER_SAMPLING_RATIOS,
        Arc::clone(&sampler),
        history,
        &|_g| Box::new(TopKWorkload::new(TopKParams::new(5, 0.001), 0.01)),
        &|ratio| {
            PredictorConfig {
                sampling_ratio: ratio,
                training_ratios: vec![0.05, 0.1, 0.15, 0.2],
                ..PredictorConfig::default()
            }
            .with_seed(EXPERIMENT_SEED)
        },
    )
}

fn main() {
    let _obs = predict_bench::observability_guard();
    let without_history = sweep(HistoryMode::SampleRunsOnly);
    let with_history = sweep(HistoryMode::WithHistory);

    let mut table = ResultTable::new(
        "Figure 8: predicting runtime for top-k ranking (a: sample runs, b: + history)",
        &[
            "training",
            "dataset",
            "ratio",
            "pred ms",
            "actual ms",
            "runtime error",
            "R^2 (train)",
        ],
    );
    for (label, points) in [
        ("sample-only", &without_history),
        ("with-history", &with_history),
    ] {
        for p in points {
            table.push_row(vec![
                label.to_string(),
                p.dataset.clone(),
                format!("{:.2}", p.ratio),
                format!("{:.0}", p.predicted_runtime_ms),
                format!("{:.0}", p.actual_runtime_ms),
                pct(p.runtime_error),
                format!("{:.3}", p.cost_model_r_squared),
            ]);
        }
    }
    let payload = serde_json::json!({
        "sample_only": without_history,
        "with_history": with_history,
    });
    table.emit("fig8_topk_runtime", &payload);
}
