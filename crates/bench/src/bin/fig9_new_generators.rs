//! Figure 9 extension: sampling-technique sensitivity on the new generators.
//!
//! Figure 9 of the paper compares BRJ / RJ / MHRW on the UK web analog; this
//! binary runs the same comparison on the datasets *outside* the paper's
//! power-law regime — the grid road network, the bipartite web graph and the
//! degree-corrected block model — using the PageRank iteration-prediction
//! pipeline. These are the structures where the techniques genuinely
//! diverge: BRJ's hub bias has nothing to grab on a road grid, alternates
//! sides on a bipartite graph, and tends to stay inside dense DC-SBM
//! communities, so the iteration error spread across techniques is the
//! interesting output.

use predict_algorithms::{PageRankWorkload, Workload};
use predict_bench::{
    pct, prediction_sweep, HistoryMode, PredictionPoint, ResultTable, EXPERIMENT_SEED,
};
use predict_core::PredictorConfig;
use predict_graph::datasets::Dataset;
use predict_graph::CsrGraph;
use predict_sampling::{BiasedRandomJump, Mhrw, RandomJump, Sampler};
use std::sync::Arc;

/// Ratios swept per technique (a subset of the paper's x-axis keeps the
/// 3 datasets x 3 techniques sweep fast enough for CI's golden diff).
const RATIOS: [f64; 3] = [0.05, 0.1, 0.2];

fn sweep(sampler: Arc<dyn Sampler>) -> Vec<PredictionPoint> {
    prediction_sweep(
        &Dataset::EXTENDED,
        &RATIOS,
        sampler,
        HistoryMode::SampleRunsOnly,
        &|g: &CsrGraph| -> Box<dyn Workload> {
            Box::new(PageRankWorkload::with_epsilon(0.01, g.num_vertices()))
        },
        &|ratio| PredictorConfig::single_ratio(ratio).with_seed(EXPERIMENT_SEED),
    )
}

fn main() {
    let _obs = predict_bench::observability_guard();
    let samplers: [(&str, Arc<dyn Sampler>); 3] = [
        ("BRJ", Arc::new(BiasedRandomJump::default())),
        ("RJ", Arc::new(RandomJump::default())),
        ("MHRW", Arc::new(Mhrw::default())),
    ];

    let mut table = ResultTable::new(
        "Figure 9 (extended): sampling sensitivity on road/bipartite/DC-SBM analogs",
        &[
            "dataset",
            "sampler",
            "ratio",
            "pred iters",
            "actual iters",
            "iter error",
            "runtime error",
        ],
    );
    let mut payload = Vec::new();
    for (sampler_name, sampler) in &samplers {
        let points = sweep(Arc::clone(sampler));
        for p in &points {
            table.push_row(vec![
                p.dataset.clone(),
                sampler_name.to_string(),
                format!("{:.2}", p.ratio),
                p.predicted_iterations.to_string(),
                p.actual_iterations.to_string(),
                pct(p.iteration_error),
                pct(p.runtime_error),
            ]);
        }
        payload.push(serde_json::json!({
            "workload": "PR",
            "sampler": sampler_name,
            "points": points,
        }));
    }
    table.emit("fig9_new_generators", &payload);
}
