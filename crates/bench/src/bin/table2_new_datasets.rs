//! Table 2 extension: characteristics of the datasets beyond the paper.
//!
//! The paper's Table 2 covers four power-law-adjacent web/social graphs; this
//! binary prints the same characteristics table for the extended analogs the
//! reproduction adds — the grid road network (huge diameter, no hubs), the
//! bipartite web graph (two-mode mixture distribution) and the
//! degree-corrected block model (communities plus heavy tails). Together with
//! `fig9_new_generators` it documents how far outside the paper's regime the
//! prediction pipeline is exercised.

use predict_bench::{experiment_scale, ResultTable};
use predict_graph::datasets::{dataset_summary, Dataset};

fn main() {
    let _obs = predict_bench::observability_guard();
    let scale = experiment_scale();
    let rows = dataset_summary(&Dataset::EXTENDED, scale);

    let mut table = ResultTable::new(
        "Table 2 (extended): datasets beyond the paper's regime",
        &[
            "Name",
            "Prefix",
            "Nodes",
            "Edges",
            "Size [MB]",
            "Avg degree",
            "Scale-free?",
            "Eff. diameter",
            "Power-law alpha",
            "Largest WCC",
        ],
    );
    for row in &rows {
        table.push_row(vec![
            row.dataset.name().to_string(),
            row.prefix.to_string(),
            row.num_vertices.to_string(),
            row.num_edges.to_string(),
            format!("{:.1}", row.size_bytes as f64 / 1_048_576.0),
            format!("{:.1}", row.num_edges as f64 / row.num_vertices as f64),
            if row.properties.looks_scale_free() {
                "yes"
            } else {
                "no"
            }
            .to_string(),
            format!("{:.1}", row.properties.effective_diameter),
            format!("{:.2}", row.properties.power_law_alpha),
            format!("{:.2}", row.properties.largest_wcc_fraction),
        ]);
    }

    let points: Vec<_> = rows
        .iter()
        .map(|r| {
            serde_json::json!({
                "dataset": r.prefix,
                "nodes": r.num_vertices,
                "edges": r.num_edges,
                "size_bytes": r.size_bytes,
                "scale_free": r.properties.looks_scale_free(),
                "effective_diameter": r.properties.effective_diameter,
                "largest_wcc_fraction": r.properties.largest_wcc_fraction,
            })
        })
        .collect();
    table.emit("table2_new_datasets", &points);
}
