//! Table 3: runtime of sample runs versus actual runs.
//!
//! For the paper's workload/dataset pairs — PageRank on UK and Twitter,
//! semi-clustering on UK, connected components on Twitter, top-k ranking and
//! neighborhood estimation on UK — report the simulated end-to-end runtime of
//! sample runs at ratios 0.01, 0.1 and 0.2 next to the actual run (ratio 1.0),
//! plus the overhead percentage of the 10% sample run.

use predict_algorithms::{
    ConnectedComponentsWorkload, NeighborhoodWorkload, PageRankWorkload, SemiClusteringParams,
    SemiClusteringWorkload, TopKParams, TopKWorkload, Workload,
};
use predict_bench::{ms, prediction_sweep, HistoryMode, ResultTable, EXPERIMENT_SEED};
use predict_core::PredictorConfig;
use predict_graph::datasets::Dataset;
use predict_graph::CsrGraph;
use predict_sampling::{BiasedRandomJump, Sampler};
use std::sync::Arc;

fn main() {
    let _obs = predict_bench::observability_guard();
    let sampler: Arc<dyn Sampler> = Arc::new(BiasedRandomJump::default());
    let ratios = [0.01, 0.1, 0.2];

    type WorkloadFactory = Box<dyn Fn(&CsrGraph) -> Box<dyn Workload>>;
    let cases: Vec<(&str, Dataset, WorkloadFactory)> = vec![
        (
            "PR (UK)",
            Dataset::Uk2002,
            Box::new(|g: &CsrGraph| {
                Box::new(PageRankWorkload::with_epsilon(0.001, g.num_vertices()))
                    as Box<dyn Workload>
            }),
        ),
        (
            "PR (TW)",
            Dataset::Twitter,
            Box::new(|g: &CsrGraph| {
                Box::new(PageRankWorkload::with_epsilon(0.001, g.num_vertices()))
                    as Box<dyn Workload>
            }),
        ),
        (
            "SC (UK)",
            Dataset::Uk2002,
            Box::new(|_: &CsrGraph| {
                Box::new(SemiClusteringWorkload::new(SemiClusteringParams::default()))
                    as Box<dyn Workload>
            }),
        ),
        (
            "CC (TW)",
            Dataset::Twitter,
            Box::new(|_: &CsrGraph| Box::new(ConnectedComponentsWorkload) as Box<dyn Workload>),
        ),
        (
            "TOP-K (UK)",
            Dataset::Uk2002,
            Box::new(|_: &CsrGraph| {
                Box::new(TopKWorkload::new(TopKParams::new(5, 0.001), 0.01)) as Box<dyn Workload>
            }),
        ),
        (
            "NH (UK)",
            Dataset::Uk2002,
            Box::new(|_: &CsrGraph| Box::new(NeighborhoodWorkload::default()) as Box<dyn Workload>),
        ),
    ];

    let mut table = ResultTable::new(
        "Table 3: simulated runtime of sample runs (SR = 0.01, 0.1, 0.2) vs actual runs (SR = 1.0), in ms",
        &["workload", "SR=0.01", "SR=0.1", "SR=0.2", "SR=1.0 (actual)", "overhead @0.1"],
    );
    let mut payload = Vec::new();
    for (label, dataset, factory) in &cases {
        let points = prediction_sweep(
            &[*dataset],
            &ratios,
            Arc::clone(&sampler),
            HistoryMode::SampleRunsOnly,
            factory.as_ref(),
            &|ratio| PredictorConfig::single_ratio(ratio).with_seed(EXPERIMENT_SEED),
        );
        let by_ratio = |r: f64| {
            points
                .iter()
                .find(|p| (p.ratio - r).abs() < 1e-9)
                .map(|p| p.sample_total_ms)
                .unwrap_or(f64::NAN)
        };
        let actual = points
            .first()
            .map(|p| p.actual_total_ms)
            .unwrap_or(f64::NAN);
        let overhead = by_ratio(0.1) / actual;
        table.push_row(vec![
            label.to_string(),
            ms(by_ratio(0.01)),
            ms(by_ratio(0.1)),
            ms(by_ratio(0.2)),
            ms(actual),
            format!("{:.1}%", overhead * 100.0),
        ]);
        payload.push(serde_json::json!({
            "workload": label,
            "sample_ms": {"0.01": by_ratio(0.01), "0.1": by_ratio(0.1), "0.2": by_ratio(0.2)},
            "actual_ms": actual,
            "overhead_at_0.1": overhead,
        }));
    }
    table.emit("table3_overhead", &payload);
}
