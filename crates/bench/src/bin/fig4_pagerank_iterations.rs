//! Figure 4: relative error of the predicted number of iterations for
//! PageRank, as a function of the sampling ratio.
//!
//! The paper sweeps sampling ratios 0.01–0.25 on all four datasets, with the
//! convergence threshold `τ = ε / N` for tolerance levels `ε = 0.01` (top
//! plot) and `ε = 0.001` (bottom plot), BRJ sampling and the default transform
//! (`τ_S = τ_G / sr`).

use predict_algorithms::PageRankWorkload;
use predict_bench::{
    pct, prediction_sweep, HistoryMode, PredictionPoint, ResultTable, EXPERIMENT_SEED,
    PAPER_SAMPLING_RATIOS,
};
use predict_core::PredictorConfig;
use predict_graph::datasets::Dataset;
use predict_sampling::{BiasedRandomJump, Sampler};
use std::sync::Arc;

fn main() {
    let _obs = predict_bench::observability_guard();
    let sampler: Arc<dyn Sampler> = Arc::new(BiasedRandomJump::default());
    let mut all_points: Vec<(f64, Vec<PredictionPoint>)> = Vec::new();

    for &epsilon in &[0.01, 0.001] {
        let points = prediction_sweep(
            &Dataset::ALL,
            &PAPER_SAMPLING_RATIOS,
            Arc::clone(&sampler),
            HistoryMode::SampleRunsOnly,
            &move |g| Box::new(PageRankWorkload::with_epsilon(epsilon, g.num_vertices())),
            &|ratio| PredictorConfig::single_ratio(ratio).with_seed(EXPERIMENT_SEED),
        );
        all_points.push((epsilon, points));
    }

    let mut table = ResultTable::new(
        "Figure 4: predicting iterations for PageRank (BRJ sampling)",
        &[
            "epsilon",
            "dataset",
            "ratio",
            "pred iters",
            "actual iters",
            "rel. error",
        ],
    );
    for (epsilon, points) in &all_points {
        for p in points {
            table.push_row(vec![
                format!("{epsilon}"),
                p.dataset.clone(),
                format!("{:.2}", p.ratio),
                p.predicted_iterations.to_string(),
                p.actual_iterations.to_string(),
                pct(p.iteration_error),
            ]);
        }
    }
    let flat: Vec<_> = all_points
        .iter()
        .flat_map(|(e, pts)| {
            pts.iter()
                .map(move |p| serde_json::json!({"epsilon": e, "point": p}))
        })
        .collect();
    table.emit("fig4_pagerank_iterations", &flat);
}
