//! Trace viewer: renders a Chrome trace-event file produced via
//! `PREDICT_TRACE` as a text timeline plus a metrics table.
//!
//! Any scenario binary exports a trace when the knob is set:
//!
//! ```text
//! PREDICT_TRACE=target/experiments/fig4.trace.json fig4_pagerank_iterations
//! trace_view target/experiments/fig4.trace.json
//! ```
//!
//! The timeline groups events by thread and indents by span nesting
//! (recomputed from the event intervals, exactly as chrome://tracing stacks
//! complete events), so the service → session → superstep → phase structure
//! is readable without leaving the terminal. The metrics table renders the
//! snapshot the trace guard embedded under the file's `metrics` key:
//! counters, gauges, and histogram count/p50/p90/p99 (quantiles are bucket
//! upper bounds, in microseconds for `*_ns` instruments).
//!
//! By default long timelines are truncated to the first
//! [`DEFAULT_EVENT_CAP`] events; pass `--full` to print everything.

use serde::Value;

/// Events printed before the timeline truncates without `--full`.
const DEFAULT_EVENT_CAP: usize = 200;

/// One decoded trace event (only the fields the viewer needs).
struct Event {
    name: String,
    ts_us: f64,
    dur_us: f64,
    tid: u64,
    args: Vec<(String, String)>,
}

fn lookup<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn as_f64(value: &Value) -> Option<f64> {
    match value {
        Value::UInt(v) => Some(*v as f64),
        Value::Int(v) => Some(*v as f64),
        Value::Float(v) => Some(*v),
        _ => None,
    }
}

fn as_u64(value: &Value) -> Option<u64> {
    match value {
        Value::UInt(v) => Some(*v),
        Value::Int(v) if *v >= 0 => Some(*v as u64),
        _ => None,
    }
}

fn render_arg(value: &Value) -> String {
    match value {
        Value::Str(s) => s.clone(),
        other => serde_json::to_string(other).unwrap_or_default(),
    }
}

fn decode_events(root: &[(String, Value)]) -> Vec<Event> {
    let Some(Value::Seq(items)) = lookup(root, "traceEvents") else {
        return Vec::new();
    };
    items
        .iter()
        .filter_map(|item| {
            let Value::Map(map) = item else { return None };
            Some(Event {
                name: match lookup(map, "name")? {
                    Value::Str(s) => s.clone(),
                    _ => return None,
                },
                ts_us: as_f64(lookup(map, "ts")?)?,
                dur_us: as_f64(lookup(map, "dur")?)?,
                tid: as_u64(lookup(map, "tid")?)?,
                args: match lookup(map, "args") {
                    Some(Value::Map(args)) => args
                        .iter()
                        .map(|(k, v)| (k.clone(), render_arg(v)))
                        .collect(),
                    _ => Vec::new(),
                },
            })
        })
        .collect()
}

/// Prints the per-thread timeline, indenting by nesting depth. Depth is
/// recomputed from the intervals: a span nests under every span on the same
/// thread whose interval still covers its start.
fn print_timeline(mut events: Vec<Event>, full: bool) {
    events.sort_by(|a, b| {
        (a.tid, a.ts_us)
            .partial_cmp(&(b.tid, b.ts_us))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    println!("== timeline ({} events) ==", events.len());
    let mut current_tid = None;
    let mut open_ends: Vec<f64> = Vec::new();
    for (printed, event) in events.iter().enumerate() {
        if printed >= DEFAULT_EVENT_CAP && !full {
            println!(
                "... {} more events (pass --full to print all)",
                events.len() - printed
            );
            break;
        }
        if current_tid != Some(event.tid) {
            current_tid = Some(event.tid);
            open_ends.clear();
            println!("-- thread {} --", event.tid);
        }
        // Epsilon guards float round-trip of equal open/close timestamps.
        open_ends.retain(|&end| end > event.ts_us + 1e-9);
        let indent = "  ".repeat(open_ends.len());
        let args = if event.args.is_empty() {
            String::new()
        } else {
            let rendered: Vec<String> =
                event.args.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!("  [{}]", rendered.join(" "))
        };
        println!(
            "{indent}{} @{:.1}us +{:.1}us{args}",
            event.name, event.ts_us, event.dur_us
        );
        open_ends.push(event.ts_us + event.dur_us);
    }
}

/// Prints the embedded metrics snapshot: counters and gauges as name/value
/// rows, histograms with count and bucket-derived quantiles.
fn print_metrics(root: &[(String, Value)]) {
    let Some(Value::Map(metrics)) = lookup(root, "metrics") else {
        println!("\n(no metrics snapshot embedded in this trace)");
        return;
    };
    println!("\n== metrics ==");
    for section in ["counters", "gauges"] {
        let Some(Value::Seq(items)) = lookup(metrics, section) else {
            continue;
        };
        for item in items {
            let Value::Map(map) = item else { continue };
            let (Some(Value::Str(name)), Some(value)) = (lookup(map, "name"), lookup(map, "value"))
            else {
                continue;
            };
            println!("{name:<28} {}", as_u64(value).unwrap_or(0));
        }
    }
    let Some(Value::Seq(items)) = lookup(metrics, "histograms") else {
        return;
    };
    println!(
        "\n{:<28} {:>8} {:>10} {:>10} {:>10}",
        "histogram", "count", "p50_us", "p90_us", "p99_us"
    );
    for item in items {
        let Value::Map(map) = item else { continue };
        let (Some(Value::Str(name)), Some(edges), Some(buckets), Some(count)) = (
            lookup(map, "name"),
            lookup(map, "edges"),
            lookup(map, "buckets"),
            lookup(map, "count"),
        ) else {
            continue;
        };
        let decode_seq = |value: &Value| -> Vec<u64> {
            match value {
                Value::Seq(items) => items.iter().filter_map(as_u64).collect(),
                _ => Vec::new(),
            }
        };
        let snapshot = predict_obs::metrics::HistogramSnapshot {
            name: name.clone(),
            edges: decode_seq(edges),
            buckets: decode_seq(buckets),
            count: as_u64(count).unwrap_or(0),
            sum: 0,
        };
        let q = |quantile: Option<f64>| match quantile {
            Some(v) if v.is_finite() => format!("{:.1}", v / 1e3),
            Some(_) => "inf".to_string(),
            None => "-".to_string(),
        };
        println!(
            "{:<28} {:>8} {:>10} {:>10} {:>10}",
            snapshot.name,
            snapshot.count,
            q(snapshot.p50()),
            q(snapshot.p90()),
            q(snapshot.p99()),
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        predict_obs::diag!(
            Error,
            "usage: trace_view <trace.json> [--full]\n\
             produce a trace with PREDICT_TRACE=<path> on any scenario binary"
        );
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            predict_obs::diag!(Error, "could not read {path}: {e}");
            std::process::exit(1);
        }
    };
    let root: Value = match serde_json::from_str(&text) {
        Ok(root) => root,
        Err(e) => {
            predict_obs::diag!(Error, "{path} is not valid trace JSON: {e}");
            std::process::exit(1);
        }
    };
    let Value::Map(root) = root else {
        predict_obs::diag!(Error, "{path}: top level is not a JSON object");
        std::process::exit(1);
    };
    print_timeline(decode_events(&root), full);
    print_metrics(&root);
}
