//! Scenario runner: executes every figure/table experiment binary and diffs
//! its JSON output against the golden files under `crates/bench/golden/`.
//!
//! Every stage of the reproduction is deterministic — fixed experiment seeds,
//! a seeded simulated cluster clock, and a BSP runtime that is byte-identical
//! at every thread count — so each experiment's JSON is a stable artifact.
//! The goldens pin them: any engine, sampling or prediction change that
//! shifts a single byte of any figure shows up as a diff here, which is what
//! lets the runtime be refactored aggressively (ROADMAP "Experiment harness
//! scenarios").
//!
//! Usage:
//!
//! ```text
//! scenario_runner                # run all scenarios, diff against goldens
//! scenario_runner --bless        # run all scenarios, (re)write the goldens
//! scenario_runner fig4 table3    # only scenarios whose name contains a filter
//! scenario_runner --expect-warm  # additionally assert a warm store answered
//! ```
//!
//! `--expect-warm` requires `PREDICT_STORE` to point at a directory a prior
//! pass already populated: every scenario must still match its golden *and*
//! its `[store-summary]` stderr line (emitted by the experiment harness when
//! the knob is set) must report zero engine runs — the warm pass answered
//! entirely from the persistent artifact store, byte-identically, without
//! re-executing a single stored sample or actual run.
//!
//! Scenarios execute at `PREDICT_SCALE=small` (goldens are small-scale
//! artifacts; override by exporting `PREDICT_SCALE` yourself) and honor
//! `PREDICT_THREADS` and `PREDICT_TRANSPORT`, so CI can assert that 1-thread
//! and 4-thread sweeps — and the in-memory, in-process, OS-process and
//! Unix-domain-socket transports — all produce the same goldens. The summary table carries a
//! transport column recording which transport each scenario ran under, and a
//! scenario that dies mid-run (e.g. a killed cluster worker) surfaces the
//! tail of its stderr, which includes the worker id, superstep and worker
//! stderr carried by the structured cluster error. Exit code: 0 when every
//! scenario matches, 1 on any mismatch or missing golden.

use std::path::{Path, PathBuf};
use std::process::Command;

/// The figure/table experiment binaries; each emits
/// `target/experiments/<name>.json`.
const SCENARIOS: [&str; 15] = [
    "fig4_pagerank_iterations",
    "fig5_semiclustering_iterations",
    "fig6_topk_features",
    "fig7_semiclustering_runtime",
    "fig8_topk_runtime",
    "fig9_sampling_sensitivity",
    "fig9_new_generators",
    "table2_datasets",
    "table2_new_datasets",
    "table3_overhead",
    "ablation_critical_path",
    "ablation_extrapolation",
    "ablation_transform",
    "semiclustering_sensitivity",
    "upper_bounds",
];

/// Directory of this binary's sibling experiment binaries.
fn bin_dir() -> PathBuf {
    let mut exe = std::env::current_exe().expect("current exe path");
    exe.pop();
    exe
}

/// The golden directory, resolved relative to the crate at compile time so
/// the runner works from any working directory inside the repo.
fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("golden")
}

/// A finished scenario child: its experiment JSON plus its stderr (which
/// carries the `[store-summary]` line when `PREDICT_STORE` is set).
struct ScenarioRun {
    json: String,
    stderr: String,
}

fn run_scenario(name: &str) -> Result<ScenarioRun, String> {
    let bin = bin_dir().join(name);
    let scale = std::env::var("PREDICT_SCALE").unwrap_or_else(|_| "small".to_string());
    let output = Command::new(&bin)
        .env("PREDICT_SCALE", &scale)
        .output()
        .map_err(|e| format!("could not launch {}: {e}", bin.display()))?;
    if !output.status.success() {
        // Surface the tail of the child's stderr so a CI failure is
        // debuggable without a local repro. Cluster-transport failures land
        // here too: a killed worker aborts the experiment with a structured
        // error naming the worker, the superstep and the worker's own stderr
        // tail, so the tail is deep enough to carry all of it.
        let stderr = String::from_utf8_lossy(&output.stderr);
        let tail: Vec<&str> = stderr.lines().rev().take(20).collect();
        let tail: Vec<&str> = tail.into_iter().rev().collect();
        return Err(format!(
            "{name} exited with {}; stderr tail:\n  {}",
            output.status,
            tail.join("\n  ")
        ));
    }
    let json_path = predict_bench::output_dir().join(format!("{name}.json"));
    let json = std::fs::read_to_string(&json_path)
        .map_err(|e| format!("{name} produced no {}: {e}", json_path.display()))?;
    Ok(ScenarioRun {
        json,
        stderr: String::from_utf8_lossy(&output.stderr).into_owned(),
    })
}

/// The engine-run count a child's `[store-summary]` stderr line reported,
/// or an error when the line is absent or unparseable (the harness only
/// emits it when `PREDICT_STORE` is set).
fn summary_bsp_runs(stderr: &str) -> Result<u64, String> {
    let line = stderr
        .lines()
        .rev()
        .find_map(|l| l.trim().strip_prefix("[store-summary] "))
        .ok_or_else(|| "no [store-summary] line on stderr (is PREDICT_STORE set?)".to_string())?;
    let runs = line
        .split("\"bsp_runs\":")
        .nth(1)
        .and_then(|rest| {
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            digits.parse::<u64>().ok()
        })
        .ok_or_else(|| format!("unparseable store summary: {line}"))?;
    Ok(runs)
}

/// First line on which two strings differ, for a readable mismatch report.
fn first_divergence(a: &str, b: &str) -> String {
    for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            return format!("line {}: golden `{la}` vs actual `{lb}`", i + 1);
        }
    }
    format!(
        "line count: golden {} vs actual {}",
        a.lines().count(),
        b.lines().count()
    )
}

/// Number of lines that differ between two outputs (length mismatch counts
/// the excess), quantifying a diff's blast radius in the summary table.
fn divergent_lines(a: &str, b: &str) -> usize {
    let differing = a.lines().zip(b.lines()).filter(|(la, lb)| la != lb).count();
    differing + a.lines().count().abs_diff(b.lines().count())
}

/// Outcome of one scenario, collected for the end-of-run summary table.
struct Outcome {
    name: &'static str,
    /// `OK` / `BLESSED` / a short failure description.
    status: String,
    failed: bool,
}

/// Prints the aligned status-per-scenario table every run ends with, so a CI
/// log shows the full blast radius of a golden mismatch at a glance instead
/// of only the first diff encountered. The transport column records which
/// executor produced each artifact — goldens are transport-independent, so
/// the same table must read `ok` under every column value.
fn print_summary(outcomes: &[Outcome], transport: &str) {
    let width = outcomes.iter().map(|o| o.name.len()).max().unwrap_or(8);
    let twidth = transport.len().max("transport".len());
    println!("\n== scenario summary ==");
    println!(
        "{:<width$}  stat  {:<twidth$}  detail",
        "scenario", "transport"
    );
    for o in outcomes {
        println!(
            "{:<width$}  {}  {:<twidth$}  {}",
            o.name,
            if o.failed { "FAIL" } else { "ok  " },
            transport,
            o.status
        );
    }
    let failures = outcomes.iter().filter(|o| o.failed).count();
    println!("\n{} scenario(s), {} failure(s)", outcomes.len(), failures);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bless = args.iter().any(|a| a == "--bless");
    let expect_warm = args.iter().any(|a| a == "--expect-warm");
    if expect_warm && predict_bsp::env_store_path().is_none() {
        predict_obs::diag!(Error, "--expect-warm requires PREDICT_STORE to be set");
        std::process::exit(1);
    }
    let filters: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let selected: Vec<&str> = SCENARIOS
        .iter()
        .copied()
        .filter(|name| filters.is_empty() || filters.iter().any(|f| name.contains(f.as_str())))
        .collect();
    if selected.is_empty() {
        predict_obs::diag!(Error, "no scenario matches the given filters");
        std::process::exit(1);
    }

    // The transport every child scenario inherits through the environment;
    // parsed with the same knob rules the engine itself applies.
    let transport = predict_bsp::env_transport().name();
    println!("transport: {transport} (set PREDICT_TRANSPORT=inmem|inproc|process)");

    let golden = golden_dir();
    if bless {
        std::fs::create_dir_all(&golden).expect("create golden dir");
    }

    // Every selected scenario runs to completion — a diff in one bin never
    // hides diffs in the others — and the run ends with a summary table plus
    // a non-zero exit when anything diverged.
    let mut outcomes: Vec<Outcome> = Vec::with_capacity(selected.len());
    for name in &selected {
        let run = match run_scenario(name) {
            Ok(run) => run,
            Err(e) => {
                println!("[FAIL] {name}: {e}");
                outcomes.push(Outcome {
                    name,
                    status: "did not produce output".to_string(),
                    failed: true,
                });
                continue;
            }
        };
        let actual = run.json;
        // Warm-store assertion: a pass against a populated store must not
        // have executed a single engine run — all artifacts came from disk.
        if expect_warm {
            match summary_bsp_runs(&run.stderr) {
                Ok(0) => {}
                Ok(runs) => {
                    println!("[FAIL] {name}: warm pass executed {runs} engine run(s)");
                    outcomes.push(Outcome {
                        name,
                        status: format!("warm pass executed {runs} engine run(s)"),
                        failed: true,
                    });
                    continue;
                }
                Err(e) => {
                    println!("[FAIL] {name}: {e}");
                    outcomes.push(Outcome {
                        name,
                        status: e,
                        failed: true,
                    });
                    continue;
                }
            }
        }
        let golden_path = golden.join(format!("{name}.json"));
        if bless {
            std::fs::write(&golden_path, &actual).expect("write golden");
            println!("[BLESS] {name} -> {}", golden_path.display());
            outcomes.push(Outcome {
                name,
                status: "BLESSED".to_string(),
                failed: false,
            });
            continue;
        }
        match std::fs::read_to_string(&golden_path) {
            Ok(expected) if expected == actual => {
                println!("[OK] {name}");
                outcomes.push(Outcome {
                    name,
                    status: "matches golden".to_string(),
                    failed: false,
                });
            }
            Ok(expected) => {
                println!(
                    "[FAIL] {name}: output differs from {} ({})",
                    golden_path.display(),
                    first_divergence(&expected, &actual)
                );
                outcomes.push(Outcome {
                    name,
                    status: format!(
                        "{} divergent line(s); first: {}",
                        divergent_lines(&expected, &actual),
                        first_divergence(&expected, &actual)
                    ),
                    failed: true,
                });
            }
            Err(_) => {
                println!(
                    "[FAIL] {name}: missing golden {} (run with --bless to create)",
                    golden_path.display()
                );
                outcomes.push(Outcome {
                    name,
                    status: "missing golden (run with --bless)".to_string(),
                    failed: true,
                });
            }
        }
    }

    print_summary(&outcomes, transport);
    if outcomes.iter().any(|o| o.failed) {
        std::process::exit(1);
    }
}
