//! Docs link checker: fails CI when a relative Markdown link is broken.
//!
//! `cargo doc -D warnings` already guards rustdoc's intra-doc links; this
//! binary covers the repository-level Markdown (`README.md`,
//! `docs/ARCHITECTURE.md`, `ROADMAP.md`, and the rest of the checked-in
//! `.md` files) so the architecture book cannot silently rot as files move.
//!
//! Checked per file:
//!
//! * inline links/images `[label](target)` whose target is **relative**
//!   (anything that is not `http(s)://`, `mailto:` or a pure `#anchor`)
//!   must point at an existing file or directory, resolved against the
//!   linking file's directory; `#fragment` suffixes are stripped first;
//! * reference definitions `[label]: target` get the same treatment.
//!
//! Exit code: 0 when every link resolves, 1 otherwise (each broken link is
//! reported as `file: target`). Usage: `docs_links [repo_root]` — the root
//! defaults to the workspace root two levels above this crate's manifest.

use std::path::{Path, PathBuf};

/// Markdown files checked, relative to the repository root. Kept explicit so
/// the gate's coverage is reviewable; extend when new top-level docs land.
const DOC_FILES: [&str; 9] = [
    "README.md",
    "ROADMAP.md",
    "CHANGES.md",
    "PAPER.md",
    "PAPERS.md",
    "SNIPPETS.md",
    "ISSUE.md",
    "docs/ARCHITECTURE.md",
    "vendor/README.md",
];

/// Extracts candidate link targets from one Markdown line: inline
/// `](target)` occurrences plus leading `[label]: target` reference
/// definitions. A tiny scanner, not a Markdown parser — good enough for the
/// repository's hand-written docs, and it never panics on weird input.
fn extract_targets(line: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i + 1 < bytes.len() {
        if bytes[i] == b']' && bytes[i + 1] == b'(' {
            if let Some(close) = line[i + 2..].find(')') {
                // A CommonMark link may carry a quoted title after the
                // target; only the first whitespace-delimited token is the
                // path.
                let inner = &line[i + 2..i + 2 + close];
                targets.push(inner.split_whitespace().next().unwrap_or("").to_string());
            }
        }
        i += 1;
    }
    // Reference definition: `[label]: target` at line start.
    let trimmed = line.trim_start();
    if trimmed.starts_with('[') {
        if let Some(end) = trimmed.find("]:") {
            let target = trimmed[end + 2..].trim();
            if !target.is_empty() {
                targets.push(target.split_whitespace().next().unwrap_or("").to_string());
            }
        }
    }
    targets
}

/// True when `target` is a relative path this checker should resolve.
fn is_relative_target(target: &str) -> bool {
    !(target.is_empty()
        || target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:")
        || target.starts_with('#'))
}

fn main() {
    let root: PathBuf = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .canonicalize()
                .expect("workspace root resolves")
        });

    let mut checked_files = 0usize;
    let mut checked_links = 0usize;
    let mut broken: Vec<String> = Vec::new();

    for rel in DOC_FILES {
        let path = root.join(rel);
        let Ok(text) = std::fs::read_to_string(&path) else {
            // A listed doc that does not exist is itself a broken link.
            broken.push(format!("{rel}: file missing"));
            continue;
        };
        checked_files += 1;
        let dir = path.parent().expect("doc file has a parent directory");
        let mut in_code_fence = false;
        for line in text.lines() {
            if line.trim_start().starts_with("```") {
                in_code_fence = !in_code_fence;
                continue;
            }
            if in_code_fence {
                continue;
            }
            for target in extract_targets(line) {
                if !is_relative_target(&target) {
                    continue;
                }
                let file_part = target.split('#').next().unwrap_or("");
                if file_part.is_empty() {
                    continue;
                }
                checked_links += 1;
                if !dir.join(file_part).exists() {
                    broken.push(format!("{rel}: {target}"));
                }
            }
        }
    }

    eprintln!("[docs-links] {checked_links} relative link(s) across {checked_files} file(s)");
    if broken.is_empty() {
        eprintln!("[docs-links] OK");
    } else {
        eprintln!("[docs-links] broken link(s):");
        for b in &broken {
            eprintln!("  {b}");
        }
        std::process::exit(1);
    }
}
