//! Perf probe: the CI perf-tracking gate for the graph-substrate hot paths.
//!
//! PREDIcT's premise is that sample runs are cheap relative to the full run,
//! so sampler walks and CSR/subgraph construction are *the* overhead the
//! paper's Table 3 budgets. This binary times exactly those paths on pinned
//! deterministic inputs (an R-MAT web-graph analog and a 2-D grid road
//! network) and turns the numbers into a machine-readable trajectory:
//!
//! * every run writes `BENCH_PR4.json` — an array of
//!   `{bench, median_ns, graph, commit}` entries (median of
//!   `PERF_PROBE_REPEATS` repeats, default 9);
//! * when a checked-in baseline (`crates/bench/perf_baseline.json`) exists,
//!   the run **fails (exit 1) if any bench regressed more than 1.5x**
//!   against it (override the factor with `PERF_PROBE_MAX_REGRESSION`) —
//!   the `perf` CI job runs this on every push;
//! * `--bless` (re)writes the baseline from the current run, which is how the
//!   baseline follows intentional hardware or algorithm changes.
//!
//! Usage:
//!
//! ```text
//! perf_probe                # measure, write BENCH_PR4.json, gate vs baseline
//! perf_probe --bless        # measure and (re)write the baseline
//! perf_probe --out foo.json # override the report path
//! ```
//!
//! Timings are wall-clock and therefore hardware-dependent; the 1.5x gate is
//! deliberately loose so that only genuine algorithmic regressions (not
//! machine noise) trip it. The workloads are pinned by seed, so the *work*
//! measured is identical across runs and machines.

use predict_algorithms::{ConnectedComponentsWorkload, PageRankWorkload, TopKWorkload, Workload};
use predict_bsp::{BspConfig, BspEngine, GraphStorage, PartitionStrategy, PoolMode};
use predict_core::{PredictRequest, PredictService, PredictorConfig};
use predict_graph::generators::{generate_grid_road, generate_rmat, GridRoadConfig, RmatConfig};
use predict_graph::{induced_subgraph, CsrGraph, EdgeList, VertexId};
use predict_sampling::{BiasedRandomJump, ForestFire, Mhrw, RandomEdge, RandomJump, Sampler};
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Seed for every pinned probe input; changing it invalidates the baseline.
const PROBE_SEED: u64 = 0xBE;

/// Default regression threshold of the CI gate: fail when `median_ns`
/// exceeds the baseline by more than this factor. Override with the
/// `PERF_PROBE_MAX_REGRESSION` environment variable — the baseline is
/// hardware-specific, so a runner-class change may need a looser factor
/// until the baseline is re-blessed from that hardware's own artifact.
const DEFAULT_REGRESSION_FACTOR: f64 = 1.5;

fn regression_factor() -> f64 {
    std::env::var("PERF_PROBE_MAX_REGRESSION")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&f: &f64| f.is_finite() && f >= 1.0)
        .unwrap_or(DEFAULT_REGRESSION_FACTOR)
}

/// One measured probe, in the schema the issue pins:
/// `{bench, median_ns, graph, commit}`.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct ProbeResult {
    /// Name of the timed path (e.g. `csr_build`, `sampler_BRJ`).
    bench: String,
    /// Median wall-clock nanoseconds over the configured repeats.
    median_ns: u64,
    /// The pinned input graph the bench ran on.
    graph: String,
    /// Commit the numbers were measured at (`GITHUB_SHA`, `git rev-parse`,
    /// or `unknown`).
    commit: String,
}

/// Times `f` `repeats` times and returns the median in nanoseconds.
fn median_ns<T>(repeats: usize, mut f: impl FnMut() -> T) -> u64 {
    let mut samples: Vec<u64> = (0..repeats)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn repeats() -> usize {
    std::env::var("PERF_PROBE_REPEATS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(9)
}

fn commit() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The checked-in baseline path, resolved relative to the crate so the gate
/// works from any working directory inside the repo.
fn baseline_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("perf_baseline.json")
}

/// One pinned input: a name plus the graph and the raw (duplicate-preserving)
/// edge list the construction benches rebuild from.
struct ProbeInput {
    name: &'static str,
    graph: CsrGraph,
    raw_edges: EdgeList,
}

fn probe_inputs() -> Vec<ProbeInput> {
    let mut inputs = Vec::new();

    // Power-law web/social analog: the paper's primary regime (Table 2).
    let rmat_cfg = RmatConfig::new(14, 8)
        .with_seed(PROBE_SEED)
        .keep_duplicates();
    let rmat_raw = generate_rmat(&rmat_cfg).to_edge_list();
    let rmat = generate_rmat(&RmatConfig::new(14, 8).with_seed(PROBE_SEED));
    inputs.push(ProbeInput {
        name: "rmat_s14_d8",
        graph: rmat,
        raw_edges: rmat_raw,
    });

    // High-diameter, hub-free regime: the grid road network.
    let cfg = GridRoadConfig::new(128, 128).with_seed(PROBE_SEED);
    let graph = generate_grid_road(&cfg);
    let raw_edges = graph.to_edge_list();
    inputs.push(ProbeInput {
        name: "grid_128x128",
        graph,
        raw_edges,
    });

    inputs
}

fn run_probes() -> Vec<ProbeResult> {
    let reps = repeats();
    let commit = commit();
    let mut results = Vec::new();
    let mut push = |bench: &str, graph: &str, ns: u64| {
        eprintln!("[probe] {bench:<18} {graph:<14} {ns:>12} ns");
        results.push(ProbeResult {
            bench: bench.to_string(),
            median_ns: ns,
            graph: graph.to_string(),
            commit: commit.clone(),
        });
    };

    for input in &probe_inputs() {
        let g = &input.graph;
        let raw = &input.raw_edges;
        let n = g.num_vertices();

        // CSR placement from a raw (duplicate-preserving) edge list.
        let unified_build_ns = median_ns(reps, || CsrGraph::from_edge_list(raw));
        push("csr_build", input.name, unified_build_ns);
        // The same edge list placed directly into one `ShardedCsr` per
        // worker (8 workers, the default engine configuration) — the
        // storage path that never materializes a unified allocation. The
        // `perf` CI job compares this row against `csr_build` in its
        // uploaded artifact.
        let sharded_build_ns = median_ns(reps, || {
            GraphStorage::shard_edge_list(raw, 8, PartitionStrategy::Hash)
        });
        push("sharded_csr_build", input.name, sharded_build_ns);
        eprintln!(
            "[probe] sharded/unified construction on {}: {:.2}x",
            input.name,
            sharded_build_ns as f64 / unified_build_ns.max(1) as f64
        );
        // Deduplication, the sort-shaped part of graph ingest.
        push(
            "edge_dedup",
            input.name,
            median_ns(reps, || {
                let mut el = raw.clone();
                el.dedup();
                el
            }),
        );
        // Full ingest (dedup + placement): the `GraphBuilder::build` path
        // every generator takes.
        push(
            "csr_ingest",
            input.name,
            median_ns(reps, || {
                let mut el = raw.clone();
                el.dedup();
                CsrGraph::from_edge_list(&el)
            }),
        );
        // Undirected mirroring (mirror + dedup), the semi-clustering ingest path.
        push(
            "to_undirected",
            input.name,
            median_ns(reps, || raw.to_undirected()),
        );
        // Induced-subgraph extraction on a pinned 20% vertex set.
        let selected: Vec<VertexId> =
            BiasedRandomJump::default().sample_vertices(g, 0.2, PROBE_SEED);
        push(
            "subgraph_extract",
            input.name,
            median_ns(reps, || induced_subgraph(g, &selected)),
        );

        // Every walk-based sampler at the paper's headline 10% ratio.
        let samplers: [(&str, &dyn Sampler); 5] = [
            ("sampler_BRJ", &BiasedRandomJump::default()),
            ("sampler_RJ", &RandomJump::default()),
            ("sampler_MHRW", &Mhrw::default()),
            ("sampler_FF", &ForestFire::default()),
            ("sampler_RE", &RandomEdge),
        ];
        for (name, sampler) in samplers {
            push(
                name,
                input.name,
                median_ns(reps, || sampler.sample_vertices(g, 0.1, PROBE_SEED)),
            );
        }
        let _ = n;
    }

    // Warm-service probe: batches scheduled onto the persistent worker pool.
    // `pool_warm_batch` tracks the latency of a fully cached 3-request batch
    // (pure service/scheduling overhead — no engine work); the companion
    // `pool_warm_batch_spawns` row records how many OS threads those warm
    // batches spawned, and hard-asserts the tentpole contract: **zero**.
    {
        use std::sync::Arc;
        let graph = Arc::new(generate_rmat(&RmatConfig::new(11, 8).with_seed(PROBE_SEED)));
        let engine = BspEngine::new(BspConfig::with_workers(4).with_pool(PoolMode::On));
        let service = PredictService::new(engine.clone(), Arc::new(BiasedRandomJump::default()));
        let config = PredictorConfig::single_ratio(0.1);
        let requests: Vec<PredictRequest> = [
            Arc::new(PageRankWorkload::with_epsilon(0.01, graph.num_vertices()))
                as Arc<dyn Workload>,
            Arc::new(TopKWorkload::default()),
            Arc::new(ConnectedComponentsWorkload),
        ]
        .into_iter()
        .map(|w| PredictRequest::new("probe", Arc::clone(&graph), w).with_config(config.clone()))
        .collect();
        // Warm every cache (and the pool) before timing.
        for r in service.submit_batch(&requests, requests.len()) {
            r.expect("warm-up prediction failed");
        }
        let spawned_after_warmup = engine.pool_threads_spawned();
        push(
            "pool_warm_batch",
            "rmat_s11_d8",
            median_ns(reps, || {
                for r in service.submit_batch(&requests, requests.len()) {
                    r.expect("warm prediction failed");
                }
            }),
        );
        let warm_spawns = engine.pool_threads_spawned() - spawned_after_warmup;
        assert_eq!(
            warm_spawns, 0,
            "warm submit_batch spawned {warm_spawns} threads; the pool contract is zero"
        );
        push("pool_warm_batch_spawns", "rmat_s11_d8", warm_spawns);
    }

    // Observability probes: the disabled tracer and the metrics counters sit
    // on the engine's hottest paths (every superstep, every pool task), so
    // the gate pins their cost. Each repeat batches 1000 operations — the
    // per-op cost is a handful of nanoseconds, far below timer resolution.
    {
        push(
            "span_noop",
            "disabled_x1000",
            median_ns(reps, || {
                for _ in 0..1000 {
                    black_box(predict_obs::trace::span("probe.noop"));
                }
            }),
        );
        let counter = predict_obs::registry().counter("probe.counter");
        push(
            "counter_incr",
            "cached_x1000",
            median_ns(reps, || {
                for _ in 0..1000 {
                    counter.incr();
                }
            }),
        );
    }

    // Persistent-store probes: artifact publish/read on a pinned sample-graph
    // payload, and the warm-restart path — a fresh session answering a
    // prediction entirely from a populated store (provenance bind + four
    // disk reads, zero engine runs). `warm_restart_predict` is the perf
    // contract behind `PREDICT_STORE`: restarting a service must be
    // disk-read cheap, not recompute expensive.
    {
        use predict_core::{ArtifactKind, ArtifactStore, Predictor};
        use std::sync::Arc;
        let dir = std::env::temp_dir().join(format!("predict_perf_store_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(ArtifactStore::open(&dir).expect("open probe store"));
        let graph = Arc::new(generate_rmat(&RmatConfig::new(11, 8).with_seed(PROBE_SEED)));
        push(
            "store_put",
            "rmat_s11_d8",
            median_ns(reps, || {
                store
                    .put(ArtifactKind::Sample, "probe", 1, graph.as_ref())
                    .expect("probe put succeeds")
            }),
        );
        push(
            "store_get",
            "rmat_s11_d8",
            median_ns(reps, || {
                store
                    .get_typed::<CsrGraph>(ArtifactKind::Sample, "probe", 1)
                    .expect("probe get hits")
            }),
        );

        let workload = PageRankWorkload::with_epsilon(0.01, graph.num_vertices());
        let config = PredictorConfig::single_ratio(0.1);
        let session = |engine: BspEngine| {
            Predictor::builder()
                .engine(engine)
                .sampler(BiasedRandomJump::default())
                .config(config.clone())
                .store_arc(Arc::clone(&store))
                .bind(Arc::clone(&graph), "probe_restart")
        };
        // Populate the store once, then time restarts: every repeat is a
        // brand-new engine and session, warm only through the filesystem.
        session(BspEngine::new(BspConfig::with_workers(4)))
            .predict(&workload)
            .expect("cold populate succeeds");
        let warm_engine = BspEngine::new(BspConfig::with_workers(4));
        push(
            "warm_restart_predict",
            "rmat_s11_d8",
            median_ns(reps, || {
                session(warm_engine.clone())
                    .predict(&workload)
                    .expect("warm restart predict succeeds")
            }),
        );
        assert_eq!(
            warm_engine.runs_executed(),
            0,
            "warm restarts must execute zero engine runs"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Cluster transport probes: the wire format's encode/decode cost on a
    // representative PageRank message batch, and the channel transport's
    // whole-run overhead against the in-memory executor on an identical
    // pinned PageRank run (same graph, same convergence, byte-identical
    // output — the delta is pure framing + scheduling cost).
    {
        use predict_algorithms::{PageRank, PageRankParams};
        use predict_cluster::{
            decode_exact, drive, encode_to_vec, DriveOptions, ProgramSpec, TransportKind, WireBatch,
        };

        // A dense-ish batch: 4096 destination vertices, 4 f64 messages each,
        // the shape a hub-heavy R-MAT superstep produces.
        let batch = WireBatch::<f64> {
            superstep: 3,
            src: 1,
            dst: 2,
            seq: 7,
            runs: (0..4096u32)
                .map(|v| (v, vec![0.25f64, 0.5, 0.125, 0.0625]))
                .collect(),
        };
        let bytes = encode_to_vec(&batch);
        eprintln!("[probe] wire batch payload: {} bytes", bytes.len());
        push(
            "wire_encode_batch",
            "pagerank_4096x4",
            median_ns(reps, || encode_to_vec(&batch)),
        );
        push(
            "wire_decode_batch",
            "pagerank_4096x4",
            median_ns(reps, || {
                decode_exact::<WireBatch<f64>>(&bytes).expect("round-trip decodes")
            }),
        );

        // One framed round trip of that batch over a Unix-domain socket
        // pair (send the payload, read a tiny ack): the per-frame kernel
        // cost the socket backend adds on top of encode/decode. An echo
        // thread plays the worker so the single-threaded probe can never
        // deadlock on a full socket buffer.
        {
            use predict_cluster::protocol::{read_frame, tag, write_frame};
            use std::io::BufReader;
            use std::os::unix::net::UnixStream;

            let (driver_side, worker_side) = UnixStream::pair().expect("socket pair");
            let echo = std::thread::spawn(move || {
                let mut reader =
                    BufReader::new(worker_side.try_clone().expect("clone echo socket"));
                let mut writer = worker_side;
                while let Ok(Some((frame_tag, _))) = read_frame(&mut reader) {
                    if frame_tag == tag::SHUTDOWN {
                        break;
                    }
                    write_frame(&mut writer, frame_tag, &[1]).expect("echo ack");
                }
            });
            let mut reader = BufReader::new(driver_side.try_clone().expect("clone probe socket"));
            let mut writer = driver_side;
            push(
                "wire_roundtrip_socket",
                "pagerank_4096x4",
                median_ns(reps, || {
                    write_frame(&mut writer, tag::VALUES, &bytes).expect("frame sent");
                    read_frame(&mut reader)
                        .expect("ack read")
                        .expect("ack frame")
                }),
            );
            write_frame(&mut writer, tag::SHUTDOWN, &[]).expect("shutdown echo thread");
            echo.join().expect("echo thread exits");
        }

        let graph = generate_rmat(&RmatConfig::new(10, 8).with_seed(PROBE_SEED));
        let params = PageRankParams::with_epsilon(0.01, graph.num_vertices());
        let program = PageRank::new(params);
        let config = BspConfig::with_workers(4);
        let engine = BspEngine::new(config.clone());
        let inmem_ns = median_ns(reps, || engine.run(&graph, &program));
        push("bsp_run_inmem", "rmat_s10_d8", inmem_ns);
        let spec = ProgramSpec::PageRank { params };
        let opts = DriveOptions::new(TransportKind::InProc);
        // Warm the worker pool so the probe times steady-state supersteps,
        // not thread spawns.
        drive(&program, &spec, &[], &graph, &config, &opts).expect("warm-up drive succeeds");
        let inproc_ns = median_ns(reps, || {
            drive(&program, &spec, &[], &graph, &config, &opts).expect("inproc drive succeeds")
        });
        push("bsp_run_inproc", "rmat_s10_d8", inproc_ns);
        eprintln!(
            "[probe] inproc/in-memory run overhead on rmat_s10_d8: {:.2}x",
            inproc_ns as f64 / inmem_ns.max(1) as f64
        );
        // The identical run over Unix-domain socket workers: real processes,
        // real kernel round trips per superstep. Warmed so the pooled group
        // (not process spawns) is what gets timed.
        let socket_opts = DriveOptions::new(TransportKind::Socket);
        drive(&program, &spec, &[], &graph, &config, &socket_opts)
            .expect("warm-up socket drive succeeds");
        let socket_ns = median_ns(reps, || {
            drive(&program, &spec, &[], &graph, &config, &socket_opts)
                .expect("socket drive succeeds")
        });
        push("bsp_run_socket", "rmat_s10_d8", socket_ns);
        eprintln!(
            "[probe] socket/in-memory run overhead on rmat_s10_d8: {:.2}x",
            socket_ns as f64 / inmem_ns.max(1) as f64
        );
    }
    results
}

/// Compares `current` against the baseline; returns the regression report
/// lines (empty = gate passes).
fn regressions(current: &[ProbeResult], baseline: &[ProbeResult]) -> Vec<String> {
    let max_factor = regression_factor();
    let mut failures = Vec::new();
    for cur in current {
        let Some(base) = baseline
            .iter()
            .find(|b| b.bench == cur.bench && b.graph == cur.graph)
        else {
            // New benches have no baseline yet; they gate from the next bless.
            continue;
        };
        let factor = cur.median_ns as f64 / (base.median_ns.max(1)) as f64;
        if factor > max_factor {
            failures.push(format!(
                "{} on {}: {} ns -> {} ns ({factor:.2}x > {max_factor}x)",
                cur.bench, cur.graph, base.median_ns, cur.median_ns
            ));
        }
    }
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bless = args.iter().any(|a| a == "--bless");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_PR4.json"));

    let results = run_probes();
    let json = serde_json::to_string_pretty(&results).expect("serialize probe results");
    std::fs::write(&out_path, &json).expect("write probe report");
    eprintln!("[saved] {}", out_path.display());

    let baseline = baseline_path();
    if bless {
        std::fs::write(&baseline, &json).expect("write baseline");
        eprintln!("[bless] {}", baseline.display());
        return;
    }
    match std::fs::read_to_string(&baseline) {
        Ok(text) => {
            let base: Vec<ProbeResult> =
                serde_json::from_str(&text).expect("parse perf baseline JSON");
            let failures = regressions(&results, &base);
            if failures.is_empty() {
                eprintln!(
                    "[gate] no bench regressed more than {}x; OK",
                    regression_factor()
                );
            } else {
                eprintln!("[gate] perf regressions against {}:", baseline.display());
                for f in &failures {
                    eprintln!("  {f}");
                }
                eprintln!("(re-baseline intentional changes with `perf_probe --bless`)");
                std::process::exit(1);
            }
        }
        Err(_) => {
            eprintln!(
                "[gate] no baseline at {} (run with --bless to create); skipping gate",
                baseline.display()
            );
        }
    }
}
