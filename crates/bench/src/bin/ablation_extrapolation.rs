//! Ablation: extrapolation rule (per-feature vs single-factor).
//!
//! Section 3.4 of the paper extrapolates vertex-dependent features by the
//! vertex ratio and message-dependent features by the edge ratio. This
//! ablation compares that per-feature rule against scaling everything by only
//! the vertex ratio or only the edge ratio, measured by the runtime prediction
//! error of top-k ranking.

use predict_algorithms::{TopKParams, TopKWorkload};
use predict_bench::{pct, prediction_sweep, HistoryMode, ResultTable, EXPERIMENT_SEED};
use predict_core::{ExtrapolationRule, PredictorConfig};
use predict_graph::datasets::Dataset;
use predict_sampling::{BiasedRandomJump, Sampler};
use std::sync::Arc;

fn main() {
    let _obs = predict_bench::observability_guard();
    let sampler: Arc<dyn Sampler> = Arc::new(BiasedRandomJump::default());
    let ratios = [0.05, 0.1, 0.2];
    let datasets = [Dataset::Wikipedia, Dataset::Uk2002];

    let mut table = ResultTable::new(
        "Ablation: extrapolation rule (top-k ranking runtime prediction)",
        &[
            "rule",
            "dataset",
            "ratio",
            "pred ms",
            "actual ms",
            "runtime error",
        ],
    );
    let mut payload = Vec::new();
    for (label, rule) in [
        ("per-feature (paper)", ExtrapolationRule::PerFeature),
        ("vertices-only", ExtrapolationRule::VerticesOnly),
        ("edges-only", ExtrapolationRule::EdgesOnly),
    ] {
        let points = prediction_sweep(
            &datasets,
            &ratios,
            Arc::clone(&sampler),
            HistoryMode::SampleRunsOnly,
            &|_g| Box::new(TopKWorkload::new(TopKParams::new(5, 0.001), 0.01)),
            &move |ratio| {
                let mut config = PredictorConfig {
                    sampling_ratio: ratio,
                    training_ratios: vec![0.05, 0.1, 0.15, 0.2],
                    ..PredictorConfig::default()
                }
                .with_seed(EXPERIMENT_SEED);
                config.extrapolation_rule = rule;
                config
            },
        );
        for p in &points {
            table.push_row(vec![
                label.to_string(),
                p.dataset.clone(),
                format!("{:.2}", p.ratio),
                format!("{:.0}", p.predicted_runtime_ms),
                format!("{:.0}", p.actual_runtime_ms),
                pct(p.runtime_error),
            ]);
        }
        payload.push(serde_json::json!({"rule": label, "points": points}));
    }
    table.emit("ablation_extrapolation", &payload);
}
