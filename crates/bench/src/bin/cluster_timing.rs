//! Cluster timing: simulated versus measured superstep cost.
//!
//! The whole reproduction runs on a *simulated* cluster clock — the paper's
//! cost-model inputs are deterministic per-superstep times derived from the
//! Table 1 counters. The cluster subsystem adds the first *measured* numbers
//! in the stack: a transport-backed run records the driver-observed wall
//! time of every superstep round plus per-worker compute time and serialized
//! bytes on the wire. This experiment drives the same pinned PageRank run
//! through the in-process channel transport and the OS-process transport and
//! prints both timelines side by side, which is what lets the simulated cost
//! model be sanity-checked against an actual message-passing execution.
//!
//! The run's *results* are byte-identical across transports (runtime
//! determinism contract point 8); only the timing columns differ. Measured
//! wall-clock numbers vary run to run and machine to machine, so this
//! binary is deliberately **not** one of the golden `scenario_runner`
//! scenarios — it is a report, not a regression artifact.
//!
//! Pass `--json` to dump the full per-transport [`MeasuredRun`]s (plus the
//! derived timing summaries) as machine-readable JSON on stdout instead of
//! the table, so measured timings can be diffed across runs and machines.

use predict_algorithms::{PageRank, PageRankParams};
use predict_bench::{experiment_scale, load_dataset, ResultTable};
use predict_bsp::{BspConfig, MeasuredRun, RunProfile};
use predict_cluster::{drive, DriveOptions, ProgramSpec, TransportKind};
use predict_graph::datasets::Dataset;
use serde::Serialize;

/// One transport's entry in the `--json` dump: the derived summary plus the
/// raw measured run it came from.
#[derive(Debug, Serialize)]
struct JsonEntry {
    timing: TransportTiming,
    measured: MeasuredRun,
}

/// Everything the report records for one transport's run.
#[derive(Debug, Serialize)]
struct TransportTiming {
    transport: String,
    supersteps: usize,
    /// Simulated superstep-phase time from the cluster clock (ms).
    simulated_superstep_ms: f64,
    /// Measured superstep-phase wall time as seen by the driver (ms).
    measured_superstep_ms: f64,
    /// Measured wall time of the whole run, setup through value collection (ms).
    measured_total_ms: f64,
    /// Total serialized bytes that crossed the wire.
    wire_bytes: u64,
    /// Raw remote message payload bytes from the Table 1 counters — the
    /// bytes the simulated clock's network term charges for.
    remote_payload_bytes: u64,
    /// Per-superstep `(simulated_ms, measured_ms)` pairs.
    per_superstep: Vec<(f64, f64)>,
}

fn timing_of(profile: &RunProfile, measured: &MeasuredRun) -> TransportTiming {
    let per_superstep: Vec<(f64, f64)> = profile
        .supersteps
        .iter()
        .zip(&measured.supersteps)
        .map(|(sim, m)| (sim.wall_time_ms, m.wall_ns as f64 / 1e6))
        .collect();
    let remote_payload_bytes = profile
        .supersteps
        .iter()
        .flat_map(|s| &s.workers)
        .map(|w| w.remote_message_bytes)
        .sum();
    TransportTiming {
        transport: measured.transport.clone(),
        supersteps: profile.supersteps.len(),
        simulated_superstep_ms: profile.superstep_phase_ms(),
        measured_superstep_ms: measured.superstep_phase_ms(),
        measured_total_ms: measured.total_wall_ns as f64 / 1e6,
        wire_bytes: measured.total_wire_bytes(),
        remote_payload_bytes,
        per_superstep,
    }
}

fn main() {
    let _obs = predict_bench::observability_guard();
    let json = std::env::args().skip(1).any(|a| a == "--json");
    let scale = experiment_scale();
    let graph = load_dataset(Dataset::LiveJournal, scale);
    let params = PageRankParams::with_epsilon(0.01, graph.num_vertices());
    let program = PageRank::new(params);
    let spec = ProgramSpec::PageRank { params };
    let config = BspConfig::with_workers(4);

    let mut table = ResultTable::new(
        "Simulated vs measured superstep cost (PageRank on LJ analog)",
        &[
            "transport",
            "supersteps",
            "sim superstep ms",
            "meas superstep ms",
            "meas total ms",
            "wire KB",
        ],
    );
    let mut points: Vec<TransportTiming> = Vec::new();
    let mut measured_runs: Vec<MeasuredRun> = Vec::new();

    for kind in [
        TransportKind::InProc,
        TransportKind::Process,
        TransportKind::Socket,
    ] {
        let opts = DriveOptions::new(kind);
        let result =
            drive(&program, &spec, &[], &graph, &config, &opts).expect("cluster drive succeeds");
        let measured = result
            .profile
            .measured
            .as_ref()
            .expect("transport-backed runs record measured timings");
        let timing = timing_of(&result.profile, measured);
        table.push_row(vec![
            timing.transport.clone(),
            timing.supersteps.to_string(),
            format!("{:.3}", timing.simulated_superstep_ms),
            format!("{:.3}", timing.measured_superstep_ms),
            format!("{:.3}", timing.measured_total_ms),
            format!("{:.1}", timing.wire_bytes as f64 / 1024.0),
        ]);
        points.push(timing);
        measured_runs.push(measured.clone());
    }

    // The determinism contract makes the simulated columns transport-
    // independent; assert it so the report can't silently drift.
    for p in &points[1..] {
        assert_eq!(
            points[0].simulated_superstep_ms, p.simulated_superstep_ms,
            "simulated timings must be identical across transports"
        );
        assert_eq!(points[0].supersteps, p.supersteps);
        // Serialized frames are deterministic, so measured wire bytes are a
        // transport-independent property of the run — pipes and sockets must
        // report the same count, superstep by superstep.
        assert_eq!(
            points[0].wire_bytes, p.wire_bytes,
            "measured wire bytes must be identical across transports"
        );
        assert_eq!(points[0].remote_payload_bytes, p.remote_payload_bytes);
    }
    // Network-term validation: the bytes the simulated clock charges for
    // (raw remote message payloads) must be covered by — and never exceed —
    // what actually crossed the socket; framing, counters and aggregates
    // only ever add bytes on top of the payload.
    for p in &points {
        assert!(
            p.wire_bytes >= p.remote_payload_bytes,
            "{}: measured wire bytes ({}) below the simulated network term's \
             payload bytes ({})",
            p.transport,
            p.wire_bytes,
            p.remote_payload_bytes
        );
    }
    eprintln!(
        "[cluster_timing] network term: {} remote payload bytes, {} measured wire bytes \
         ({:.2}x framing overhead), identical across {} transports",
        points[0].remote_payload_bytes,
        points[0].wire_bytes,
        points[0].wire_bytes as f64 / points[0].remote_payload_bytes.max(1) as f64,
        points.len()
    );

    if json {
        let entries: Vec<JsonEntry> = points
            .into_iter()
            .zip(measured_runs)
            .map(|(timing, measured)| JsonEntry { timing, measured })
            .collect();
        let payload = serde_json::to_string_pretty(&entries).expect("measured timings serialize");
        println!("{payload}");
    } else {
        table.emit("cluster_timing", &points);
    }
}
