//! Section 5.1, "Upper Bound Estimates": analytical iteration bounds versus
//! the iterations PageRank actually needs.
//!
//! The Langville & Meyer bound `log10(ε) / log10(d)` ignores the input
//! dataset, so the paper shows it over-estimates the measured iteration count
//! by 2–3.5x; PREDIcT's sample-run estimate is far tighter. This binary
//! reports the bound, the actual iteration count on every dataset analog, and
//! PREDIcT's estimate from a 10% BRJ sample.

use predict_algorithms::PageRankWorkload;
use predict_bench::{
    experiment_engine, experiment_scale, load_dataset, ResultTable, EXPERIMENT_SEED,
};
use predict_core::{bounds::pagerank_iteration_upper_bound, PredictService, PredictorConfig};
use predict_graph::datasets::Dataset;
use predict_sampling::BiasedRandomJump;
use std::sync::Arc;

fn main() {
    let _obs = predict_bench::observability_guard();
    let scale = experiment_scale();
    let service = PredictService::new(experiment_engine(), Arc::new(BiasedRandomJump::default()));
    let damping = 0.85;

    // One cached session per dataset: the 10% sample is drawn once and the
    // actual runs are cached per workload configuration.
    let sessions: Vec<_> = Dataset::ALL
        .iter()
        .map(|&dataset| {
            let graph = Arc::new(load_dataset(dataset, scale));
            (dataset, service.session_for(dataset.prefix(), &graph))
        })
        .collect();

    let mut table = ResultTable::new(
        "Upper bound estimates: analytical bound vs actual vs PREDIcT (PageRank, d = 0.85)",
        &[
            "epsilon",
            "dataset",
            "analytical bound",
            "actual iters",
            "bound / actual",
            "PREDIcT iters (10% sample)",
        ],
    );
    let mut payload = Vec::new();
    for &epsilon in &[0.1, 0.01, 0.001] {
        let bound = pagerank_iteration_upper_bound(epsilon, damping);
        for (dataset, session) in &sessions {
            let dataset = *dataset;
            let workload = PageRankWorkload::with_epsilon(epsilon, session.graph().num_vertices());
            let actual = session.actual_run(&workload);
            let predicted = session
                .predict_with(
                    &workload,
                    &PredictorConfig::single_ratio(0.1).with_seed(EXPERIMENT_SEED),
                )
                .map(|p| p.predicted_iterations)
                .unwrap_or(0);
            table.push_row(vec![
                format!("{epsilon}"),
                dataset.prefix().to_string(),
                bound.to_string(),
                actual.iterations().to_string(),
                format!("{:.1}x", bound as f64 / actual.iterations() as f64),
                predicted.to_string(),
            ]);
            payload.push(serde_json::json!({
                "epsilon": epsilon,
                "dataset": dataset.prefix(),
                "analytical_bound": bound,
                "actual_iterations": actual.iterations(),
                "predict_iterations": predicted,
            }));
        }
    }
    table.emit("upper_bounds", &payload);
}
