//! Ablation: prediction with and without the transform function.
//!
//! The paper's motivating example (Figure 2 / section 1.1) argues that a
//! sampling technique alone cannot preserve the number of iterations — the
//! convergence threshold must also be rescaled. This ablation runs the
//! PageRank iteration-prediction experiment twice: once with the default
//! transform (`τ_S = τ_G / sr`) and once with the identity transform
//! (`τ_S = τ_G`), showing how badly iteration prediction degrades without it.

use predict_algorithms::PageRankWorkload;
use predict_bench::{pct, prediction_sweep, HistoryMode, ResultTable, EXPERIMENT_SEED};
use predict_core::{PredictorConfig, TransformFunction};
use predict_graph::datasets::Dataset;
use predict_sampling::{BiasedRandomJump, Sampler};
use std::sync::Arc;

fn main() {
    let _obs = predict_bench::observability_guard();
    let sampler: Arc<dyn Sampler> = Arc::new(BiasedRandomJump::default());
    let ratios = [0.05, 0.1, 0.2];
    let datasets = [Dataset::Wikipedia, Dataset::Uk2002];
    let epsilon = 0.001;

    let mut table = ResultTable::new(
        "Ablation: PageRank iteration prediction with vs without the transform function",
        &[
            "transform",
            "dataset",
            "ratio",
            "pred iters",
            "actual iters",
            "iter error",
        ],
    );
    let mut payload = Vec::new();
    for (label, transform) in [
        ("default (tau/sr)", None),
        ("identity (no scaling)", Some(TransformFunction::identity())),
    ] {
        let points = prediction_sweep(
            &datasets,
            &ratios,
            Arc::clone(&sampler),
            HistoryMode::SampleRunsOnly,
            &move |g| Box::new(PageRankWorkload::with_epsilon(epsilon, g.num_vertices())),
            &move |ratio| {
                let mut config = PredictorConfig::single_ratio(ratio).with_seed(EXPERIMENT_SEED);
                config.transform = transform;
                config
            },
        );
        for p in &points {
            table.push_row(vec![
                label.to_string(),
                p.dataset.clone(),
                format!("{:.2}", p.ratio),
                p.predicted_iterations.to_string(),
                p.actual_iterations.to_string(),
                pct(p.iteration_error),
            ]);
        }
        payload.push(serde_json::json!({"transform": label, "points": points}));
    }
    table.emit("ablation_transform", &payload);
}
