//! Load driver: concurrent scheduler-query generator for the prediction
//! service, measuring cold-store vs warm-store tail latency.
//!
//! The paper positions PREDIcT as a service a scheduler consults for SLA
//! feasibility and capacity planning. This binary drives that deployment
//! shape under load: a pinned scenario (four small dataset analogs × three
//! workloads × a spread of predictor seeds) is fired at a [`PredictService`]
//! by many concurrent client threads, twice —
//!
//! 1. **cold phase**: a fresh service against an *empty* store directory, so
//!    every unique query computes its artifacts (and writes them through);
//! 2. **warm phase**: a brand-new service (empty in-memory caches, fresh
//!    engine) against the *same* directory — a simulated process restart —
//!    so every unique query is answered from disk without a single engine
//!    execution.
//!
//! Each phase reports request count, wall-clock throughput, p50/p99/p999
//! latency, and the store's read/hit/write counters for the phase (hit-rate
//! is honest: it counts disk hits, not in-memory cache hits — see
//! `SessionStats::store_hits`). The report is printed as a table and saved
//! machine-readable to `target/experiments/load_driver.json`, which CI
//! uploads next to `BENCH_PR4.json`.
//!
//! Usage:
//!
//! ```text
//! load_driver                        # closed loop, 2000 requests, 8 clients
//! load_driver --requests 5000       # more load
//! load_driver --clients 16          # wider closed loop
//! load_driver --open --rate 500     # open loop at 500 requests/second
//! load_driver --store DIR           # explicit store dir (default: temp)
//! load_driver --keep-store          # skip the cold wipe (measure twice warm)
//! load_driver --check-speedup 2.0   # exit 1 unless warm p99 ≥ 2x better
//! ```
//!
//! Closed loop (default): each client fires its next request the moment the
//! previous one returns — measures the service at saturation. Open loop
//! (`--open`): requests are released on a fixed schedule at `--rate` per
//! second and latency includes queueing delay behind slow responses — the
//! coordinated-omission-free view a real scheduler would see.

use predict_algorithms::{ConnectedComponentsWorkload, PageRankWorkload, TopKWorkload, Workload};
use predict_core::{PredictRequest, PredictService, PredictServiceConfig, PredictorConfig};
use predict_graph::datasets::{Dataset, DatasetConfig, DatasetScale};
use predict_sampling::BiasedRandomJump;
use serde::Serialize;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Seed spread per (dataset, workload) pair: each distinct seed is a
/// distinct artifact chain in the store, so the pinned scenario exercises
/// `datasets × workloads × SEEDS_PER_PAIR` unique store entries.
const SEEDS_PER_PAIR: u64 = 4;

/// The pinned query mix: every request the driver can fire, in a fixed
/// order. Clients walk this list round-robin, so any request count covers
/// the unique set as evenly as possible.
fn build_requests() -> Vec<PredictRequest> {
    let datasets = [
        Dataset::LiveJournal,
        Dataset::Wikipedia,
        Dataset::Twitter,
        Dataset::Uk2002,
    ];
    let mut requests = Vec::new();
    for dataset in datasets {
        let graph = Arc::new(DatasetConfig::new(dataset, DatasetScale::Small).generate());
        let workloads: [Arc<dyn Workload>; 3] = [
            Arc::new(PageRankWorkload::with_epsilon(0.01, graph.num_vertices())),
            Arc::new(TopKWorkload::default()),
            Arc::new(ConnectedComponentsWorkload),
        ];
        for workload in workloads {
            for seed in 0..SEEDS_PER_PAIR {
                requests.push(
                    PredictRequest::new(
                        dataset.prefix(),
                        Arc::clone(&graph),
                        Arc::clone(&workload),
                    )
                    .with_config(
                        PredictorConfig::single_ratio(0.1)
                            .with_seed(predict_bench::EXPERIMENT_SEED + seed),
                    ),
                );
            }
        }
    }
    requests
}

/// Latency percentile over a sorted sample set (nearest-rank).
fn percentile_us(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Per-phase report, serialized into `load_driver.json`.
#[derive(Debug, Clone, Serialize)]
struct PhaseReport {
    phase: String,
    mode: String,
    requests: usize,
    errors: usize,
    clients: usize,
    wall_ms: f64,
    throughput_rps: f64,
    p50_us: u64,
    p99_us: u64,
    p999_us: u64,
    max_us: u64,
    /// Engine runs this phase executed (0 on a fully warm phase).
    bsp_runs: u64,
    store_reads: u64,
    store_hits: u64,
    store_writes: u64,
    /// Disk hits / disk reads for this phase; `None` when nothing was read.
    store_hit_rate: Option<f64>,
}

/// Process-global counter values the phase accounting diffs.
#[derive(Clone, Copy)]
struct Counters {
    bsp_runs: u64,
    store_reads: u64,
    store_hits: u64,
    store_writes: u64,
}

fn counters_now() -> Counters {
    let snapshot = predict_obs::registry().snapshot();
    let counter = |name: &str| snapshot.counter(name).unwrap_or(0);
    Counters {
        bsp_runs: counter("bsp.runs"),
        store_reads: counter("store.reads"),
        store_hits: counter("store.hits"),
        store_writes: counter("store.writes"),
    }
}

struct DriverOptions {
    requests: usize,
    clients: usize,
    open_loop: bool,
    rate_per_sec: f64,
}

/// Fires `opts.requests` queries at `service` and collects per-request
/// latencies. Closed loop: `opts.clients` threads race down a shared
/// request counter. Open loop: request *i* is released at `i / rate`
/// seconds after phase start and its latency includes any queueing delay.
fn drive_phase(
    name: &str,
    service: &PredictService,
    pool: &[PredictRequest],
    opts: &DriverOptions,
) -> PhaseReport {
    let before = counters_now();
    let next = AtomicUsize::new(0);
    let errors = AtomicUsize::new(0);
    let start = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.clients)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= opts.requests {
                            break;
                        }
                        let request = &pool[i % pool.len()];
                        // Open loop: wait for this request's scheduled
                        // release; latency is measured from the *schedule*,
                        // charging queueing delay to slow responses.
                        let scheduled = if opts.open_loop {
                            let at = Duration::from_secs_f64(i as f64 / opts.rate_per_sec);
                            let now = start.elapsed();
                            if at > now {
                                std::thread::sleep(at - now);
                            }
                            at
                        } else {
                            start.elapsed()
                        };
                        if service.submit(request).is_err() {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                        let done = start.elapsed();
                        local.push(done.saturating_sub(scheduled).as_micros() as u64);
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
    let after = counters_now();
    latencies.sort_unstable();
    let reads = after.store_reads - before.store_reads;
    let hits = after.store_hits - before.store_hits;
    PhaseReport {
        phase: name.to_string(),
        mode: if opts.open_loop {
            format!("open@{}rps", opts.rate_per_sec)
        } else {
            "closed".to_string()
        },
        requests: latencies.len(),
        errors: errors.load(Ordering::Relaxed),
        clients: opts.clients,
        wall_ms,
        throughput_rps: latencies.len() as f64 / (wall_ms / 1000.0).max(1e-9),
        p50_us: percentile_us(&latencies, 50.0),
        p99_us: percentile_us(&latencies, 99.0),
        p999_us: percentile_us(&latencies, 99.9),
        max_us: latencies.last().copied().unwrap_or(0),
        bsp_runs: after.bsp_runs - before.bsp_runs,
        store_reads: reads,
        store_hits: hits,
        store_writes: after.store_writes - before.store_writes,
        store_hit_rate: (reads > 0).then(|| hits as f64 / reads as f64),
    }
}

fn flag_value<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let _obs = predict_bench::observability_guard();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = DriverOptions {
        requests: flag_value(&args, "--requests").unwrap_or(2000),
        clients: flag_value::<usize>(&args, "--clients").unwrap_or(8).max(1),
        open_loop: args.iter().any(|a| a == "--open"),
        rate_per_sec: flag_value::<f64>(&args, "--rate")
            .filter(|r| r.is_finite() && *r > 0.0)
            .unwrap_or(500.0),
    };
    let check_speedup: Option<f64> = flag_value(&args, "--check-speedup");
    let store_dir: PathBuf = flag_value(&args, "--store").unwrap_or_else(|| {
        std::env::temp_dir().join(format!("predict_load_store_{}", std::process::id()))
    });
    let keep_store = args.iter().any(|a| a == "--keep-store");
    if !keep_store {
        let _ = std::fs::remove_dir_all(&store_dir);
    }

    eprintln!("[load] building pinned request mix (small-scale datasets)...");
    let pool = build_requests();
    eprintln!(
        "[load] {} unique queries, {} requests, {} clients, store at {}",
        pool.len(),
        opts.requests,
        opts.clients,
        store_dir.display()
    );

    // One service per phase: the warm phase is a *restart* — empty session
    // cache, fresh engine — warmed only through the store directory.
    let service = |_phase: &str| {
        PredictService::with_config(
            predict_bench::experiment_engine(),
            Arc::new(BiasedRandomJump::default()),
            PredictServiceConfig::default().store(&store_dir),
        )
    };

    let cold = drive_phase("cold", &service("cold"), &pool, &opts);
    let warm = drive_phase("warm", &service("warm"), &pool, &opts);

    let mut table = predict_bench::ResultTable::new(
        "Load driver: cold vs warm persistent store",
        &[
            "phase", "mode", "reqs", "errors", "rps", "p50 us", "p99 us", "p999 us", "bsp runs",
            "hit rate",
        ],
    );
    for r in [&cold, &warm] {
        table.push_row(vec![
            r.phase.clone(),
            r.mode.clone(),
            r.requests.to_string(),
            r.errors.to_string(),
            format!("{:.0}", r.throughput_rps),
            r.p50_us.to_string(),
            r.p99_us.to_string(),
            r.p999_us.to_string(),
            r.bsp_runs.to_string(),
            r.store_hit_rate
                .map_or("-".to_string(), |h| format!("{:.1}%", h * 100.0)),
        ]);
    }

    let p99_speedup = cold.p99_us as f64 / (warm.p99_us.max(1)) as f64;
    #[derive(Serialize)]
    struct Report<'a> {
        phases: [&'a PhaseReport; 2],
        p99_speedup: f64,
        graph: &'static str,
    }
    table.emit(
        "load_driver",
        &Report {
            phases: [&cold, &warm],
            p99_speedup,
            graph: "datasets_small_x4",
        },
    );
    eprintln!("[load] warm p99 speedup over cold: {p99_speedup:.2}x");

    let mut failed = false;
    if warm.bsp_runs > 0 {
        eprintln!(
            "[load] FAIL: warm phase executed {} engine run(s); a restarted \
             service must answer from the store alone",
            warm.bsp_runs
        );
        failed = true;
    }
    if cold.errors + warm.errors > 0 {
        eprintln!(
            "[load] FAIL: {} request(s) errored",
            cold.errors + warm.errors
        );
        failed = true;
    }
    if let Some(min) = check_speedup {
        if p99_speedup < min {
            eprintln!("[load] FAIL: warm p99 speedup {p99_speedup:.2}x < required {min:.2}x");
            failed = true;
        }
    }
    if !keep_store {
        let _ = std::fs::remove_dir_all(&store_dir);
    }
    if failed {
        std::process::exit(1);
    }
}
