//! Figure 6: relative error of the predicted key input features for top-k
//! ranking — number of iterations (top plot) and remote message bytes (bottom
//! plot) — as a function of the sampling ratio.
//!
//! Top-k ranking runs on PageRank output with convergence threshold
//! `τ = 0.001`; the transform function keeps the threshold unchanged because
//! convergence is a ratio of updating vertices.

use predict_algorithms::{TopKParams, TopKWorkload};
use predict_bench::{
    pct, prediction_sweep, HistoryMode, ResultTable, EXPERIMENT_SEED, PAPER_SAMPLING_RATIOS,
};
use predict_core::PredictorConfig;
use predict_graph::datasets::Dataset;
use predict_sampling::{BiasedRandomJump, Sampler};
use std::sync::Arc;

fn main() {
    let _obs = predict_bench::observability_guard();
    let sampler: Arc<dyn Sampler> = Arc::new(BiasedRandomJump::default());
    let datasets = [Dataset::LiveJournal, Dataset::Wikipedia, Dataset::Uk2002];

    let points = prediction_sweep(
        &datasets,
        &PAPER_SAMPLING_RATIOS,
        Arc::clone(&sampler),
        HistoryMode::SampleRunsOnly,
        &|_g| Box::new(TopKWorkload::new(TopKParams::new(5, 0.001), 0.01)),
        &|ratio| PredictorConfig::single_ratio(ratio).with_seed(EXPERIMENT_SEED),
    );

    let mut table = ResultTable::new(
        "Figure 6: predicting key features for top-k ranking (iterations and remote message bytes)",
        &[
            "dataset",
            "ratio",
            "pred iters",
            "actual iters",
            "iter error",
            "remote bytes error",
        ],
    );
    for p in &points {
        table.push_row(vec![
            p.dataset.clone(),
            format!("{:.2}", p.ratio),
            p.predicted_iterations.to_string(),
            p.actual_iterations.to_string(),
            pct(p.iteration_error),
            pct(p.remote_bytes_error),
        ]);
    }
    table.emit("fig6_topk_features", &points);
}
