//! Figure 5: relative error of the predicted number of iterations for
//! semi-clustering, as a function of the sampling ratio.
//!
//! Base settings follow section 5.1: `C_max = 1`, `S_max = 1`, `V_max = 10`,
//! `f_B = 0.1`, with convergence ratios `τ = 0.01` and `τ = 0.001`. Twitter is
//! excluded, as in the paper (its semi-clustering run exceeded the cluster's
//! memory); the analog exclusion keeps the figure's dataset set identical.

use predict_algorithms::{SemiClusteringParams, SemiClusteringWorkload};
use predict_bench::{
    pct, prediction_sweep, HistoryMode, PredictionPoint, ResultTable, EXPERIMENT_SEED,
    PAPER_SAMPLING_RATIOS,
};
use predict_core::PredictorConfig;
use predict_graph::datasets::Dataset;
use predict_sampling::{BiasedRandomJump, Sampler};
use std::sync::Arc;

fn main() {
    let _obs = predict_bench::observability_guard();
    let sampler: Arc<dyn Sampler> = Arc::new(BiasedRandomJump::default());
    let datasets = [Dataset::LiveJournal, Dataset::Wikipedia, Dataset::Uk2002];
    let mut all_points: Vec<(f64, Vec<PredictionPoint>)> = Vec::new();

    for &tau in &[0.01, 0.001] {
        let points = prediction_sweep(
            &datasets,
            &PAPER_SAMPLING_RATIOS,
            Arc::clone(&sampler),
            HistoryMode::SampleRunsOnly,
            &move |_g| {
                Box::new(SemiClusteringWorkload::new(SemiClusteringParams {
                    tolerance: tau,
                    ..SemiClusteringParams::default()
                }))
            },
            &|ratio| PredictorConfig::single_ratio(ratio).with_seed(EXPERIMENT_SEED),
        );
        all_points.push((tau, points));
    }

    let mut table = ResultTable::new(
        "Figure 5: predicting iterations for semi-clustering (BRJ sampling)",
        &[
            "tau",
            "dataset",
            "ratio",
            "pred iters",
            "actual iters",
            "rel. error",
        ],
    );
    for (tau, points) in &all_points {
        for p in points {
            table.push_row(vec![
                format!("{tau}"),
                p.dataset.clone(),
                format!("{:.2}", p.ratio),
                p.predicted_iterations.to_string(),
                p.actual_iterations.to_string(),
                pct(p.iteration_error),
            ]);
        }
    }
    let flat: Vec<_> = all_points
        .iter()
        .flat_map(|(t, pts)| {
            pts.iter()
                .map(move |p| serde_json::json!({"tau": t, "point": p}))
        })
        .collect();
    table.emit("fig5_semiclustering_iterations", &flat);
}
