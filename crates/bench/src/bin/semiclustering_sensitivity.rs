//! Section 5.1 (text): sensitivity of semi-clustering iteration prediction to
//! the `S_max` and `V_max` parameters on the LiveJournal analog.
//!
//! The paper increases `S_max` from 1 to 3 and `V_max` from 10 to 20 and
//! observes that, for sampling ratios of 0.1 or larger, the relative errors
//! stay within similar bounds as the base settings.

use predict_algorithms::{SemiClusteringParams, SemiClusteringWorkload};
use predict_bench::{pct, prediction_sweep, HistoryMode, ResultTable, EXPERIMENT_SEED};
use predict_core::PredictorConfig;
use predict_graph::datasets::Dataset;
use predict_sampling::{BiasedRandomJump, Sampler};
use std::sync::Arc;

fn main() {
    let _obs = predict_bench::observability_guard();
    let sampler: Arc<dyn Sampler> = Arc::new(BiasedRandomJump::default());
    let ratios = [0.05, 0.1, 0.15, 0.2, 0.25];

    let variants: Vec<(&str, SemiClusteringParams)> = vec![
        ("base (Smax=1, Vmax=10)", SemiClusteringParams::default()),
        (
            "Smax=3",
            SemiClusteringParams {
                s_max: 3,
                c_max: 3,
                ..SemiClusteringParams::default()
            },
        ),
        (
            "Vmax=20",
            SemiClusteringParams {
                v_max: 20,
                ..SemiClusteringParams::default()
            },
        ),
    ];

    let mut table = ResultTable::new(
        "Semi-clustering sensitivity to Smax / Vmax on the LJ analog (iteration prediction)",
        &[
            "variant",
            "ratio",
            "pred iters",
            "actual iters",
            "iter error",
        ],
    );
    let mut payload = Vec::new();
    for (label, params) in &variants {
        let params = *params;
        let points = prediction_sweep(
            &[Dataset::LiveJournal],
            &ratios,
            Arc::clone(&sampler),
            HistoryMode::SampleRunsOnly,
            &move |_g| Box::new(SemiClusteringWorkload::new(params)),
            &|ratio| PredictorConfig::single_ratio(ratio).with_seed(EXPERIMENT_SEED),
        );
        for p in &points {
            table.push_row(vec![
                label.to_string(),
                format!("{:.2}", p.ratio),
                p.predicted_iterations.to_string(),
                p.actual_iterations.to_string(),
                pct(p.iteration_error),
            ]);
        }
        payload.push(serde_json::json!({"variant": label, "points": points}));
    }
    table.emit("semiclustering_sensitivity", &payload);
}
