//! Table 2: dataset characteristics.
//!
//! Prints the characteristics of the four synthetic dataset analogs next to
//! the numbers the paper reports for the real graphs, plus the structural
//! properties (scale-freeness, effective diameter) that drive the rest of the
//! evaluation.

use predict_bench::{experiment_scale, ResultTable};
use predict_graph::datasets::table2_summary;

fn main() {
    let _obs = predict_bench::observability_guard();
    let scale = experiment_scale();
    let rows = table2_summary(scale);

    let mut table = ResultTable::new(
        "Table 2: graph datasets (synthetic analogs vs. paper originals)",
        &[
            "Name",
            "Prefix",
            "Nodes",
            "Edges",
            "Size [MB]",
            "Paper nodes",
            "Paper edges",
            "Paper size [GB]",
            "Scale-free?",
            "Eff. diameter",
            "Power-law alpha",
        ],
    );
    for row in &rows {
        table.push_row(vec![
            row.dataset.name().to_string(),
            row.prefix.to_string(),
            row.num_vertices.to_string(),
            row.num_edges.to_string(),
            format!("{:.1}", row.size_bytes as f64 / 1_048_576.0),
            row.paper_nodes.to_string(),
            row.paper_edges.to_string(),
            format!("{:.1}", row.paper_size_gb),
            if row.properties.looks_scale_free() {
                "yes"
            } else {
                "no"
            }
            .to_string(),
            format!("{:.1}", row.properties.effective_diameter),
            format!("{:.2}", row.properties.power_law_alpha),
        ]);
    }

    let points: Vec<_> = rows
        .iter()
        .map(|r| {
            serde_json::json!({
                "dataset": r.prefix,
                "nodes": r.num_vertices,
                "edges": r.num_edges,
                "size_bytes": r.size_bytes,
                "paper_nodes": r.paper_nodes,
                "paper_edges": r.paper_edges,
                "scale_free": r.properties.looks_scale_free(),
                "effective_diameter": r.properties.effective_diameter,
            })
        })
        .collect();
    table.emit("table2_datasets", &points);
}
