//! Figure 9: sensitivity of iteration prediction to the sampling technique.
//!
//! Compares BRJ (the paper's default), RJ and MHRW on the UK web graph analog
//! for semi-clustering (top plot) and top-k ranking (bottom plot). All
//! techniques use restart probability `p = 0.15`; BRJ draws its seeds from the
//! top 1% of vertices by out-degree.

use predict_algorithms::{
    SemiClusteringParams, SemiClusteringWorkload, TopKParams, TopKWorkload, Workload,
};
use predict_bench::{
    pct, prediction_sweep, HistoryMode, PredictionPoint, ResultTable, EXPERIMENT_SEED,
    PAPER_SAMPLING_RATIOS,
};
use predict_core::PredictorConfig;
use predict_graph::datasets::Dataset;
use predict_graph::CsrGraph;
use predict_sampling::{BiasedRandomJump, Mhrw, RandomJump, Sampler};
use std::sync::Arc;

fn sweep(
    sampler: Arc<dyn Sampler>,
    make_workload: &dyn Fn(&CsrGraph) -> Box<dyn Workload>,
) -> Vec<PredictionPoint> {
    prediction_sweep(
        &[Dataset::Uk2002],
        &PAPER_SAMPLING_RATIOS,
        sampler,
        HistoryMode::SampleRunsOnly,
        make_workload,
        &|ratio| PredictorConfig::single_ratio(ratio).with_seed(EXPERIMENT_SEED),
    )
}

fn main() {
    let _obs = predict_bench::observability_guard();
    let samplers: [(&str, Arc<dyn Sampler>); 3] = [
        ("BRJ", Arc::new(BiasedRandomJump::default())),
        ("RJ", Arc::new(RandomJump::default())),
        ("MHRW", Arc::new(Mhrw::default())),
    ];

    let semi_clustering = |_: &CsrGraph| -> Box<dyn Workload> {
        Box::new(SemiClusteringWorkload::new(SemiClusteringParams {
            tolerance: 0.001,
            ..SemiClusteringParams::default()
        }))
    };
    let topk = |_: &CsrGraph| -> Box<dyn Workload> {
        Box::new(TopKWorkload::new(TopKParams::new(5, 0.001), 0.01))
    };

    let mut table = ResultTable::new(
        "Figure 9: sensitivity to sampling technique (UK analog)",
        &[
            "workload",
            "sampler",
            "ratio",
            "pred iters",
            "actual iters",
            "iter error",
        ],
    );
    let mut payload = Vec::new();
    for (workload_name, make_workload) in [
        (
            "SC",
            &semi_clustering as &dyn Fn(&CsrGraph) -> Box<dyn Workload>,
        ),
        ("TOP-K", &topk as &dyn Fn(&CsrGraph) -> Box<dyn Workload>),
    ] {
        for (sampler_name, sampler) in &samplers {
            let points = sweep(Arc::clone(sampler), make_workload);
            for p in &points {
                table.push_row(vec![
                    workload_name.to_string(),
                    sampler_name.to_string(),
                    format!("{:.2}", p.ratio),
                    p.predicted_iterations.to_string(),
                    p.actual_iterations.to_string(),
                    pct(p.iteration_error),
                ]);
            }
            payload.push(serde_json::json!({
                "workload": workload_name,
                "sampler": sampler_name,
                "points": points,
            }));
        }
    }
    table.emit("fig9_sampling_sensitivity", &payload);
}
