//! Ablation: critical-path worker model versus mean-worker model.
//!
//! The paper models superstep runtime through the worker on the critical path
//! (the slowest / most loaded worker). This ablation compares that choice
//! against representing each iteration by the *average* worker, measured by
//! the runtime prediction error of semi-clustering.

use predict_algorithms::{SemiClusteringParams, SemiClusteringWorkload};
use predict_bench::{pct, prediction_sweep, HistoryMode, ResultTable, EXPERIMENT_SEED};
use predict_core::{PredictorConfig, WorkerSelection};
use predict_graph::datasets::Dataset;
use predict_sampling::{BiasedRandomJump, Sampler};
use std::sync::Arc;

fn main() {
    let _obs = predict_bench::observability_guard();
    let sampler: Arc<dyn Sampler> = Arc::new(BiasedRandomJump::default());
    let ratios = [0.05, 0.1, 0.2];
    let datasets = [Dataset::Wikipedia, Dataset::Uk2002];

    let mut table = ResultTable::new(
        "Ablation: critical-path vs mean-worker model (semi-clustering runtime prediction)",
        &[
            "worker model",
            "dataset",
            "ratio",
            "pred ms",
            "actual ms",
            "runtime error",
        ],
    );
    let mut payload = Vec::new();
    for (label, selection) in [
        ("critical path (paper)", WorkerSelection::SlowestWorker),
        ("mean worker", WorkerSelection::MeanWorker),
    ] {
        let points = prediction_sweep(
            &datasets,
            &ratios,
            Arc::clone(&sampler),
            HistoryMode::SampleRunsOnly,
            &|_g| {
                Box::new(SemiClusteringWorkload::new(SemiClusteringParams {
                    tolerance: 0.001,
                    ..SemiClusteringParams::default()
                }))
            },
            &move |ratio| {
                let mut config = PredictorConfig {
                    sampling_ratio: ratio,
                    training_ratios: vec![0.05, 0.1, 0.15, 0.2],
                    ..PredictorConfig::default()
                }
                .with_seed(EXPERIMENT_SEED);
                config.worker_selection = selection;
                config
            },
        );
        for p in &points {
            table.push_row(vec![
                label.to_string(),
                p.dataset.clone(),
                format!("{:.2}", p.ratio),
                format!("{:.0}", p.predicted_runtime_ms),
                format!("{:.0}", p.actual_runtime_ms),
                pct(p.runtime_error),
            ]);
        }
        payload.push(serde_json::json!({"worker_model": label, "points": points}));
    }
    table.emit("ablation_critical_path", &payload);
}
