//! A mutable list-of-edges graph representation.
//!
//! [`EdgeList`] is the intermediate representation produced by generators,
//! readers and samplers before the graph is frozen into a
//! [`CsrGraph`](crate::csr::CsrGraph). It supports deduplication, self-loop removal and
//! conversion to an undirected graph (by mirroring every edge), which is how
//! the paper feeds directed web/social graphs to algorithms that operate on
//! undirected graphs (semi-clustering).

use crate::types::{Edge, VertexId};

/// A growable collection of directed, optionally weighted edges.
#[derive(Debug, Clone, Default)]
pub struct EdgeList {
    edges: Vec<Edge>,
    /// Largest vertex id seen plus one; may be raised explicitly to include
    /// isolated vertices.
    num_vertices: usize,
}

impl EdgeList {
    /// Creates an empty edge list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty edge list with capacity for `cap` edges.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            edges: Vec::with_capacity(cap),
            num_vertices: 0,
        }
    }

    /// Adds an unweighted edge.
    pub fn push(&mut self, src: VertexId, dst: VertexId) {
        self.push_edge(Edge::new(src, dst));
    }

    /// Adds a weighted edge.
    pub fn push_weighted(&mut self, src: VertexId, dst: VertexId, weight: f32) {
        self.push_edge(Edge::weighted(src, dst, weight));
    }

    /// Adds an [`Edge`].
    pub fn push_edge(&mut self, edge: Edge) {
        let hi = edge.src.max(edge.dst) as usize + 1;
        if hi > self.num_vertices {
            self.num_vertices = hi;
        }
        self.edges.push(edge);
    }

    /// Ensures the vertex id space covers at least `n` vertices, so isolated
    /// vertices (no incident edges) are representable.
    pub fn ensure_vertices(&mut self, n: usize) {
        if n > self.num_vertices {
            self.num_vertices = n;
        }
    }

    /// Number of vertices in the id space (`max id + 1`, or an explicitly
    /// ensured larger value).
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges currently stored (including any duplicates).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Returns true when no edges are stored.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Immutable view of the stored edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Iterates over `(src, dst)` pairs.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.edges.iter().map(|e| (e.src, e.dst))
    }

    /// Removes self-loops (`src == dst`) in place.
    pub fn remove_self_loops(&mut self) {
        self.edges.retain(|e| e.src != e.dst);
    }

    /// Removes duplicate `(src, dst)` pairs in place, keeping the first
    /// occurrence (and therefore its weight). Sorts the list by `(src, dst)`
    /// as a side effect.
    ///
    /// The ordering pass is adaptive. The default path is a two-round stable
    /// counting (LSD radix) sort — `O(E + V)` instead of the `O(E log E)`
    /// comparison sort it replaced — which produces exactly the permutation
    /// a stable `sort_by_key(|e| (e.src, e.dst))` would: sorted by key,
    /// equal keys in insertion order, so the kept first occurrence is the
    /// earliest pushed. Two stream shapes fall back to that comparison sort
    /// (same result, different constant factors):
    ///
    /// * **nearly-sorted streams** — a single `O(E)` presortedness probe
    ///   counts adjacent inversions; below 1/32 of the edge count
    ///   the std stable sort's run detection finishes in near-linear time
    ///   and beats the radix's two full placement passes (the grid-road
    ///   lattice regression the ROADMAP records: its CSR-ordered edge stream
    ///   deduped 3.5x slower on the radix path);
    /// * **sparse id spaces** — vertex id spaces that dwarf the edge count
    ///   would pay `O(V)` histograms per radix round.
    pub fn dedup(&mut self) {
        let n = self.num_vertices;
        if self.edges.len() > 1 {
            if nearly_sorted(&self.edges) || n > self.edges.len().saturating_mul(4).max(64) {
                self.edges.sort_by_key(|e| (e.src, e.dst));
            } else {
                let mut scratch = vec![Edge::new(0, 0); self.edges.len()];
                // LSD radix: stable pass on the low key (dst), then a stable
                // pass on the high key (src).
                counting_sort_pass(&mut self.edges, &mut scratch, n, |e| e.dst as usize);
                counting_sort_pass(&mut self.edges, &mut scratch, n, |e| e.src as usize);
            }
        }
        self.edges.dedup_by_key(|e| (e.src, e.dst));
    }

    /// Returns a new edge list where every edge also appears reversed, which
    /// models an undirected graph in a directed representation (the convention
    /// the paper uses for Giraph). Duplicates created by mirroring already
    /// bidirectional edges are removed.
    pub fn to_undirected(&self) -> EdgeList {
        let mut out = EdgeList::with_capacity(self.edges.len() * 2);
        out.ensure_vertices(self.num_vertices);
        for e in &self.edges {
            if e.src == e.dst {
                continue;
            }
            out.push_edge(*e);
            out.push_edge(e.reversed());
        }
        out.dedup();
        out
    }

    /// Consumes the list and returns the underlying vector of edges.
    pub fn into_edges(self) -> Vec<Edge> {
        self.edges
    }
}

/// Presortedness threshold: a stream whose adjacent-inversion count is below
/// `len / NEARLY_SORTED_INVERSION_DIV` is handled by the std stable sort
/// (whose run detection makes nearly-sorted input near-`O(E)`) instead of
/// the radix path. 32 keeps genuinely shuffled streams (≈50% inversions) on
/// the radix path while catching CSR-ordered and append-mostly streams.
const NEARLY_SORTED_INVERSION_DIV: usize = 32;

/// The adaptive-dedup presortedness probe: one linear scan counting adjacent
/// pairs out of `(src, dst)` order, with an early exit once the stream is
/// provably not nearly-sorted.
fn nearly_sorted(edges: &[Edge]) -> bool {
    let budget = edges.len() / NEARLY_SORTED_INVERSION_DIV;
    let mut inversions = 0usize;
    for pair in edges.windows(2) {
        if (pair[0].src, pair[0].dst) > (pair[1].src, pair[1].dst) {
            inversions += 1;
            if inversions > budget {
                return false;
            }
        }
    }
    true
}

/// One stable counting-sort pass over `edges` by `key` (which must be
/// `< num_keys` for every edge): histogram, prefix offsets, direct placement
/// into `scratch`, then swap the buffers.
fn counting_sort_pass(
    edges: &mut Vec<Edge>,
    scratch: &mut Vec<Edge>,
    num_keys: usize,
    key: impl Fn(&Edge) -> usize,
) {
    let mut counts = vec![0usize; num_keys + 1];
    for e in edges.iter() {
        counts[key(e) + 1] += 1;
    }
    for i in 1..counts.len() {
        counts[i] += counts[i - 1];
    }
    for e in edges.iter() {
        let slot = &mut counts[key(e)];
        scratch[*slot] = *e;
        *slot += 1;
    }
    std::mem::swap(edges, scratch);
}

impl FromIterator<(VertexId, VertexId)> for EdgeList {
    fn from_iter<T: IntoIterator<Item = (VertexId, VertexId)>>(iter: T) -> Self {
        let mut list = EdgeList::new();
        for (s, d) in iter {
            list.push(s, d);
        }
        list
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_tracks_vertex_count() {
        let mut el = EdgeList::new();
        el.push(0, 5);
        el.push(2, 1);
        assert_eq!(el.num_vertices(), 6);
        assert_eq!(el.num_edges(), 2);
    }

    #[test]
    fn ensure_vertices_extends_id_space() {
        let mut el = EdgeList::new();
        el.push(0, 1);
        el.ensure_vertices(10);
        assert_eq!(el.num_vertices(), 10);
        // Ensuring a smaller count is a no-op.
        el.ensure_vertices(3);
        assert_eq!(el.num_vertices(), 10);
    }

    #[test]
    fn dedup_removes_duplicate_pairs() {
        let mut el = EdgeList::new();
        el.push(0, 1);
        el.push(0, 1);
        el.push(1, 0);
        el.dedup();
        assert_eq!(el.num_edges(), 2);
    }

    #[test]
    fn dedup_keeps_first_weight() {
        let mut el = EdgeList::new();
        el.push_weighted(0, 1, 2.0);
        el.push_weighted(0, 1, 9.0);
        el.dedup();
        assert_eq!(el.num_edges(), 1);
        assert_eq!(el.edges()[0].weight, 2.0);
    }

    #[test]
    fn presortedness_probe_classifies_streams() {
        // CSR-ordered (fully sorted) stream.
        let sorted: Vec<Edge> = (0..1000u32)
            .flat_map(|s| [(s, s + 1), (s, s + 2)])
            .map(|(s, d)| Edge::new(s, d))
            .collect();
        assert!(nearly_sorted(&sorted));
        // A few displaced edges stay under the budget.
        let mut few_swaps = sorted.clone();
        few_swaps.swap(10, 500);
        few_swaps.swap(900, 1200);
        assert!(nearly_sorted(&few_swaps));
        // A reversed stream is maximally inverted.
        let mut reversed = sorted.clone();
        reversed.reverse();
        assert!(!nearly_sorted(&reversed));
    }

    #[test]
    fn dedup_on_nearly_sorted_stream_matches_reference() {
        // Sorted-with-duplicates plus a handful of out-of-place edges: the
        // probe routes this to the comparison path; results must equal the
        // stable-sort + keep-first reference regardless.
        let mut el = EdgeList::new();
        for s in 0..200u32 {
            el.push_weighted(s, s + 1, s as f32);
            el.push_weighted(s, s + 1, 999.0); // duplicate, must be dropped
        }
        el.push_weighted(5, 2, 7.0); // out-of-order stragglers
        el.push_weighted(0, 1, 123.0); // duplicate of the very first edge
        let mut reference: Vec<Edge> = el.edges().to_vec();
        reference.sort_by_key(|e| (e.src, e.dst));
        reference.dedup_by_key(|e| (e.src, e.dst));

        el.dedup();
        assert_eq!(el.num_edges(), reference.len());
        for (a, b) in el.edges().iter().zip(&reference) {
            assert_eq!((a.src, a.dst, a.weight), (b.src, b.dst, b.weight));
        }
        // The surviving weight of (0, 1) is the first pushed, not the late
        // duplicate.
        assert_eq!(el.edges()[0].weight, 0.0);
    }

    #[test]
    fn remove_self_loops_drops_loops_only() {
        let mut el = EdgeList::new();
        el.push(0, 0);
        el.push(0, 1);
        el.push(2, 2);
        el.remove_self_loops();
        assert_eq!(el.num_edges(), 1);
        assert_eq!(el.edges()[0].dst, 1);
    }

    #[test]
    fn to_undirected_mirrors_edges() {
        let el: EdgeList = [(0u32, 1u32), (1, 2)].into_iter().collect();
        let und = el.to_undirected();
        let pairs: Vec<_> = und.iter_pairs().collect();
        assert!(pairs.contains(&(0, 1)));
        assert!(pairs.contains(&(1, 0)));
        assert!(pairs.contains(&(1, 2)));
        assert!(pairs.contains(&(2, 1)));
        assert_eq!(und.num_edges(), 4);
    }

    #[test]
    fn to_undirected_does_not_duplicate_bidirectional_edges() {
        let el: EdgeList = [(0u32, 1u32), (1, 0)].into_iter().collect();
        let und = el.to_undirected();
        assert_eq!(und.num_edges(), 2);
    }

    #[test]
    fn to_undirected_drops_self_loops() {
        let el: EdgeList = [(0u32, 0u32), (0, 1)].into_iter().collect();
        let und = el.to_undirected();
        assert_eq!(und.num_edges(), 2);
    }

    #[test]
    fn from_iterator_collects_pairs() {
        let el: EdgeList = [(0u32, 1u32), (1, 2), (2, 3)].into_iter().collect();
        assert_eq!(el.num_edges(), 3);
        assert_eq!(el.num_vertices(), 4);
    }
}
