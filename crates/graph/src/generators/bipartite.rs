//! Web-style two-mode (bipartite) graph generator.
//!
//! Two-mode graphs — users × pages, crawlers × hosts, queries × documents —
//! are a workload regime Table 2 of the paper does not cover: every edge
//! crosses between the two vertex classes, so odd-length cycles do not exist,
//! random walks strictly alternate sides, and the degree distribution is a
//! *mixture* (near-uniform on the "user" side, heavy-tailed on the "site"
//! side). That shape stresses samplers differently from a one-mode power-law
//! graph: hub-biased restarts (BRJ) lock onto the popular side, while
//! uniform techniques (MHRW) see mostly the large near-uniform side. The
//! `table2_new_datasets` / `fig9_new_generators` experiment binaries sweep
//! this generator to measure prediction error in that regime (ROADMAP
//! "bipartite web graphs" item).
//!
//! The generator draws `num_edges` left→right pairs: the left endpoint is
//! uniform (every user is about equally active), the right endpoint follows a
//! power-law popularity (`index = floor(num_right * u^skew)` — larger
//! [`BipartiteConfig::skew`] concentrates more edges on fewer sites). Every
//! pair is mirrored so walks can return from the popular side. Duplicates are
//! removed; the result is deterministic for a fixed seed.

use crate::csr::CsrGraph;
use crate::edge_list::EdgeList;
use crate::types::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`generate_bipartite`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BipartiteConfig {
    /// Vertices on the left (uniform-activity) side; ids `0..num_left`.
    pub num_left: usize,
    /// Vertices on the right (power-law popularity) side; ids
    /// `num_left..num_left + num_right`.
    pub num_right: usize,
    /// Number of left→right pairs drawn before mirroring and deduplication.
    pub num_edges: usize,
    /// Popularity skew of the right side (`u^skew` index transform);
    /// 1.0 = uniform, larger = heavier tail. Defaults to 3.0.
    pub skew: f64,
    /// PRNG seed.
    pub seed: u64,
}

impl BipartiteConfig {
    /// Creates a config with the default popularity skew.
    ///
    /// # Panics
    ///
    /// Panics unless both sides have at least one vertex.
    pub fn new(num_left: usize, num_right: usize, num_edges: usize) -> Self {
        assert!(
            num_left >= 1 && num_right >= 1,
            "both sides need at least one vertex, got {num_left} and {num_right}"
        );
        Self {
            num_left,
            num_right,
            num_edges,
            skew: 3.0,
            seed: 0,
        }
    }

    /// Sets the PRNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the popularity skew.
    ///
    /// # Panics
    ///
    /// Panics unless `skew >= 1`.
    pub fn with_skew(mut self, skew: f64) -> Self {
        assert!(skew >= 1.0, "skew must be at least 1, got {skew}");
        self.skew = skew;
        self
    }

    /// Number of vertices the generated graph will have.
    pub fn num_vertices(&self) -> usize {
        self.num_left + self.num_right
    }
}

/// Generates a two-mode graph according to `config`.
///
/// Every edge connects a left vertex (`0..num_left`) with a right vertex
/// (`num_left..num_left + num_right`) in both directions; no edge stays
/// within one side.
pub fn generate_bipartite(config: &BipartiteConfig) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut edges = EdgeList::with_capacity(config.num_edges * 2);
    edges.ensure_vertices(config.num_vertices());

    for _ in 0..config.num_edges {
        let left = rng.gen_range(0..config.num_left) as VertexId;
        // Power-law popularity: u^skew pushes the index towards 0, so low
        // right-side indices collect most of the edges.
        let u: f64 = rng.gen_range(0.0..1.0);
        let idx = ((config.num_right as f64) * u.powf(config.skew)) as usize;
        let right = (config.num_left + idx.min(config.num_right - 1)) as VertexId;
        edges.push(left, right);
        edges.push(right, left);
    }
    edges.dedup();
    CsrGraph::from_edge_list(&edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_left(config: &BipartiteConfig, v: VertexId) -> bool {
        (v as usize) < config.num_left
    }

    #[test]
    fn every_edge_crosses_sides() {
        let cfg = BipartiteConfig::new(200, 50, 1000).with_seed(1);
        let g = generate_bipartite(&cfg);
        assert_eq!(g.num_vertices(), 250);
        for (s, d, _) in g.edges() {
            assert_ne!(
                is_left(&cfg, s),
                is_left(&cfg, d),
                "edge {s}->{d} stays on one side"
            );
        }
    }

    #[test]
    fn edges_are_symmetric() {
        let g = generate_bipartite(&BipartiteConfig::new(100, 30, 500).with_seed(2));
        for v in g.vertices() {
            for &u in g.out_neighbors(v) {
                assert!(g.out_neighbors(u).contains(&v), "missing reverse {u}->{v}");
            }
        }
    }

    #[test]
    fn right_side_is_skewed_left_side_is_not() {
        let cfg = BipartiteConfig::new(2000, 500, 16_000).with_seed(3);
        let g = generate_bipartite(&cfg);
        let left_max = (0..cfg.num_left as VertexId)
            .map(|v| g.out_degree(v))
            .max()
            .unwrap();
        let right_max = (cfg.num_left as VertexId..g.num_vertices() as VertexId)
            .map(|v| g.out_degree(v))
            .max()
            .unwrap();
        assert!(
            right_max > left_max * 4,
            "right side should grow hubs (right max {right_max}, left max {left_max})"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = BipartiteConfig::new(128, 32, 600).with_seed(9);
        let a = generate_bipartite(&cfg);
        let b = generate_bipartite(&cfg);
        assert_eq!(a.num_edges(), b.num_edges());
        for v in a.vertices() {
            assert_eq!(a.out_neighbors(v), b.out_neighbors(v));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_bipartite(&BipartiteConfig::new(128, 32, 600).with_seed(1));
        let b = generate_bipartite(&BipartiteConfig::new(128, 32, 600).with_seed(2));
        let same = a
            .vertices()
            .all(|v| a.out_neighbors(v) == b.out_neighbors(v));
        assert!(!same, "seeds 1 and 2 produced identical graphs");
    }

    #[test]
    #[should_panic(expected = "at least one vertex")]
    fn empty_side_panics() {
        let _ = BipartiteConfig::new(0, 10, 5);
    }
}
